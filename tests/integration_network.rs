//! Cross-crate network integration: the comm fabric over hw topologies and
//! net media, checked against the analytic results of the net crate.

use dynplat::comm::fabric::{BusPort, Fabric, MessageSend};
use dynplat::comm::paradigm::{run_rpc, run_stream, RpcCall, StreamSpec};
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{BusId, EcuId, MessageId};
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat::net::can::{can_frame_time, CanAnalysis, CanMessageSpec};
use dynplat::net::{GateControlList, TrafficClass};
use dynplat::obs::TraceCtx;

fn mixed_topology() -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
            EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
            EcuSpec::of_class(EcuId(2), "compute", EcuClass::HighPerformance),
        ],
        [
            BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
            BusSpec::new(
                BusId(1),
                "eth0",
                BusKind::ethernet_100m(),
                [EcuId(1), EcuId(2)],
            ),
        ],
    )
    .expect("valid topology")
}

#[test]
fn fabric_can_latency_matches_frame_arithmetic() {
    let mut fabric = Fabric::new(mixed_topology());
    fabric.set_gateway_delay(SimDuration::ZERO);
    // One 8-byte frame over 500 kbit/s CAN = 270 us; local delivery adds
    // nothing on a single-hop route.
    let done = fabric.run(
        vec![MessageSend {
            id: 1,
            time: SimTime::ZERO,
            src: EcuId(0),
            dst: EcuId(1),
            payload: 8,
            class: TrafficClass::Critical,
            priority: 1,
            trace: TraceCtx::NONE,
        }],
        |_| vec![],
    );
    assert_eq!(done[0].latency(), can_frame_time(8, 500_000));
}

#[test]
fn fabric_respects_can_wcrt_analysis_under_periodic_load() {
    // Periodic CAN traffic whose analytic WCRTs must bound the simulation.
    let specs = vec![
        CanMessageSpec::periodic(MessageId(1), 8, SimDuration::from_millis(5)),
        CanMessageSpec::periodic(MessageId(2), 8, SimDuration::from_millis(10)),
        CanMessageSpec::periodic(MessageId(3), 8, SimDuration::from_millis(20)),
    ];
    let analysis = CanAnalysis::new(500_000, specs.clone());
    assert!(analysis.is_schedulable());
    let bounds = analysis.response_times();

    let mut fabric = Fabric::new(mixed_topology());
    fabric.set_gateway_delay(SimDuration::ZERO);
    let mut sends = Vec::new();
    let mut id_of_flow = Vec::new();
    let mut uid = 0u64;
    for spec in &specs {
        let mut t = SimTime::ZERO;
        while t < SimTime::from_millis(200) {
            sends.push(MessageSend {
                id: uid,
                time: t,
                src: EcuId(0),
                dst: EcuId(1),
                payload: spec.payload,
                class: TrafficClass::Critical,
                priority: spec.id.raw(),
                trace: TraceCtx::NONE,
            });
            id_of_flow.push((uid, spec.id));
            uid += 1;
            t += spec.period;
        }
    }
    let done = fabric.run(sends, |_| vec![]);
    for d in &done {
        let flow = id_of_flow
            .iter()
            .find(|(u, _)| *u == d.id)
            .expect("known send")
            .1;
        let bound = bounds
            .iter()
            .find(|b| b.id == flow)
            .and_then(|b| b.wcrt)
            .expect("schedulable flow");
        assert!(
            d.latency() <= bound,
            "flow {flow}: simulated {} > analytic {bound}",
            d.latency()
        );
    }
}

#[test]
fn gateway_path_adds_store_and_forward() {
    let mut direct = Fabric::new(mixed_topology());
    let mut routed = Fabric::new(mixed_topology());
    let send = |dst: u16| MessageSend {
        id: 1,
        time: SimTime::ZERO,
        src: EcuId(0),
        dst: EcuId(dst),
        payload: 8,
        class: TrafficClass::BestEffort,
        priority: 1,
        trace: TraceCtx::NONE,
    };
    let one_hop = direct.run(vec![send(1)], |_| vec![])[0].latency();
    let two_hop = routed.run(vec![send(2)], |_| vec![])[0].latency();
    assert!(two_hop > one_hop, "{two_hop} vs {one_hop}");
}

#[test]
fn rpc_across_the_gateway_round_trips() {
    let mut fabric = Fabric::new(mixed_topology());
    let calls = vec![RpcCall {
        time: SimTime::ZERO,
        client: EcuId(0),
        server: EcuId(2),
        request_payload: 8,
        response_payload: 8,
        processing: SimDuration::from_micros(200),
        class: TrafficClass::BestEffort,
        priority: 1,
        trace: TraceCtx::NONE,
    }];
    let stats = run_rpc(&mut fabric, &calls);
    assert_eq!(stats.len(), 1);
    // Two CAN frames + two Ethernet frames + gateways + processing: well
    // above one CAN frame, well below 10 ms.
    assert!(stats[0].round_trip > can_frame_time(8, 500_000) * 2);
    assert!(stats[0].round_trip < SimDuration::from_millis(10));
}

#[test]
fn tsn_swap_changes_best_effort_but_not_critical_behavior() {
    let topo = HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
        ],
        [BusSpec::new(
            BusId(0),
            "eth0",
            BusKind::ethernet_100m(),
            [EcuId(0), EcuId(1)],
        )],
    )
    .expect("valid");

    let stream = StreamSpec {
        start: SimTime::ZERO,
        frames: 20,
        interval: SimDuration::from_millis(1),
        frame_payload: 1000,
        src: EcuId(0),
        dst: EcuId(1),
        class: TrafficClass::BestEffort,
        priority: 6,
        trace: TraceCtx::NONE,
    };
    let mut plain = Fabric::new(topo.clone());
    let plain_stats = run_stream(&mut plain, &stream);

    let mut tsn = Fabric::new(topo);
    tsn.set_port(
        BusId(0),
        BusPort::tsn_for(
            BusKind::ethernet_100m(),
            GateControlList::mixed_criticality(SimDuration::from_millis(1), 0.5),
        ),
    );
    let tsn_stats = run_stream(&mut tsn, &stream);

    assert_eq!(plain_stats.delivered, 20);
    assert_eq!(tsn_stats.delivered, 20);
    // Gating delays best-effort frames relative to an open port.
    assert!(tsn_stats.mean_latency > plain_stats.mean_latency);
}

#[test]
fn deliveries_are_deterministic() {
    let build = || {
        let mut fabric = Fabric::new(mixed_topology());
        let sends: Vec<MessageSend> = (0..100)
            .map(|i| MessageSend {
                id: i,
                time: SimTime::from_micros(i * 37),
                src: EcuId(if i % 2 == 0 { 0 } else { 1 }),
                dst: EcuId(if i % 3 == 0 { 1 } else { 2 }),
                payload: 64 + (i as usize % 512),
                class: TrafficClass::BestEffort,
                priority: (i % 5) as u32,
                trace: TraceCtx::NONE,
            })
            .collect();
        fabric.run(sends, |_| vec![])
    };
    assert_eq!(build(), build());
}
