//! Property-based tests over the workspace invariants (DESIGN.md §6).

use dynplat::common::codec::{ByteReader, ByteWriter};
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::value::{DataType, Value};
use dynplat::common::{AppId, MessageId, MethodId, ServiceId, TaskId};
use dynplat::net::can::{can_frame_time, CanAnalysis, CanArbiter, CanMessageSpec};
use dynplat::net::{simulate, Frame, TxEvent};
use dynplat::sched::admission::{AdmissionController, AdmissionTest};
use dynplat::sched::task::{TaskSet, TaskSpec};
use dynplat::sched::tt;
use dynplat::security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat::security::sha256::{hmac_sha256, sha256, Sha256};
use dynplat::security::sign::KeyPair;
use proptest::prelude::*;

// ---------------------------------------------------------------- codecs --

fn arb_leaf_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::U8),
        Just(DataType::U16),
        Just(DataType::U32),
        Just(DataType::U64),
        Just(DataType::I64),
        Just(DataType::F64),
        Just(DataType::Str),
        Just(DataType::Blob),
        prop::collection::vec("[a-z]{1,6}", 1..4).prop_map(DataType::Enum),
    ]
}

fn arb_type() -> impl Strategy<Value = DataType> {
    arb_leaf_type().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), 0usize..4).prop_map(|(t, n)| DataType::array(t, n)),
            prop::collection::vec(("[a-z]{1,6}", inner), 1..4)
                .prop_map(DataType::Record),
        ]
    })
}

fn arb_value_of(ty: &DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        DataType::U8 => any::<u8>().prop_map(Value::U8).boxed(),
        DataType::U16 => any::<u16>().prop_map(Value::U16).boxed(),
        DataType::U32 => any::<u32>().prop_map(Value::U32).boxed(),
        DataType::U64 => any::<u64>().prop_map(Value::U64).boxed(),
        DataType::I64 => any::<i64>().prop_map(Value::I64).boxed(),
        DataType::F64 => any::<i32>().prop_map(|v| Value::F64(f64::from(v))).boxed(),
        DataType::Str => "[ -~]{0,24}".prop_map(Value::Str).boxed(),
        DataType::Blob => prop::collection::vec(any::<u8>(), 0..32).prop_map(Value::Blob).boxed(),
        DataType::Array(elem, len) => {
            let strategies: Vec<BoxedStrategy<Value>> =
                (0..*len).map(|_| arb_value_of(elem)).collect();
            strategies.prop_map(Value::Array).boxed()
        }
        DataType::Record(fields) => {
            let strategies: Vec<BoxedStrategy<(String, Value)>> = fields
                .iter()
                .map(|(n, t)| {
                    let name = n.clone();
                    arb_value_of(t).prop_map(move |v| (name.clone(), v)).boxed()
                })
                .collect();
            strategies.prop_map(Value::Record).boxed()
        }
        DataType::Enum(variants) => {
            let n = variants.len() as u8;
            (0..n).prop_map(Value::EnumOrdinal).boxed()
        }
    }
}

proptest! {
    #[test]
    fn typed_value_encode_decode_roundtrip(
        (ty, value) in arb_type().prop_flat_map(|ty| {
            let v = arb_value_of(&ty);
            (Just(ty), v)
        })
    ) {
        prop_assert!(value.conforms_to(&ty));
        let bytes = value.encode();
        let (lo, hi) = ty.encoded_size_bounds();
        prop_assert!(bytes.len() >= lo && bytes.len() <= hi.max(lo) + 1024);
        let back = Value::decode(&bytes, &ty).expect("own encoding decodes");
        prop_assert_eq!(back, value);
    }

    #[test]
    fn byte_writer_reader_roundtrip(
        a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
        s in "[ -~]{0,64}", blob in prop::collection::vec(any::<u8>(), 0..128)
    ) {
        let mut w = ByteWriter::new();
        w.put_u8(a);
        w.put_u16(b);
        w.put_u32(c);
        w.put_u64(d);
        w.put_string(&s);
        w.put_len_prefixed(&blob);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        prop_assert_eq!(r.take_u8().unwrap(), a);
        prop_assert_eq!(r.take_u16().unwrap(), b);
        prop_assert_eq!(r.take_u32().unwrap(), c);
        prop_assert_eq!(r.take_u64().unwrap(), d);
        prop_assert_eq!(r.take_string().unwrap(), s);
        prop_assert_eq!(r.take_len_prefixed(1024).unwrap(), &blob[..]);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut r = ByteReader::new(&data);
        let _ = r.take_u64();
        let _ = r.take_string();
        let ty = DataType::record([("a", DataType::U32), ("b", DataType::Str)]);
        let _ = Value::decode(&data, &ty); // must return Err, not panic
    }

    // ---------------------------------------------------------- security --

    #[test]
    fn sha256_incremental_equals_one_shot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_differs_under_key_or_message_change(
        key in prop::collection::vec(any::<u8>(), 1..64),
        msg in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mac = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(mac, hmac_sha256(&key2, &msg));
        let mut msg2 = msg.clone();
        msg2.push(0);
        prop_assert_ne!(mac, hmac_sha256(&key, &msg2));
    }

    #[test]
    fn signature_roundtrip_and_tamper_rejection(
        seed in prop::collection::vec(any::<u8>(), 1..32),
        msg in prop::collection::vec(any::<u8>(), 0..128),
        flip in 0usize..128,
    ) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
        let mut tampered = msg.clone();
        if tampered.is_empty() {
            tampered.push(1);
        } else {
            let i = flip % tampered.len();
            tampered[i] ^= 1;
        }
        prop_assert!(!kp.public().verify(&tampered, &sig));
    }

    #[test]
    fn package_roundtrip_and_signed_integrity(
        app in any::<u32>(),
        counter in 1u64..u64::MAX,
        payload in prop::collection::vec(any::<u8>(), 0..256),
        flip in 0usize..1024,
    ) {
        let package = UpdatePackage::new(
            AppId(app), Version::new(1, 2, 3), counter, payload,
        ).with_metadata("k", "v");
        let bytes = package.to_bytes();
        prop_assert_eq!(UpdatePackage::from_bytes(&bytes).unwrap(), package.clone());

        let authority = KeyPair::from_seed(b"prop authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let signed = SignedPackage::create(&package, &authority);
        prop_assert!(signed.verify(&registry).is_ok());
        let mut bad = signed.clone();
        let i = flip % bad.package_bytes.len();
        bad.package_bytes[i] ^= 0x40;
        prop_assert!(bad.verify(&registry).is_err());
    }

    // -------------------------------------------------------- scheduling --

    #[test]
    fn tt_synthesis_output_always_validates(
        params in prop::collection::vec((1u64..6, 1u64..4), 1..6)
    ) {
        // Periods from {2,4,8,16,32} ms, wcet a fraction of the period.
        let set: TaskSet = params
            .iter()
            .enumerate()
            .map(|(i, (p, c))| {
                let period = SimDuration::from_millis(1 << p);
                let wcet = SimDuration::from_millis((*c).min(1 << (p - 1)).max(1));
                TaskSpec::periodic(TaskId(i as u32), format!("t{i}"), period, wcet)
            })
            .collect();
        match tt::synthesize(&set) {
            Ok(schedule) => {
                prop_assert!(schedule.validate(&set).is_ok());
                prop_assert!(schedule.utilization() <= 1.0 + 1e-9);
            }
            Err(_) => {
                // The heuristic may fail; it must never return garbage.
            }
        }
    }

    #[test]
    fn incremental_insert_never_disturbs(
        base in prop::collection::vec((1u64..5, 1u64..3), 1..4),
        new_period in 1u64..5,
    ) {
        let set: TaskSet = base
            .iter()
            .enumerate()
            .map(|(i, (p, c))| {
                let period = SimDuration::from_millis(1 << p);
                let wcet = SimDuration::from_millis((*c).min(1 << (p - 1)).max(1));
                TaskSpec::periodic(TaskId(i as u32), format!("t{i}"), period, wcet)
            })
            .collect();
        let Ok(schedule) = tt::synthesize(&set) else { return Ok(()); };
        let new_task = TaskSpec::periodic(
            TaskId(1000),
            "new",
            SimDuration::from_millis(1 << new_period),
            SimDuration::from_millis(1),
        );
        if let Ok(grown) = tt::insert_incremental(&schedule, &new_task) {
            prop_assert_eq!(tt::disturbance(&schedule, &grown), 0);
            let mut full = set.clone();
            full.push(new_task);
            prop_assert!(grown.validate(&full).is_ok());
        }
    }

    #[test]
    fn admission_controller_never_admits_unschedulable_edf_sets(
        tasks in prop::collection::vec((1u64..6, 1u64..16), 1..8)
    ) {
        let mut ctrl = AdmissionController::with_test(AdmissionTest::Edf);
        for (i, (p, c)) in tasks.iter().enumerate() {
            let period = SimDuration::from_millis(1 << p);
            let wcet = SimDuration::from_micros(*c * 100);
            if wcet > period {
                continue;
            }
            let task = TaskSpec::periodic(TaskId(i as u32), format!("t{i}"), period, wcet);
            let _ = ctrl.try_admit(task);
            // Invariant: the admitted set always stays schedulable.
            prop_assert!(ctrl.admitted().utilization() <= 1.0 + 1e-9);
            prop_assert!(dynplat::sched::edf::is_edf_schedulable(ctrl.admitted()));
        }
    }

    // ------------------------------------------------------------- CAN ----

    #[test]
    fn can_simulation_never_beats_analysis(
        payloads in prop::collection::vec(1usize..9, 2..6),
    ) {
        let specs: Vec<CanMessageSpec> = payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                CanMessageSpec::periodic(
                    MessageId(i as u32),
                    p,
                    SimDuration::from_millis(10 * (i as u64 + 1)),
                )
            })
            .collect();
        let analysis = CanAnalysis::new(500_000, specs.clone());
        prop_assume!(analysis.is_schedulable());
        let bounds = analysis.response_times();

        let mut bus = CanArbiter::new(500_000);
        let mut events = Vec::new();
        for spec in &specs {
            let mut t = SimTime::ZERO;
            while t < SimTime::from_millis(100) {
                events.push(TxEvent {
                    arrival: t,
                    frame: Frame::new(spec.id, spec.payload).with_priority(spec.id.raw()),
                });
                t += spec.period;
            }
        }
        for tx in simulate(&mut bus, events) {
            let bound = bounds
                .iter()
                .find(|b| b.id == tx.frame.id)
                .and_then(|b| b.wcrt)
                .expect("schedulable");
            prop_assert!(tx.latency() <= bound);
        }
    }

    #[test]
    fn can_frame_time_is_monotone_in_payload(bitrate in 100_000u64..1_000_000) {
        let mut last = SimDuration::ZERO;
        for payload in 0..=8usize {
            let t = can_frame_time(payload, bitrate);
            prop_assert!(t >= last);
            last = t;
        }
    }

    // ------------------------------------------------------------ model ----

    #[test]
    fn dsl_roundtrip_for_generated_models(
        n_ecus in 1usize..5,
        n_apps in 1usize..5,
        seedwork in 1u32..50,
    ) {
        use dynplat::model::ir::{AppModel, Deployment, MappingChoice, SystemModel};
        use dynplat::hw::ecu::{EcuClass, EcuSpec};
        use dynplat::hw::topology::{BusKind, BusSpec, HwTopology};
        use dynplat::common::{AppKind, Asil, BusId, EcuId};

        let mut hw = HwTopology::new();
        let mut ids = Vec::new();
        for i in 0..n_ecus {
            let class = match i % 3 {
                0 => EcuClass::LowEnd,
                1 => EcuClass::Domain,
                _ => EcuClass::HighPerformance,
            };
            hw.add_ecu(EcuSpec::of_class(EcuId(i as u16), format!("e{i}"), class)).unwrap();
            ids.push(EcuId(i as u16));
        }
        hw.add_bus(BusSpec::new(BusId(0), "b", BusKind::ethernet_100m(), ids.clone())).unwrap();
        let mut deployment = Deployment::default();
        let applications: Vec<AppModel> = (0..n_apps)
            .map(|i| {
                deployment.mapping.insert(
                    AppId(i as u32),
                    if i % 2 == 0 {
                        MappingChoice::Fixed(ids[i % ids.len()])
                    } else {
                        MappingChoice::AnyOf(ids.clone())
                    },
                );
                AppModel {
                    id: AppId(i as u32),
                    name: format!("app{i}"),
                    kind: if i % 2 == 0 { AppKind::Deterministic } else { AppKind::NonDeterministic },
                    asil: Asil::ALL[i % 5],
                    provides: vec![],
                    consumes: vec![],
                    period: SimDuration::from_millis(10 * (i as u64 + 1)),
                    work_mi: f64::from(seedwork) / 10.0,
                    memory_kib: 64 * (i as u32 + 1),
                    needs_gpu: false,
                }
            })
            .collect();
        let model = SystemModel { hardware: hw, interfaces: vec![], applications, deployment };
        let text = dynplat::model::dsl::print_model(&model);
        let back = dynplat::model::dsl::parse_model(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse: {e}\n{text}")))?;
        prop_assert_eq!(back, model);
    }

    // ------------------------------------------------------------ wire -----

    #[test]
    fn someip_header_roundtrip(
        service in any::<u16>(), method in any::<u16>(),
        client in any::<u16>(), session in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        use dynplat::comm::wire::SomeIpHeader;
        let mut h = SomeIpHeader::request(
            ServiceId(service), MethodId(method), client, session,
        );
        h.payload_len = payload.len() as u32;
        let wire = h.encode(&payload);
        let (decoded, p) = SomeIpHeader::decode(&wire).expect("own encoding decodes");
        prop_assert_eq!(p, &payload[..]);
        prop_assert_eq!(decoded, h);
    }
}
