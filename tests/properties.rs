//! Property-based tests over the workspace invariants (DESIGN.md §6).
//!
//! Implemented as seeded-random loop tests on `dynplat::common::rng` (no
//! external property-testing dependency): each test derives one RNG stream
//! per case via `split_seed`, so failures replay from the printed case seed.

use dynplat::common::codec::{ByteReader, ByteWriter};
use dynplat::common::rng::{seeded_rng, split_seed, Rng, SplitMix64};
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::value::{DataType, Value};
use dynplat::common::{AppId, MessageId, MethodId, ServiceId, TaskId};
use dynplat::net::can::{can_frame_time, CanAnalysis, CanArbiter, CanMessageSpec};
use dynplat::net::{simulate, Frame, TxEvent};
use dynplat::sched::admission::{AdmissionController, AdmissionTest};
use dynplat::sched::task::{TaskSet, TaskSpec};
use dynplat::sched::tt;
use dynplat::security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat::security::sha256::{hmac_sha256, sha256, Sha256};
use dynplat::security::sign::KeyPair;

const SUITE_SEED: u64 = 0x5EED_0001;
const CASES: u64 = 64;

/// One deterministic RNG per (test, case) pair.
fn case_rng(test: u64, case: u64) -> SplitMix64 {
    seeded_rng(split_seed(split_seed(SUITE_SEED, test), case))
}

fn rand_bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

fn rand_printable(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| rng.gen_range(0x20u8..0x7F) as char)
        .collect()
}

fn rand_ident(rng: &mut SplitMix64, tag: usize) -> String {
    let len = rng.gen_range(1usize..6);
    let mut s: String = (0..len)
        .map(|_| rng.gen_range(b'a'..=b'z') as char)
        .collect();
    // Suffix keeps record field names unique within one container.
    s.push_str(&tag.to_string());
    s
}

// ---------------------------------------------------------------- codecs --

fn arb_leaf_type(rng: &mut SplitMix64) -> DataType {
    match rng.gen_range(0usize..10) {
        0 => DataType::Bool,
        1 => DataType::U8,
        2 => DataType::U16,
        3 => DataType::U32,
        4 => DataType::U64,
        5 => DataType::I64,
        6 => DataType::F64,
        7 => DataType::Str,
        8 => DataType::Blob,
        _ => {
            let n = rng.gen_range(1usize..4);
            DataType::Enum((0..n).map(|i| rand_ident(rng, i)).collect())
        }
    }
}

fn arb_type(rng: &mut SplitMix64, depth: usize) -> DataType {
    if depth == 0 || rng.gen_bool(0.4) {
        return arb_leaf_type(rng);
    }
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(0usize..4);
        DataType::array(arb_type(rng, depth - 1), n)
    } else {
        let n = rng.gen_range(1usize..4);
        DataType::Record(
            (0..n)
                .map(|i| (rand_ident(rng, i), arb_type(rng, depth - 1)))
                .collect(),
        )
    }
}

fn arb_value_of(rng: &mut SplitMix64, ty: &DataType) -> Value {
    match ty {
        DataType::Bool => Value::Bool(rng.gen()),
        DataType::U8 => Value::U8(rng.gen()),
        DataType::U16 => Value::U16(rng.gen()),
        DataType::U32 => Value::U32(rng.gen()),
        DataType::U64 => Value::U64(rng.gen()),
        DataType::I64 => Value::I64(rng.gen()),
        DataType::F64 => Value::F64(f64::from(rng.gen::<u32>() as i32)),
        DataType::Str => Value::Str(rand_printable(rng, 24)),
        DataType::Blob => Value::Blob(rand_bytes(rng, 32)),
        DataType::Array(elem, len) => {
            Value::Array((0..*len).map(|_| arb_value_of(rng, elem)).collect())
        }
        DataType::Record(fields) => Value::Record(
            fields
                .iter()
                .map(|(n, t)| (n.clone(), arb_value_of(rng, t)))
                .collect(),
        ),
        DataType::Enum(variants) => Value::EnumOrdinal(rng.gen_range(0..variants.len() as u8)),
    }
}

#[test]
fn typed_value_encode_decode_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let ty = arb_type(&mut rng, 3);
        let value = arb_value_of(&mut rng, &ty);
        assert!(value.conforms_to(&ty), "case {case}");
        let bytes = value.encode();
        let (lo, hi) = ty.encoded_size_bounds();
        assert!(
            bytes.len() >= lo && bytes.len() <= hi.max(lo) + 1024,
            "case {case}"
        );
        let back = Value::decode(&bytes, &ty).expect("own encoding decodes");
        assert_eq!(back, value, "case {case}");
    }
}

#[test]
fn byte_writer_reader_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let (a, b, c, d) = (
            rng.gen::<u8>(),
            rng.gen::<u16>(),
            rng.gen::<u32>(),
            rng.gen::<u64>(),
        );
        let s = rand_printable(&mut rng, 64);
        let blob = rand_bytes(&mut rng, 128);
        let mut w = ByteWriter::new();
        w.put_u8(a);
        w.put_u16(b);
        w.put_u32(c);
        w.put_u64(d);
        w.put_string(&s);
        w.put_len_prefixed(&blob);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u8().unwrap(), a);
        assert_eq!(r.take_u16().unwrap(), b);
        assert_eq!(r.take_u32().unwrap(), c);
        assert_eq!(r.take_u64().unwrap(), d);
        assert_eq!(r.take_string().unwrap(), s);
        assert_eq!(r.take_len_prefixed(1024).unwrap(), &blob[..]);
        assert!(r.is_empty());
    }
}

#[test]
fn truncated_input_never_panics() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let data = rand_bytes(&mut rng, 64);
        let mut r = ByteReader::new(&data);
        let _ = r.take_u64();
        let _ = r.take_string();
        let ty = DataType::record([("a", DataType::U32), ("b", DataType::Str)]);
        let _ = Value::decode(&data, &ty); // must return Err, not panic
    }
}

// ---------------------------------------------------------------- security --

#[test]
fn sha256_incremental_equals_one_shot() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let data = rand_bytes(&mut rng, 512);
        let split = rng.gen_range(0usize..512).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data), "case {case}");
    }
}

#[test]
fn hmac_differs_under_key_or_message_change() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let mut key = rand_bytes(&mut rng, 63);
        key.push(rng.gen());
        let msg = rand_bytes(&mut rng, 64);
        let mac = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        assert_ne!(mac, hmac_sha256(&key2, &msg), "case {case}");
        let mut msg2 = msg.clone();
        msg2.push(0);
        assert_ne!(mac, hmac_sha256(&key, &msg2), "case {case}");
    }
}

#[test]
fn signature_roundtrip_and_tamper_rejection() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let mut seed = rand_bytes(&mut rng, 31);
        seed.push(rng.gen());
        let msg = rand_bytes(&mut rng, 128);
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        assert!(kp.public().verify(&msg, &sig), "case {case}");
        let mut tampered = msg.clone();
        if tampered.is_empty() {
            tampered.push(1);
        } else {
            let i = rng.gen_range(0..tampered.len());
            tampered[i] ^= 1;
        }
        assert!(!kp.public().verify(&tampered, &sig), "case {case}");
    }
}

#[test]
fn package_roundtrip_and_signed_integrity() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let app: u32 = rng.gen();
        let counter = rng.gen_range(1u64..u64::MAX);
        let payload = rand_bytes(&mut rng, 256);
        let package = UpdatePackage::new(AppId(app), Version::new(1, 2, 3), counter, payload)
            .with_metadata("k", "v");
        let bytes = package.to_bytes();
        assert_eq!(UpdatePackage::from_bytes(&bytes).unwrap(), package.clone());

        let authority = KeyPair::from_seed(b"prop authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let signed = SignedPackage::create(&package, &authority);
        assert!(signed.verify(&registry).is_ok(), "case {case}");
        let mut bad = signed.clone();
        let i = rng.gen_range(0..bad.package_bytes.len());
        bad.package_bytes[i] ^= 0x40;
        assert!(bad.verify(&registry).is_err(), "case {case}");
    }
}

// -------------------------------------------------------------- scheduling --

fn rand_task_set(rng: &mut SplitMix64, max_tasks: usize) -> TaskSet {
    let n = rng.gen_range(1usize..max_tasks + 1);
    (0..n)
        .map(|i| {
            // Periods from {2,4,8,16,32} ms, wcet a fraction of the period.
            let p = rng.gen_range(1u64..6);
            let c = rng.gen_range(1u64..4);
            let period = SimDuration::from_millis(1 << p);
            let wcet = SimDuration::from_millis(c.min(1 << (p - 1)).max(1));
            TaskSpec::periodic(TaskId(i as u32), format!("t{i}"), period, wcet)
        })
        .collect()
}

#[test]
fn tt_synthesis_output_always_validates() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let set = rand_task_set(&mut rng, 5);
        match tt::synthesize(&set) {
            Ok(schedule) => {
                assert!(schedule.validate(&set).is_ok(), "case {case}");
                assert!(schedule.utilization() <= 1.0 + 1e-9, "case {case}");
            }
            Err(_) => {
                // The heuristic may fail; it must never return garbage.
            }
        }
    }
}

#[test]
fn incremental_insert_never_disturbs() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let n = rng.gen_range(1usize..4);
        let set: TaskSet = (0..n)
            .map(|i| {
                let p = rng.gen_range(1u64..5);
                let c = rng.gen_range(1u64..3);
                let period = SimDuration::from_millis(1 << p);
                let wcet = SimDuration::from_millis(c.min(1 << (p - 1)).max(1));
                TaskSpec::periodic(TaskId(i as u32), format!("t{i}"), period, wcet)
            })
            .collect();
        let new_period = rng.gen_range(1u64..5);
        let Ok(schedule) = tt::synthesize(&set) else {
            continue;
        };
        let new_task = TaskSpec::periodic(
            TaskId(1000),
            "new",
            SimDuration::from_millis(1 << new_period),
            SimDuration::from_millis(1),
        );
        if let Ok(grown) = tt::insert_incremental(&schedule, &new_task) {
            assert_eq!(tt::disturbance(&schedule, &grown), 0, "case {case}");
            let mut full = set.clone();
            full.push(new_task);
            assert!(grown.validate(&full).is_ok(), "case {case}");
        }
    }
}

#[test]
fn admission_controller_never_admits_unschedulable_edf_sets() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let mut ctrl = AdmissionController::with_test(AdmissionTest::Edf);
        let n = rng.gen_range(1usize..8);
        for i in 0..n {
            let p = rng.gen_range(1u64..6);
            let c = rng.gen_range(1u64..16);
            let period = SimDuration::from_millis(1 << p);
            let wcet = SimDuration::from_micros(c * 100);
            if wcet > period {
                continue;
            }
            let task = TaskSpec::periodic(TaskId(i as u32), format!("t{i}"), period, wcet);
            let _ = ctrl.try_admit(task);
            // Invariant: the admitted set always stays schedulable.
            assert!(ctrl.admitted().utilization() <= 1.0 + 1e-9, "case {case}");
            assert!(
                dynplat::sched::edf::is_edf_schedulable(ctrl.admitted()),
                "case {case}"
            );
        }
    }
}

// --------------------------------------------------------------------- CAN --

#[test]
fn can_simulation_never_beats_analysis() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let n = rng.gen_range(2usize..6);
        let specs: Vec<CanMessageSpec> = (0..n)
            .map(|i| {
                CanMessageSpec::periodic(
                    MessageId(i as u32),
                    rng.gen_range(1usize..9),
                    SimDuration::from_millis(10 * (i as u64 + 1)),
                )
            })
            .collect();
        let analysis = CanAnalysis::new(500_000, specs.clone());
        if !analysis.is_schedulable() {
            continue;
        }
        let bounds = analysis.response_times();

        let mut bus = CanArbiter::new(500_000);
        let mut events = Vec::new();
        for spec in &specs {
            let mut t = SimTime::ZERO;
            while t < SimTime::from_millis(100) {
                events.push(TxEvent {
                    arrival: t,
                    frame: Frame::new(spec.id, spec.payload).with_priority(spec.id.raw()),
                });
                t += spec.period;
            }
        }
        for tx in simulate(&mut bus, events) {
            let bound = bounds
                .iter()
                .find(|b| b.id == tx.frame.id)
                .and_then(|b| b.wcrt)
                .expect("schedulable");
            assert!(tx.latency() <= bound, "case {case}");
        }
    }
}

#[test]
fn can_frame_time_is_monotone_in_payload() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let bitrate = rng.gen_range(100_000u64..1_000_000);
        let mut last = SimDuration::ZERO;
        for payload in 0..=8usize {
            let t = can_frame_time(payload, bitrate);
            assert!(t >= last, "case {case}");
            last = t;
        }
    }
}

// ------------------------------------------------------------------- model --

#[test]
fn dsl_roundtrip_for_generated_models() {
    use dynplat::common::{AppKind, Asil, BusId, EcuId};
    use dynplat::hw::ecu::{EcuClass, EcuSpec};
    use dynplat::hw::topology::{BusKind, BusSpec, HwTopology};
    use dynplat::model::ir::{AppModel, Deployment, MappingChoice, SystemModel};

    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let n_ecus = rng.gen_range(1usize..5);
        let n_apps = rng.gen_range(1usize..5);
        let seedwork = rng.gen_range(1u32..50);

        let mut hw = HwTopology::new();
        let mut ids = Vec::new();
        for i in 0..n_ecus {
            let class = match i % 3 {
                0 => EcuClass::LowEnd,
                1 => EcuClass::Domain,
                _ => EcuClass::HighPerformance,
            };
            hw.add_ecu(EcuSpec::of_class(EcuId(i as u16), format!("e{i}"), class))
                .unwrap();
            ids.push(EcuId(i as u16));
        }
        hw.add_bus(BusSpec::new(
            BusId(0),
            "b",
            BusKind::ethernet_100m(),
            ids.clone(),
        ))
        .unwrap();
        let mut deployment = Deployment::default();
        let applications: Vec<AppModel> = (0..n_apps)
            .map(|i| {
                deployment.mapping.insert(
                    AppId(i as u32),
                    if i % 2 == 0 {
                        MappingChoice::Fixed(ids[i % ids.len()])
                    } else {
                        MappingChoice::AnyOf(ids.clone())
                    },
                );
                AppModel {
                    id: AppId(i as u32),
                    name: format!("app{i}"),
                    kind: if i % 2 == 0 {
                        AppKind::Deterministic
                    } else {
                        AppKind::NonDeterministic
                    },
                    asil: Asil::ALL[i % 5],
                    provides: vec![],
                    consumes: vec![],
                    period: SimDuration::from_millis(10 * (i as u64 + 1)),
                    work_mi: f64::from(seedwork) / 10.0,
                    memory_kib: 64 * (i as u32 + 1),
                    needs_gpu: false,
                }
            })
            .collect();
        let model = SystemModel {
            hardware: hw,
            interfaces: vec![],
            applications,
            deployment,
        };
        let text = dynplat::model::dsl::print_model(&model);
        let back = dynplat::model::dsl::parse_model(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse: {e}\n{text}"));
        assert_eq!(back, model, "case {case}");
    }
}

// -------------------------------------------------------------------- wire --

#[test]
fn someip_header_roundtrip() {
    use dynplat::comm::wire::SomeIpHeader;
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let mut h = SomeIpHeader::request(
            ServiceId(rng.gen()),
            MethodId(rng.gen()),
            rng.gen(),
            rng.gen(),
        );
        let payload = rand_bytes(&mut rng, 256);
        h.payload_len = payload.len() as u32;
        let wire = h.encode(&payload);
        let (decoded, p) = SomeIpHeader::decode(&wire).expect("own encoding decodes");
        assert_eq!(p, &payload[..], "case {case}");
        assert_eq!(decoded, h, "case {case}");
    }
}
