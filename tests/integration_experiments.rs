//! Shape guards: every qualitative claim EXPERIMENTS.md makes about the
//! paper's predictions is asserted here on scaled-down workloads, so a
//! regression that flips an experiment's outcome fails CI instead of
//! silently invalidating the write-up.

use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{AppId, EcuId, MessageId, TaskId};
use dynplat::dse::consolidate::{consolidated_architecture, federated_architecture};
use dynplat::dse::search::DseConfig;
use dynplat::net::ethernet::{ethernet_frame_time, FifoPort, StrictPriorityPort};
use dynplat::net::{simulate, Frame, GateControlList, TrafficClass, TsnGatedPort, TxEvent};
use dynplat::sched::server::PeriodicServer;
use dynplat::sched::simulate::{simulate_schedule, Policy, SchedSimConfig};
use dynplat::sched::task::{TaskSet, TaskSpec};
use dynplat::xil::control::VirtualControlUnit;
use dynplat::xil::harness::{cruise_suite, TestHarness};
use dynplat::xil::TestLevel;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// E1: consolidation reduces ECU count and (at fleet scale) cost.
#[test]
fn e1_shape_consolidation_wins_at_scale() {
    let apps = dynplat_bench_functions(24);
    let (_, fed) = federated_architecture(&apps);
    let cfg = DseConfig {
        iterations: 600,
        seed: 7,
        ..Default::default()
    };
    let (_, _, cons) = consolidated_architecture(&apps, 3, &cfg);
    assert!(cons.feasible);
    assert!(cons.ecus < fed.ecus);
    assert!(cons.cost < fed.cost);
}

// A local copy of the bench workload generator (the bench crate is not a
// dependency of the facade).
fn dynplat_bench_functions(n: u32) -> Vec<dynplat::model::ir::AppModel> {
    use dynplat::common::{AppKind, Asil};
    (0..n)
        .map(|i| dynplat::model::ir::AppModel {
            id: AppId(i + 1),
            name: format!("fn{}", i + 1),
            kind: if i % 3 != 2 {
                AppKind::Deterministic
            } else {
                AppKind::NonDeterministic
            },
            asil: Asil::ALL[(i % 5) as usize],
            provides: vec![],
            consumes: vec![],
            period: ms(10 + u64::from(i % 4) * 10),
            work_mi: 0.5 + f64::from(i % 5) * 0.4,
            memory_kib: 128 + (i % 8) * 128,
            needs_gpu: false,
        })
        .collect()
}

/// E2: FIFO misses DA deadlines under NDA load; platform policies do not.
#[test]
fn e2_shape_isolation_protects_deterministic_apps() {
    let set: TaskSet = [
        TaskSpec::periodic(TaskId(1), "da", ms(10), ms(2)).with_priority(0),
        TaskSpec::periodic(TaskId(50), "nda", ms(40), ms(25))
            .with_priority(100)
            .non_deterministic(),
    ]
    .into_iter()
    .collect();
    let cfg = SchedSimConfig {
        horizon: ms(400),
        ..Default::default()
    };
    let fifo = simulate_schedule(&set, &Policy::NonPreemptiveFifo, &cfg);
    assert!(
        fifo.deterministic_miss_rate() > 0.1,
        "baseline must interfere"
    );
    for policy in [
        Policy::FixedPriorityPreemptive,
        Policy::FpWithServer(PeriodicServer::new(ms(5), ms(10))),
    ] {
        let stats = simulate_schedule(&set, &policy, &cfg);
        assert_eq!(stats.deterministic_miss_rate(), 0.0, "{policy:?}");
        assert!(
            stats.non_deterministic_throughput() > 0,
            "{policy:?} starves NDA"
        );
    }
}

/// E4: urgent-frame latency — FIFO grows with backlog, 802.1p bounded by
/// one frame, TSN load-independent.
#[test]
fn e4_shape_urgent_frame_isolation() {
    const MBIT100: u64 = 100_000_000;
    let scenario = |n: u64| -> Vec<TxEvent> {
        let mut events: Vec<TxEvent> = (0..n)
            .map(|i| TxEvent {
                arrival: SimTime::from_micros(i * 50),
                frame: Frame::new(MessageId(100 + i as u32), 1500).with_priority(6),
            })
            .collect();
        // Fixed phase within the 1 ms gating cycle so TSN latency depends
        // only on the gates, never on the backlog.
        let urgent_at = ((n * 25) / 1000 + 1) * 1000 + 10;
        events.push(TxEvent {
            arrival: SimTime::from_micros(urgent_at),
            frame: Frame::new(MessageId(1), 64)
                .with_priority(0)
                .with_class(TrafficClass::Critical),
        });
        events
    };
    let urgent = |done: Vec<dynplat::net::Transmission>| {
        done.into_iter()
            .find(|t| t.frame.id == MessageId(1))
            .expect("delivered")
            .latency()
    };

    let fifo_small = urgent(simulate(&mut FifoPort::new(MBIT100), scenario(50)));
    let fifo_large = urgent(simulate(&mut FifoPort::new(MBIT100), scenario(500)));
    assert!(
        fifo_large > fifo_small * 5,
        "FIFO latency grows with backlog"
    );

    let bound = ethernet_frame_time(1500, MBIT100) + ethernet_frame_time(64, MBIT100);
    let prio = urgent(simulate(
        &mut StrictPriorityPort::new(MBIT100),
        scenario(500),
    ));
    assert!(prio <= bound, "802.1p bounded by one frame of blocking");

    let gcl = GateControlList::mixed_criticality(ms(1), 0.3);
    let tsn_small = urgent(simulate(
        &mut TsnGatedPort::new(MBIT100, gcl.clone()),
        scenario(50),
    ));
    let tsn_large = urgent(simulate(
        &mut TsnGatedPort::new(MBIT100, gcl),
        scenario(500),
    ));
    assert_eq!(
        tsn_small, tsn_large,
        "TSN critical latency is load-independent"
    );
}

/// E5: staged update zero outage; stop-restart outage > 0 (already covered
/// in unit tests); the centralized-switch window scales with clock error.
#[test]
fn e5_shape_centralized_switch_window_scales() {
    use dynplat::core::update::centralized_switch_update;
    use dynplat::sim::jitter::ClockModel;
    use std::collections::BTreeMap;
    let window = |err_ms: i64| {
        let clocks: BTreeMap<EcuId, ClockModel> = [
            (EcuId(0), ClockModel::new(err_ms * 1_000_000, 0.0)),
            (EcuId(1), ClockModel::new(-err_ms * 1_000_000, 0.0)),
        ]
        .into_iter()
        .collect();
        centralized_switch_update(&clocks, SimTime::from_secs(10), false)
            .0
            .mixed_version_window
    };
    assert_eq!(window(0), SimDuration::ZERO);
    assert_eq!(window(5), ms(10));
    assert!(window(20) == ms(40) && window(20) > window(5));
}

/// E11: the same defect reproduces at the same step on every level, with
/// MiL ≪ SiL ≪ HiL wall clock.
#[test]
fn e11_shape_xil_cost_ordering() {
    let harness = TestHarness::new(VirtualControlUnit::cruise_control())
        .with_buggy_variant(VirtualControlUnit::cruise_control_buggy());
    let suite = cruise_suite();
    let mil = harness.run_suite(TestLevel::Mil, &suite);
    let sil = harness.run_suite(TestLevel::Sil, &suite);
    let hil = harness.run_suite(TestLevel::Hil, &suite);
    assert!(mil.all_passed() && sil.all_passed() && hil.all_passed());
    assert!(mil.wall_clock < sil.wall_clock);
    assert!(sil.wall_clock < hil.wall_clock);
    assert!(hil.wall_clock.as_nanos() > mil.wall_clock.as_nanos() * 50);
}

/// E10: the utilization-only admission test is unsound where the EDF test
/// is exact (constrained deadlines).
#[test]
fn e10_shape_admission_soundness_gap() {
    use dynplat::sched::admission::{AdmissionController, AdmissionTest};
    let a = TaskSpec::periodic(TaskId(1), "a", ms(4), ms(1)).with_deadline(ms(2));
    let b = TaskSpec::periodic(TaskId(2), "b", ms(4), ms(2)).with_deadline(ms(2));
    let mut naive =
        AdmissionController::with_test(AdmissionTest::UtilizationOnly { limit_milli: 1000 });
    assert!(naive.try_admit(a.clone()).unwrap().admitted);
    assert!(
        naive.try_admit(b.clone()).unwrap().admitted,
        "unsound admit"
    );
    assert!(!dynplat::sched::edf::is_edf_schedulable(naive.admitted()));
    let mut exact = AdmissionController::with_test(AdmissionTest::Edf);
    assert!(exact.try_admit(a).unwrap().admitted);
    assert!(!exact.try_admit(b).unwrap().admitted, "exact test rejects");
}

/// Gate-delay analysis bounds the TSN behavior the E3/E4 experiments rely on.
#[test]
fn tsn_gate_bound_consistency() {
    use dynplat::net::analysis::worst_case_gate_delay;
    const MBIT100: u64 = 100_000_000;
    let gcl = GateControlList::mixed_criticality(ms(1), 0.25);
    let tx = ethernet_frame_time(200, MBIT100);
    let bound = worst_case_gate_delay(&gcl, TrafficClass::Critical, tx).expect("fits");
    // Probe arrival phases on an idle port; waits never exceed the bound.
    for phase in (0..1000).step_by(13) {
        let mut port = TsnGatedPort::new(MBIT100, gcl.clone());
        let done = simulate(
            &mut port,
            vec![TxEvent {
                arrival: SimTime::from_micros(phase),
                frame: Frame::new(MessageId(1), 200)
                    .with_priority(0)
                    .with_class(TrafficClass::Critical),
            }],
        );
        let wait = done[0].latency().saturating_sub(tx);
        assert!(wait <= bound, "phase {phase}: {wait} > {bound}");
    }
}
