//! Property-based tests, part 4: the retry/backoff schedule.
//!
//! [`RetryPolicy::backoff_before`] and [`RetryPolicy::schedule`] sit under
//! every fault-tolerant round trip in the workspace — the E12 campaign
//! derives its whole attempt plan from them — so their contracts are
//! pinned as properties over randomized policies:
//!
//! * **seed-stable** — pure functions of `(policy, inputs, seed)`;
//! * **monotone** — attempt numbers, transmission times and deadlines all
//!   strictly increase within a schedule;
//! * **bounded** — every backoff stays within
//!   `max_backoff · (1 + jitter_frac)`, and jitter never undershoots the
//!   deterministic exponential floor.
//!
//! Implemented as seeded-random loop tests on `dynplat::common::rng` (no
//! external property-testing dependency).

use dynplat::comm::retry::RetryPolicy;
use dynplat::common::rng::{seeded_rng, split_seed, Rng, SplitMix64};
use dynplat::common::time::{SimDuration, SimTime};

const SUITE_SEED: u64 = 0x5EED_0004;
const CASES: u64 = 64;

/// One deterministic RNG per (test, case) pair.
fn case_rng(test: u64, case: u64) -> SplitMix64 {
    seeded_rng(split_seed(split_seed(SUITE_SEED, test), case))
}

/// A randomized but well-formed policy: non-zero timeout, capped backoff,
/// jitter in `[0, 0.5)`.
fn random_policy(rng: &mut SplitMix64) -> RetryPolicy {
    let base_ms = rng.gen_range(0u64..8);
    RetryPolicy {
        timeout: SimDuration::from_millis(1 + rng.gen_range(0u64..20)),
        max_attempts: 1 + rng.gen_range(0u64..6) as u32,
        base_backoff: SimDuration::from_millis(base_ms),
        max_backoff: SimDuration::from_millis(base_ms + rng.gen_range(0u64..50)),
        jitter_frac: rng.gen_range(0u64..5) as f64 * 0.1,
    }
}

#[test]
fn schedules_are_pure_in_policy_origin_and_seed() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let policy = random_policy(&mut rng);
        let t0 = SimTime::from_millis(rng.gen_range(0..10_000));
        let seed = rng.gen::<u64>();
        for retry in 1..=policy.max_attempts {
            assert_eq!(
                policy.backoff_before(retry, seed),
                policy.backoff_before(retry, seed),
                "case {case}: backoff must be pure"
            );
        }
        assert_eq!(
            policy.schedule(t0, seed),
            policy.schedule(t0, seed),
            "case {case}: schedule must be pure"
        );
    }
}

#[test]
fn attempt_times_are_strictly_monotone_and_internally_consistent() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let policy = random_policy(&mut rng);
        let t0 = SimTime::from_millis(rng.gen_range(0..10_000));
        let schedule = policy.schedule(t0, rng.gen::<u64>());
        assert_eq!(schedule.len(), policy.max_attempts.max(1) as usize);
        assert_eq!(schedule[0].send_at, t0, "case {case}: first attempt at t0");
        for (i, attempt) in schedule.iter().enumerate() {
            assert_eq!(
                attempt.number,
                i as u32 + 1,
                "case {case}: 1-based numbering"
            );
            assert_eq!(
                attempt.deadline,
                attempt.send_at + policy.timeout,
                "case {case}: deadline is send + timeout"
            );
        }
        for pair in schedule.windows(2) {
            assert!(
                pair[1].send_at > pair[0].send_at,
                "case {case}: transmissions must strictly advance"
            );
            assert!(
                pair[1].send_at >= pair[0].deadline,
                "case {case}: a retry may not overtake its predecessor's timeout"
            );
        }
    }
}

#[test]
fn every_backoff_is_bounded_by_the_cap_and_floored_by_the_exponential() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let policy = random_policy(&mut rng);
        let seed = rng.gen::<u64>();
        let ceiling = SimDuration::from_secs_f64(
            policy.max_backoff.as_secs_f64() * (1.0 + policy.jitter_frac),
        );
        for retry in 1..=policy.max_attempts {
            let backoff = policy.backoff_before(retry, seed);
            let exp = retry.saturating_sub(1).min(20);
            let floor = (policy.base_backoff * (1u64 << exp)).min(policy.max_backoff);
            assert!(
                backoff >= floor,
                "case {case} retry {retry}: jitter may only add, not subtract \
                 ({backoff} < {floor})"
            );
            assert!(
                backoff <= ceiling,
                "case {case} retry {retry}: backoff {backoff} above the jittered \
                 cap {ceiling}"
            );
        }
    }
}
