//! E14 integration: uncertainty-driven adaptation beats the threshold.
//!
//! The experiment's acceptance bar: under a fixed seed, replaying one
//! chaos campaign's fault-pressure series through both adaptation modes
//! gives the distribution-driven ladder strictly fewer false degradations
//! at equal-or-better detection latency for every noisy sweep point, and
//! the whole sweep (table and JSON) is bit-identical across runs.

use dynplat::common::time::SimDuration;
use dynplat_bench::adapt::{noise_points, run_sweep, sweep_to_json};

const SEED: u64 = 0xE14_5EED;

fn horizon() -> SimDuration {
    SimDuration::from_millis(6_000)
}

#[test]
fn the_sweep_is_deterministic_under_a_fixed_seed() {
    let a = sweep_to_json(SEED, &run_sweep(SEED, horizon()));
    let b = sweep_to_json(SEED, &run_sweep(SEED, horizon()));
    assert_eq!(
        a, b,
        "two runs under the same seed must agree byte for byte"
    );
    assert!(a.starts_with("{\"schema\":\"dynplat.e14.v1\""));
}

#[test]
fn every_point_is_calibrated_and_detected() {
    let results = run_sweep(SEED, horizon());
    assert_eq!(results.len(), noise_points().len());
    for r in &results {
        assert!(
            r.mean_clean_pressure < 0.10,
            "{}: clean pressure {} reaches the boundary — noise point \
             mis-calibrated",
            r.noise,
            r.mean_clean_pressure
        );
        assert!(
            r.threshold.detection_latency.is_some() && r.uncertainty.detection_latency.is_some(),
            "{}: both modes must detect the partition",
            r.noise
        );
    }
}

#[test]
fn uncertainty_mode_wins_where_noise_makes_points_lie() {
    for r in run_sweep(SEED, horizon()) {
        if r.noise == "low" {
            continue;
        }
        assert!(
            r.uncertainty.false_descents < r.threshold.false_descents,
            "{}: uncertainty mode must produce strictly fewer false \
             degradations ({} vs {})",
            r.noise,
            r.uncertainty.false_descents,
            r.threshold.false_descents
        );
        let (t, u) = (
            r.threshold.detection_latency.unwrap(),
            r.uncertainty.detection_latency.unwrap(),
        );
        assert!(
            u <= t,
            "{}: the confidence gate may not cost detection latency \
             ({u} vs {t})",
            r.noise
        );
    }
}
