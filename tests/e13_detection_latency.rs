//! E13 integration: detection latency is finite and seed-deterministic.
//!
//! The experiment's acceptance bar: under a fixed seed, every injected
//! fault kind in the scenario set yields a finite latency from injection
//! to detection — both for the RTT drift detector and for the flight
//! recorder's frozen incident dump — and the whole table is bit-identical
//! across runs.

use dynplat::common::time::{SimDuration, SimTime};
use dynplat_bench::detect::{run_all, scenarios};

const SEED: u64 = 0xE13_5EED;
const HORIZON_MS: u64 = 2_000;

fn horizon() -> SimDuration {
    SimDuration::from_millis(HORIZON_MS)
}

#[test]
fn every_fault_kind_has_finite_detection_latency() {
    let outcomes = run_all(SEED, horizon());
    assert_eq!(outcomes.len(), scenarios().len());
    for out in &outcomes {
        assert!(
            out.t_inject.is_some(),
            "{}: the plan never injected its own kind",
            out.name
        );
        assert!(
            out.capture_latency.is_some(),
            "{}: no flight dump froze after injection",
            out.name
        );
        assert!(
            out.drift_latency.is_some(),
            "{}: the RTT drift detector never raised a verdict",
            out.name
        );
        assert!(out.injections >= 1, "{}: zero injections", out.name);
        assert!(!out.dumps.is_empty(), "{}: dump list empty", out.name);
    }
}

#[test]
fn the_table_is_deterministic_under_a_fixed_seed() {
    let a: Vec<Vec<String>> = run_all(SEED, horizon()).iter().map(|o| o.row()).collect();
    let b: Vec<Vec<String>> = run_all(SEED, horizon()).iter().map(|o| o.row()).collect();
    assert_eq!(
        a, b,
        "two runs under the same seed must agree cell for cell"
    );
}

#[test]
fn frozen_dumps_carry_the_incident_context() {
    let outcomes = run_all(SEED, horizon());
    for out in &outcomes {
        let dump = &out.dumps[0];
        assert!(
            !dump.reason.is_empty(),
            "{}: dump without a reason",
            out.name
        );
        assert!(
            !dump.events.is_empty(),
            "{}: dump without ring events",
            out.name
        );
        // The dump freezes at (or after) the first injection of the kind.
        let t0 = out.t_inject.unwrap();
        assert!(
            SimTime::from_nanos(dump.time_ns) >= t0,
            "{}: dump predates the injection",
            out.name
        );
        let json = dump.to_json();
        assert!(
            json.contains("dynplat.flight.v1"),
            "{}: schema tag",
            out.name
        );
    }
}
