//! Cross-crate security integration: the full chain from model-derived
//! permissions through session authentication to signed deployment.

use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{AppId, EcuId, ServiceId};
use dynplat::core::DynamicPlatform;
use dynplat::model::dsl::parse_model;
use dynplat::model::generate::access_matrix;
use dynplat::security::authn::{service_accept_ticket, KeyServer, Principal, SecureChannel};
use dynplat::security::authz::Permission;
use dynplat::security::master::{UpdateMaster, WeakEcuVerifier};
use dynplat::security::package::{
    KeyRegistry, PackageError, SignedPackage, UpdatePackage, Version,
};
use dynplat::security::sign::KeyPair;

const MODEL: &str = r#"
system {
  hardware {
    ecu "weak" { id 0 class low }
    ecu "gw"   { id 1 class domain }
    bus "can0" { id 0 can 500000 attach [0 1] }
  }
  interface "door" {
    id 5 owner 1 version 1
    method "lock" { id 1 request bool response bool }
  }
  application "doorsrv" { id 1 deterministic asil B provides [5] period 50ms work 1 memory 128 }
  application "keyfob"  { id 2 non-deterministic asil B consumes [5 method 1] period 100ms work 1 memory 128 }
  deployment { app 1 on 1  app 2 on 1 }
}
"#;

#[test]
fn model_derived_matrix_drives_platform_authorization() {
    let model = parse_model(MODEL).expect("parses");
    let matrix = access_matrix(&model);
    let authority = KeyPair::from_seed(b"authority");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());
    let mut platform = DynamicPlatform::new(registry);
    for ecu in model.hardware.ecus() {
        platform.add_node(ecu.clone());
    }
    platform.set_access_matrix(matrix);

    // Deploy the door service.
    let app = model.application(AppId(1)).expect("present").clone();
    let signed = SignedPackage::create(
        &UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 1, vec![1]),
        &authority,
    );
    platform
        .deploy(SimTime::ZERO, EcuId(1), app, &signed)
        .expect("deploys");

    // The declared consumer may call; an undeclared app may not; even the
    // declared consumer may not subscribe (it only declared the method).
    use dynplat::common::MethodId;
    let now = SimTime::ZERO;
    assert!(platform
        .bind(now, AppId(2), ServiceId(5), Permission::Call(MethodId(1)))
        .is_ok());
    assert!(platform
        .bind(now, AppId(99), ServiceId(5), Permission::Call(MethodId(1)))
        .is_err());
    assert!(platform
        .bind(now, AppId(2), ServiceId(5), Permission::Subscribe)
        .is_err());
}

#[test]
fn authenticated_session_carries_an_authorized_call() {
    // AuthN (after [10]) on top of authZ: session grant, ticket check,
    // tamper-proof message exchange.
    let mut key_server = KeyServer::new();
    let client_key = [0x31; 32];
    let service_key = [0x32; 32];
    key_server.enroll(Principal::Client(AppId(2)), client_key);
    key_server.enroll(Principal::Service(ServiceId(5)), service_key);

    let grant = key_server
        .grant_session(AppId(2), ServiceId(5))
        .expect("granted");
    let mut service_side =
        service_accept_ticket(&service_key, AppId(2), ServiceId(5), &grant).expect("ticket ok");
    let mut client_side = SecureChannel::new(grant.session_key);

    let request = client_side.seal(b"lock(true)");
    assert_eq!(
        service_side.open(&request).expect("authentic"),
        b"lock(true)"
    );
    // Replay of the same message is rejected.
    assert!(service_side.open(&request).is_err());
}

#[test]
fn weak_ecu_install_path_uses_master_end_to_end() {
    let model = parse_model(MODEL).expect("parses");
    let authority = KeyPair::from_seed(b"authority");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());

    let psk = [0x77u8; 32];
    let mut master = UpdateMaster::new(registry.clone());
    master.enroll(EcuId(0), psk);

    let mut platform = DynamicPlatform::new(registry);
    for ecu in model.hardware.ecus() {
        platform.add_node(ecu.clone());
    }
    platform.set_update_master(master.clone());

    let app = model.application(AppId(2)).expect("present").clone();
    let signed = SignedPackage::create(
        &UpdatePackage::new(AppId(2), Version::new(1, 0, 0), 1, vec![7; 32]),
        &authority,
    );
    // Platform-level install succeeds through the master...
    platform
        .deploy(SimTime::ZERO, EcuId(0), app, &signed)
        .expect("weak ECU deploys");
    // ...and the voucher the master issues is verifiable by the weak ECU's
    // own HMAC check (the symmetric re-authentication of §4.1).
    let (_, voucher) = master.verify_for(&signed, EcuId(0)).expect("verifies");
    assert!(WeakEcuVerifier::new(EcuId(0), psk).accept(&signed.package_bytes, &voucher));
}

#[test]
fn rollback_is_refused_across_the_whole_platform() {
    let authority = KeyPair::from_seed(b"authority");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());
    let mut platform = DynamicPlatform::new(registry);
    platform.add_node(dynplat::hw::ecu::EcuSpec::of_class(
        EcuId(1),
        "gw",
        dynplat::hw::ecu::EcuClass::Domain,
    ));
    let model = parse_model(MODEL).expect("parses");
    let app = model.application(AppId(1)).expect("present").clone();

    let v2 = SignedPackage::create(
        &UpdatePackage::new(AppId(1), Version::new(2, 0, 0), 5, vec![2]),
        &authority,
    );
    platform
        .deploy(SimTime::ZERO, EcuId(1), app.clone(), &v2)
        .expect("v2 deploys");
    platform.stop_app(SimTime::ZERO, AppId(1)).expect("stopped");

    // An older, but correctly signed, package must be refused.
    let v1 = SignedPackage::create(
        &UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 3, vec![1]),
        &authority,
    );
    let err = platform
        .deploy(SimTime::ZERO, EcuId(1), app, &v1)
        .unwrap_err();
    assert!(matches!(
        err,
        dynplat::core::PlatformError::Package(PackageError::ReplayOrRollback { .. })
    ));
}

#[test]
fn runtime_permission_update_takes_effect_without_redeploy() {
    let model = parse_model(MODEL).expect("parses");
    let authority = KeyPair::from_seed(b"authority");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());
    let mut platform = DynamicPlatform::new(registry);
    for ecu in model.hardware.ecus() {
        platform.add_node(ecu.clone());
    }
    let app = model.application(AppId(1)).expect("present").clone();
    let signed = SignedPackage::create(
        &UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 1, vec![1]),
        &authority,
    );
    platform
        .deploy(SimTime::ZERO, EcuId(1), app, &signed)
        .expect("deploys");

    // The diagnosis logger gets a wildcard at runtime (§4.2's data-logger
    // scenario) — auditable through the matrix, no redeploy needed.
    let logger = AppId(42);
    assert!(platform
        .bind(SimTime::ZERO, logger, ServiceId(5), Permission::Subscribe)
        .is_err());
    let mut pack = dynplat::security::authz::AccessControlMatrix::new();
    pack.grant(logger, ServiceId(5), Permission::All);
    platform.merge_permissions(&pack);
    assert!(platform
        .bind(SimTime::ZERO, logger, ServiceId(5), Permission::Subscribe)
        .is_ok());

    let _ = SimDuration::ZERO;
}
