//! Property-based tests, part 2: TSN/FlexRay media invariants, Ethernet
//! analysis soundness, replica state synchronization, update campaigns,
//! typed endpoints and update paths.

use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::value::{DataType, Value};
use dynplat::common::{AppId, EventGroupId, MessageId, MethodId, ServiceId, VehicleId};
use dynplat::common::ids::ServiceInstance;
use dynplat::comm::endpoint::{ClientProxy, ServiceSkeleton};
use dynplat::core::campaign::{
    CampaignPolicy, UpdateCampaign, UpdateRequirements, VehicleConfig, VehicleOutcome,
};
use dynplat::core::sync::ReplicaState;
use dynplat::core::update::update_path;
use dynplat::net::analysis::{EthFlowSpec, EthernetAnalysis};
use dynplat::net::ethernet::StrictPriorityPort;
use dynplat::net::flexray::{FlexRayBus, FlexRayConfig, SlotAssignment};
use dynplat::net::tsn::{GateControlList, GateWindow, TsnGatedPort};
use dynplat::net::{simulate, Frame, TrafficClass, TxEvent};
use dynplat::security::authz::{AccessControlMatrix, Permission};
use dynplat::security::package::Version;
use proptest::prelude::*;
use std::collections::BTreeMap;

const MBIT100: u64 = 100_000_000;

fn arb_gcl() -> impl Strategy<Value = GateControlList> {
    // Cycle 1 ms, three non-overlapping windows with random split points.
    (50u64..400, 450u64..700)
        .prop_map(|(a, b)| {
            GateControlList::new(
                SimDuration::from_millis(1),
                vec![
                    GateWindow::new(
                        TrafficClass::Critical,
                        SimDuration::ZERO,
                        SimDuration::from_micros(a),
                    ),
                    GateWindow::new(
                        TrafficClass::Stream,
                        SimDuration::from_micros(a),
                        SimDuration::from_micros(b - a),
                    ),
                    GateWindow::new(
                        TrafficClass::BestEffort,
                        SimDuration::from_micros(b),
                        SimDuration::from_micros(1000 - b),
                    ),
                ],
            )
            .expect("constructed windows are valid")
        })
}

fn class_of(i: usize) -> TrafficClass {
    match i % 3 {
        0 => TrafficClass::Critical,
        1 => TrafficClass::Stream,
        _ => TrafficClass::BestEffort,
    }
}

proptest! {
    // --------------------------------------------------------------- TSN --

    #[test]
    fn tsn_transmissions_always_respect_their_class_windows(
        gcl in arb_gcl(),
        arrivals in prop::collection::vec((0u64..5_000, 1usize..1200), 1..40),
    ) {
        let mut port = TsnGatedPort::new(MBIT100, gcl.clone());
        let events: Vec<TxEvent> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &(t_us, payload))| TxEvent {
                arrival: SimTime::from_micros(t_us),
                frame: Frame::new(MessageId(i as u32), payload)
                    .with_priority(i as u32)
                    .with_class(class_of(i)),
            })
            .collect();
        let done = simulate(&mut port, events);
        for tx in &done {
            // Start and end must fall inside a window of the frame's class.
            let cycle = gcl.cycle();
            let off_start = tx.start % cycle;
            let window = gcl
                .windows()
                .iter()
                .find(|w| w.class == tx.frame.class && w.offset <= off_start
                    && off_start < w.offset + w.length)
                .expect("transmission starts inside a window of its class");
            let end_off = off_start + (tx.end.saturating_since(tx.start));
            prop_assert!(
                end_off <= window.offset + window.length,
                "guard band violated: ends at {end_off} past window end"
            );
        }
        // Nothing overlaps.
        let mut sorted = done.clone();
        sorted.sort_by_key(|t| t.start);
        for pair in sorted.windows(2) {
            prop_assert!(pair[1].start >= pair[0].end);
        }
    }

    // ----------------------------------------------------------- FlexRay --

    #[test]
    fn flexray_static_frames_stay_in_their_slots(
        payloads in prop::collection::vec(1usize..32, 1..10),
        arrival_us in prop::collection::vec(0u64..20_000, 1..10),
    ) {
        let config = FlexRayConfig::typical_10mbit();
        let mut assignment = SlotAssignment::new();
        let n = payloads.len().min(arrival_us.len());
        for i in 0..n {
            assignment.assign(MessageId(i as u32), i as u16).expect("distinct slots");
        }
        let mut bus = FlexRayBus::new(config.clone(), assignment);
        let events: Vec<TxEvent> = (0..n)
            .map(|i| TxEvent {
                arrival: SimTime::from_micros(arrival_us[i]),
                frame: Frame::new(MessageId(i as u32), payloads[i]),
            })
            .collect();
        let done = simulate(&mut bus, events);
        prop_assert_eq!(done.len(), n);
        for tx in &done {
            let slot = tx.frame.id.raw() as u64;
            let off = tx.start % config.cycle();
            let slot_start = config.static_slot_len * slot;
            prop_assert_eq!(off, slot_start, "static frame must start exactly at its slot");
            prop_assert!(tx.start >= tx.arrival);
        }
    }

    // ------------------------------------------------- Ethernet analysis --

    #[test]
    fn ethernet_simulation_never_beats_the_analysis(
        specs in prop::collection::vec((64usize..1500, 2u64..10), 2..5),
    ) {
        let flows: Vec<EthFlowSpec> = specs
            .iter()
            .enumerate()
            .map(|(i, &(payload, period_ms))| {
                EthFlowSpec::new(
                    MessageId(i as u32),
                    payload,
                    i as u32,
                    SimDuration::from_millis(period_ms),
                )
            })
            .collect();
        let analysis = EthernetAnalysis::new(MBIT100, flows.clone());
        prop_assume!(analysis.is_schedulable());
        let bounds = analysis.response_times();
        let mut port = StrictPriorityPort::new(MBIT100);
        let mut events = Vec::new();
        for f in &flows {
            let mut t = SimTime::ZERO;
            while t < SimTime::from_millis(40) {
                events.push(TxEvent {
                    arrival: t,
                    frame: Frame::new(f.id, f.payload).with_priority(f.priority),
                });
                t += f.period;
            }
        }
        for tx in simulate(&mut port, events) {
            let bound = bounds
                .iter()
                .find(|b| b.id == tx.frame.id)
                .and_then(|b| b.wcrt)
                .expect("schedulable");
            prop_assert!(tx.latency() <= bound);
        }
    }

    // ------------------------------------------------------- state sync --

    #[test]
    fn replica_sync_converges_under_random_operations(
        ops in prop::collection::vec((0u8..3, 0u8..8, any::<u8>()), 1..60),
        sync_every in 1usize..10,
    ) {
        let mut primary = ReplicaState::new();
        let mut standby = ReplicaState::new();
        let mut last_sync = 0u64;
        for (i, &(op, key, byte)) in ops.iter().enumerate() {
            let key = format!("k{key}");
            match op {
                0 | 1 => primary.set(key, vec![byte]),
                _ => {
                    primary.remove(&key);
                }
            }
            if i % sync_every == 0 {
                let delta = primary.delta_since(last_sync);
                standby.apply_delta(&delta).expect("contiguous deltas apply");
                last_sync = standby.version();
                prop_assert_eq!(standby.digest(), primary.digest());
            }
        }
        // Final catch-up always converges.
        let delta = primary.delta_since(last_sync);
        standby.apply_delta(&delta).expect("applies");
        prop_assert_eq!(standby.digest(), primary.digest());
        prop_assert_eq!(standby.version(), primary.version());
    }

    // --------------------------------------------------------- campaign --

    #[test]
    fn campaign_accounting_is_conserved(
        fleet_size in 1usize..120,
        failure_pct in 0u32..50,
        bad_fraction in 0u32..50,
        seed in any::<u64>(),
    ) {
        let fleet: Vec<VehicleConfig> = (0..fleet_size)
            .map(|i| {
                let mut v = VehicleConfig::new(VehicleId(i as u32), 4096, 0.5);
                if (i as u32) % 100 >= 100 - bad_fraction {
                    v // not installed -> rejected
                } else {
                    v.installed.insert(AppId(1), Version::new(1, 0, 0));
                    v
                }
            })
            .collect();
        let req = UpdateRequirements {
            app: AppId(1),
            version: Version::new(2, 0, 0),
            staged_memory_kib: 512,
            utilization: 0.1,
            depends_on: BTreeMap::new(),
        };
        let campaign = UpdateCampaign::new(req)
            .with_field_failures(f64::from(failure_pct) / 100.0, seed)
            .with_policy(CampaignPolicy {
                waves: vec![0.1, 0.5, 1.0],
                max_wave_failure_rate: 0.25,
            });
        let report = campaign.run(&fleet);
        // Conservation: every vehicle has exactly one outcome.
        prop_assert_eq!(report.outcomes.len(), fleet_size);
        let attempted: usize = report.waves.iter().map(|w| w.attempted).sum();
        let untouched = report
            .outcomes
            .values()
            .filter(|o| **o == VehicleOutcome::NotAttempted)
            .count();
        prop_assert_eq!(attempted + untouched, fleet_size);
        prop_assert_eq!(
            report.updated() + report.failed() + report.rejected(),
            attempted
        );
        // A halted campaign never attempts later waves.
        if report.halted {
            prop_assert!(report.waves.len() < 3 || untouched == 0);
        } else {
            prop_assert_eq!(untouched, 0);
        }
    }

    // --------------------------------------------------------- endpoint --

    #[test]
    fn endpoint_roundtrips_random_record_payloads(
        fields in prop::collection::vec(("[a-z]{1,5}", any::<u32>()), 1..6),
    ) {
        let req_ty = DataType::Record(
            fields.iter().map(|(n, _)| (n.clone(), DataType::U32)).collect(),
        );
        let args = Value::Record(
            fields.iter().map(|(n, v)| (n.clone(), Value::U32(*v))).collect(),
        );
        let resp_ty = DataType::U64;
        let mut skel = ServiceSkeleton::new(ServiceInstance::new(ServiceId(9), 0), 1)
            .method(MethodId(1), req_ty.clone(), resp_ty.clone(), |v| {
                let sum: u64 = match v {
                    Value::Record(fs) => fs
                        .iter()
                        .filter_map(|(_, v)| v.as_f64())
                        .map(|f| f as u64)
                        .sum(),
                    _ => 0,
                };
                Value::U64(sum)
            });
        let mut matrix = AccessControlMatrix::new();
        matrix.grant(AppId(1), ServiceId(9), Permission::Call(MethodId(1)));
        let mut proxy = ClientProxy::new(AppId(1), 1);
        let request = proxy.request(ServiceId(9), MethodId(1), &req_ty, &args).expect("conforms");
        let response = skel.handle(AppId(1), &request, &matrix).expect("handled");
        let value = proxy.parse_response(&response, &resp_ty).expect("ok");
        let expected: u64 = fields.iter().map(|(_, v)| u64::from(*v)).sum();
        prop_assert_eq!(value, Value::U64(expected));
    }

    // ------------------------------------------------------ update path --

    #[test]
    fn update_path_is_a_valid_topological_order(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..12),
    ) {
        let apps: Vec<AppId> = (0..n).map(|i| AppId(i as u32)).collect();
        // Forward edges only (consumer -> provider with lower index): acyclic.
        let deps: Vec<(AppId, AppId)> = edges
            .iter()
            .filter_map(|&(a, b)| {
                let (a, b) = (a % n, b % n);
                if a > b {
                    Some((AppId(a as u32), AppId(b as u32)))
                } else {
                    None
                }
            })
            .collect();
        let order = update_path(&apps, &deps, |_, _, _| true).expect("acyclic plans");
        prop_assert_eq!(order.len(), n);
        for &(consumer, provider) in &deps {
            let pi = order.iter().position(|&a| a == provider).expect("present");
            let ci = order.iter().position(|&a| a == consumer).expect("present");
            prop_assert!(pi < ci, "provider {provider} must update before {consumer}");
        }
    }

    // ------------------------------------------------------------- misc --

    #[test]
    fn event_group_ids_survive_endpoint_notifications(
        group in any::<u16>(),
        speed in any::<i32>(),
    ) {
        let ty = DataType::record([("v", DataType::F64)]);
        let skel = ServiceSkeleton::new(ServiceInstance::new(ServiceId(1), 0), 1)
            .event(EventGroupId(group), ty.clone());
        let payload = Value::record([("v", Value::F64(f64::from(speed)))]);
        let datagram = skel.notify(EventGroupId(group), &payload).expect("conforms");
        let (g, v) = ClientProxy::parse_notification(&datagram, &ty).expect("decodes");
        prop_assert_eq!(g, EventGroupId(group));
        prop_assert_eq!(v, payload);
    }
}
