//! Property-based tests, part 2: TSN/FlexRay media invariants, Ethernet
//! analysis soundness, replica state synchronization, update campaigns,
//! typed endpoints and update paths.
//!
//! Implemented as seeded-random loop tests on `dynplat::common::rng` (no
//! external property-testing dependency).

use dynplat::comm::endpoint::{ClientProxy, ServiceSkeleton};
use dynplat::common::ids::ServiceInstance;
use dynplat::common::rng::{seeded_rng, split_seed, Rng, SplitMix64};
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::value::{DataType, Value};
use dynplat::common::{AppId, EventGroupId, MessageId, MethodId, ServiceId, VehicleId};
use dynplat::core::campaign::{
    CampaignPolicy, UpdateCampaign, UpdateRequirements, VehicleConfig, VehicleOutcome,
};
use dynplat::core::sync::ReplicaState;
use dynplat::core::update::update_path;
use dynplat::net::analysis::{EthFlowSpec, EthernetAnalysis};
use dynplat::net::ethernet::StrictPriorityPort;
use dynplat::net::flexray::{FlexRayBus, FlexRayConfig, SlotAssignment};
use dynplat::net::tsn::{GateControlList, GateWindow, TsnGatedPort};
use dynplat::net::{simulate, Frame, TrafficClass, TxEvent};
use dynplat::security::authz::{AccessControlMatrix, Permission};
use dynplat::security::package::Version;
use std::collections::BTreeMap;

const MBIT100: u64 = 100_000_000;
const SUITE_SEED: u64 = 0x5EED_0002;
const CASES: u64 = 64;

/// One deterministic RNG per (test, case) pair.
fn case_rng(test: u64, case: u64) -> SplitMix64 {
    seeded_rng(split_seed(split_seed(SUITE_SEED, test), case))
}

fn arb_gcl(rng: &mut SplitMix64) -> GateControlList {
    // Cycle 1 ms, three non-overlapping windows with random split points.
    let a = rng.gen_range(50u64..400);
    let b = rng.gen_range(450u64..700);
    GateControlList::new(
        SimDuration::from_millis(1),
        vec![
            GateWindow::new(
                TrafficClass::Critical,
                SimDuration::ZERO,
                SimDuration::from_micros(a),
            ),
            GateWindow::new(
                TrafficClass::Stream,
                SimDuration::from_micros(a),
                SimDuration::from_micros(b - a),
            ),
            GateWindow::new(
                TrafficClass::BestEffort,
                SimDuration::from_micros(b),
                SimDuration::from_micros(1000 - b),
            ),
        ],
    )
    .expect("constructed windows are valid")
}

fn class_of(i: usize) -> TrafficClass {
    match i % 3 {
        0 => TrafficClass::Critical,
        1 => TrafficClass::Stream,
        _ => TrafficClass::BestEffort,
    }
}

// ------------------------------------------------------------------- TSN --

#[test]
fn tsn_transmissions_always_respect_their_class_windows() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let gcl = arb_gcl(&mut rng);
        let n = rng.gen_range(1usize..40);
        let mut port = TsnGatedPort::new(MBIT100, gcl.clone());
        let events: Vec<TxEvent> = (0..n)
            .map(|i| TxEvent {
                arrival: SimTime::from_micros(rng.gen_range(0u64..5_000)),
                frame: Frame::new(MessageId(i as u32), rng.gen_range(1usize..1200))
                    .with_priority(i as u32)
                    .with_class(class_of(i)),
            })
            .collect();
        let done = simulate(&mut port, events);
        for tx in &done {
            // Start and end must fall inside a window of the frame's class.
            let cycle = gcl.cycle();
            let off_start = tx.start % cycle;
            let window = gcl
                .windows()
                .iter()
                .find(|w| {
                    w.class == tx.frame.class
                        && w.offset <= off_start
                        && off_start < w.offset + w.length
                })
                .expect("transmission starts inside a window of its class");
            let end_off = off_start + (tx.end.saturating_since(tx.start));
            assert!(
                end_off <= window.offset + window.length,
                "case {case}: guard band violated: ends at {end_off} past window end"
            );
        }
        // Nothing overlaps.
        let mut sorted = done.clone();
        sorted.sort_by_key(|t| t.start);
        for pair in sorted.windows(2) {
            assert!(pair[1].start >= pair[0].end, "case {case}");
        }
    }
}

// --------------------------------------------------------------- FlexRay --

#[test]
fn flexray_static_frames_stay_in_their_slots() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let n = rng.gen_range(1usize..10);
        let config = FlexRayConfig::typical_10mbit();
        let mut assignment = SlotAssignment::new();
        for i in 0..n {
            assignment
                .assign(MessageId(i as u32), i as u16)
                .expect("distinct slots");
        }
        let mut bus = FlexRayBus::new(config.clone(), assignment);
        let events: Vec<TxEvent> = (0..n)
            .map(|i| TxEvent {
                arrival: SimTime::from_micros(rng.gen_range(0u64..20_000)),
                frame: Frame::new(MessageId(i as u32), rng.gen_range(1usize..32)),
            })
            .collect();
        let done = simulate(&mut bus, events);
        assert_eq!(done.len(), n, "case {case}");
        for tx in &done {
            let slot = tx.frame.id.raw() as u64;
            let off = tx.start % config.cycle();
            let slot_start = config.static_slot_len * slot;
            assert_eq!(
                off, slot_start,
                "case {case}: static frame must start at its slot"
            );
            assert!(tx.start >= tx.arrival, "case {case}");
        }
    }
}

// ----------------------------------------------------- Ethernet analysis --

#[test]
fn ethernet_simulation_never_beats_the_analysis() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let n = rng.gen_range(2usize..5);
        let flows: Vec<EthFlowSpec> = (0..n)
            .map(|i| {
                EthFlowSpec::new(
                    MessageId(i as u32),
                    rng.gen_range(64usize..1500),
                    i as u32,
                    SimDuration::from_millis(rng.gen_range(2u64..10)),
                )
            })
            .collect();
        let analysis = EthernetAnalysis::new(MBIT100, flows.clone());
        if !analysis.is_schedulable() {
            continue;
        }
        let bounds = analysis.response_times();
        let mut port = StrictPriorityPort::new(MBIT100);
        let mut events = Vec::new();
        for f in &flows {
            let mut t = SimTime::ZERO;
            while t < SimTime::from_millis(40) {
                events.push(TxEvent {
                    arrival: t,
                    frame: Frame::new(f.id, f.payload).with_priority(f.priority),
                });
                t += f.period;
            }
        }
        for tx in simulate(&mut port, events) {
            let bound = bounds
                .iter()
                .find(|b| b.id == tx.frame.id)
                .and_then(|b| b.wcrt)
                .expect("schedulable");
            assert!(tx.latency() <= bound, "case {case}");
        }
    }
}

// ------------------------------------------------------------ state sync --

#[test]
fn replica_sync_converges_under_random_operations() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n_ops = rng.gen_range(1usize..60);
        let sync_every = rng.gen_range(1usize..10);
        let mut primary = ReplicaState::new();
        let mut standby = ReplicaState::new();
        let mut last_sync = 0u64;
        for i in 0..n_ops {
            let op = rng.gen_range(0u8..3);
            let key = format!("k{}", rng.gen_range(0u8..8));
            let byte: u8 = rng.gen();
            match op {
                0 | 1 => primary.set(key, vec![byte]),
                _ => {
                    primary.remove(&key);
                }
            }
            if i % sync_every == 0 {
                let delta = primary.delta_since(last_sync);
                standby
                    .apply_delta(&delta)
                    .expect("contiguous deltas apply");
                last_sync = standby.version();
                assert_eq!(standby.digest(), primary.digest(), "case {case}");
            }
        }
        // Final catch-up always converges.
        let delta = primary.delta_since(last_sync);
        standby.apply_delta(&delta).expect("applies");
        assert_eq!(standby.digest(), primary.digest(), "case {case}");
        assert_eq!(standby.version(), primary.version(), "case {case}");
    }
}

// -------------------------------------------------------------- campaign --

#[test]
fn campaign_accounting_is_conserved() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let fleet_size = rng.gen_range(1usize..120);
        let failure_pct = rng.gen_range(0u32..50);
        let bad_fraction = rng.gen_range(0u32..50);
        let seed: u64 = rng.gen();
        let fleet: Vec<VehicleConfig> = (0..fleet_size)
            .map(|i| {
                let mut v = VehicleConfig::new(VehicleId(i as u32), 4096, 0.5);
                if (i as u32) % 100 >= 100 - bad_fraction {
                    v // not installed -> rejected
                } else {
                    v.installed.insert(AppId(1), Version::new(1, 0, 0));
                    v
                }
            })
            .collect();
        let req = UpdateRequirements {
            app: AppId(1),
            version: Version::new(2, 0, 0),
            staged_memory_kib: 512,
            utilization: 0.1,
            depends_on: BTreeMap::new(),
        };
        let campaign = UpdateCampaign::new(req)
            .with_field_failures(f64::from(failure_pct) / 100.0, seed)
            .with_policy(CampaignPolicy {
                waves: vec![0.1, 0.5, 1.0],
                max_wave_failure_rate: 0.25,
            });
        let report = campaign.run(&fleet);
        // Conservation: every vehicle has exactly one outcome.
        assert_eq!(report.outcomes.len(), fleet_size, "case {case}");
        let attempted: usize = report.waves.iter().map(|w| w.attempted).sum();
        let untouched = report
            .outcomes
            .values()
            .filter(|o| **o == VehicleOutcome::NotAttempted)
            .count();
        assert_eq!(attempted + untouched, fleet_size, "case {case}");
        assert_eq!(
            report.updated() + report.failed() + report.rejected(),
            attempted,
            "case {case}"
        );
        // A halted campaign never attempts later waves.
        if report.halted {
            assert!(report.waves.len() < 3 || untouched == 0, "case {case}");
        } else {
            assert_eq!(untouched, 0, "case {case}");
        }
    }
}

// -------------------------------------------------------------- endpoint --

#[test]
fn endpoint_roundtrips_random_record_payloads() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let n = rng.gen_range(1usize..6);
        let fields: Vec<(String, u32)> = (0..n)
            .map(|i| {
                let len = rng.gen_range(1usize..5);
                let mut name: String = (0..len)
                    .map(|_| rng.gen_range(b'a'..=b'z') as char)
                    .collect();
                name.push_str(&i.to_string());
                (name, rng.gen::<u32>())
            })
            .collect();
        let req_ty = DataType::Record(
            fields
                .iter()
                .map(|(n, _)| (n.clone(), DataType::U32))
                .collect(),
        );
        let args = Value::Record(
            fields
                .iter()
                .map(|(n, v)| (n.clone(), Value::U32(*v)))
                .collect(),
        );
        let resp_ty = DataType::U64;
        let mut skel = ServiceSkeleton::new(ServiceInstance::new(ServiceId(9), 0), 1).method(
            MethodId(1),
            req_ty.clone(),
            resp_ty.clone(),
            |v| {
                let sum: u64 = match v {
                    Value::Record(fs) => fs
                        .iter()
                        .filter_map(|(_, v)| v.as_f64())
                        .map(|f| f as u64)
                        .sum(),
                    _ => 0,
                };
                Value::U64(sum)
            },
        );
        let mut matrix = AccessControlMatrix::new();
        matrix.grant(AppId(1), ServiceId(9), Permission::Call(MethodId(1)));
        let mut proxy = ClientProxy::new(AppId(1), 1);
        let request = proxy
            .request(ServiceId(9), MethodId(1), &req_ty, &args)
            .expect("conforms");
        let response = skel.handle(AppId(1), &request, &matrix).expect("handled");
        let value = proxy.parse_response(&response, &resp_ty).expect("ok");
        let expected: u64 = fields.iter().map(|(_, v)| u64::from(*v)).sum();
        assert_eq!(value, Value::U64(expected), "case {case}");
    }
}

// ----------------------------------------------------------- update path --

#[test]
fn update_path_is_a_valid_topological_order() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let n = rng.gen_range(2usize..8);
        let n_edges = rng.gen_range(0usize..12);
        let apps: Vec<AppId> = (0..n).map(|i| AppId(i as u32)).collect();
        // Forward edges only (consumer -> provider with lower index): acyclic.
        let deps: Vec<(AppId, AppId)> = (0..n_edges)
            .filter_map(|_| {
                let a = rng.gen_range(0usize..8) % n;
                let b = rng.gen_range(0usize..8) % n;
                if a > b {
                    Some((AppId(a as u32), AppId(b as u32)))
                } else {
                    None
                }
            })
            .collect();
        let order = update_path(&apps, &deps, |_, _, _| true).expect("acyclic plans");
        assert_eq!(order.len(), n, "case {case}");
        for &(consumer, provider) in &deps {
            let pi = order.iter().position(|&a| a == provider).expect("present");
            let ci = order.iter().position(|&a| a == consumer).expect("present");
            assert!(
                pi < ci,
                "case {case}: {provider} must update before {consumer}"
            );
        }
    }
}

// ------------------------------------------------------------------ misc --

#[test]
fn event_group_ids_survive_endpoint_notifications() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let group: u16 = rng.gen();
        let speed: i32 = rng.gen::<u32>() as i32;
        let ty = DataType::record([("v", DataType::F64)]);
        let skel = ServiceSkeleton::new(ServiceInstance::new(ServiceId(1), 0), 1)
            .event(EventGroupId(group), ty.clone());
        let payload = Value::record([("v", Value::F64(f64::from(speed)))]);
        let datagram = skel
            .notify(EventGroupId(group), &payload)
            .expect("conforms");
        let (g, v) = ClientProxy::parse_notification(&datagram, &ty).expect("decodes");
        assert_eq!(g, EventGroupId(group), "case {case}");
        assert_eq!(v, payload, "case {case}");
    }
}
