//! End-to-end integration: DSL model → verification → generated artifacts →
//! secured deployment on the dynamic platform → staged update → redundancy
//! → runtime monitoring. Exercises every crate of the workspace together.

use dynplat::common::ids::ServiceInstance;
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{AppId, EcuId, EventGroupId, ServiceId, TaskId};
use dynplat::core::app::AppManifest;
use dynplat::core::redundancy::RedundancyGroup;
use dynplat::core::update::{staged_update, StagedParams};
use dynplat::core::{DynamicPlatform, LifecycleState};
use dynplat::model::dsl::parse_model;
use dynplat::model::generate::{access_matrix, middleware_config, task_sets};
use dynplat::model::ir::SystemModel;
use dynplat::model::verify::verify;
use dynplat::monitor::{FaultKind, TaskObservation};
use dynplat::security::authz::Permission;
use dynplat::security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat::security::sign::KeyPair;
use std::collections::BTreeMap;

const VEHICLE: &str = r#"
system {
  hardware {
    ecu "gateway" { id 1 class domain }
    ecu "adas-a"  { id 2 class high }
    ecu "adas-b"  { id 3 class high }
    bus "eth0" { id 0 ethernet 1000000000 attach [1 2 3] }
  }
  interface "vehicle-state" {
    id 10 owner 1 version 1
    event "speed" { id 1 payload {speed_kmh: f64} latency 10ms critical }
  }
  application "state-server" {
    id 1 deterministic asil C provides [10] period 10ms work 2 memory 1024
  }
  application "lane-keep" {
    id 3 deterministic asil C consumes [10 event 1] period 20ms work 40 memory 65536
  }
  deployment {
    app 1 on 1
    app 3 on any [2 3]
  }
}
"#;

fn fixture() -> (SystemModel, BTreeMap<AppId, EcuId>) {
    let model = parse_model(VEHICLE).expect("model parses");
    let assignment: BTreeMap<AppId, EcuId> = [(AppId(1), EcuId(1)), (AppId(3), EcuId(2))]
        .into_iter()
        .collect();
    assert!(
        verify(&model, &assignment).is_empty(),
        "fixture model must verify"
    );
    (model, assignment)
}

fn build_platform(model: &SystemModel, authority: &KeyPair) -> DynamicPlatform {
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());
    let mut platform = DynamicPlatform::new(registry);
    for ecu in model.hardware.ecus() {
        platform.add_node(ecu.clone());
    }
    platform.set_access_matrix(access_matrix(model));
    platform
}

fn deploy_all(
    platform: &mut DynamicPlatform,
    model: &SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
    authority: &KeyPair,
) {
    for (k, app) in model.applications.iter().enumerate() {
        let package =
            UpdatePackage::new(app.id, Version::new(1, 0, 0), k as u64 + 1, vec![0xAA; 128]);
        let signed = SignedPackage::create(&package, authority);
        platform
            .deploy(SimTime::ZERO, assignment[&app.id], app.clone(), &signed)
            .unwrap_or_else(|e| panic!("deploy {} failed: {e}", app.name));
    }
}

#[test]
fn model_to_running_platform() {
    let (model, assignment) = fixture();
    let authority = KeyPair::from_seed(b"integration authority");
    let mut platform = build_platform(&model, &authority);
    deploy_all(&mut platform, &model, &assignment, &authority);

    // Offers and subscriptions materialized from the manifests.
    let now = SimTime::ZERO;
    assert_eq!(platform.directory().find(now, ServiceId(10)).len(), 1);
    let subs = platform.directory().subscribers(
        now,
        ServiceInstance::new(ServiceId(10), 0),
        EventGroupId(1),
    );
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].subscriber, AppId(3));

    // The model-derived matrix authorizes exactly the declared binding.
    assert!(platform
        .bind(now, AppId(3), ServiceId(10), Permission::Subscribe)
        .is_ok());
    assert!(platform
        .bind(now, AppId(1), ServiceId(10), Permission::Subscribe)
        .is_err());

    // Generated task sets are schedulable and synthesizable per ECU.
    for (ecu, set) in task_sets(&model, &assignment) {
        let schedule = dynplat::sched::tt::synthesize(&set)
            .unwrap_or_else(|e| panic!("TT synthesis on {ecu}: {e}"));
        schedule.validate(&set).expect("schedule validates");
    }

    // Middleware config matches what the platform announced.
    let entries = middleware_config(&model, &assignment, SimDuration::from_secs(5));
    assert_eq!(entries.len(), 2, "one offer + one subscription");
}

#[test]
fn staged_update_preserves_service_through_the_whole_procedure() {
    let (model, assignment) = fixture();
    let authority = KeyPair::from_seed(b"integration authority");
    let mut platform = build_platform(&model, &authority);
    deploy_all(&mut platform, &model, &assignment, &authority);

    let provider = model.application(AppId(1)).expect("present").clone();
    let new_manifest = AppManifest::new(provider, Version::new(1, 1, 0), [1; 32]);
    let report = staged_update(
        &mut platform,
        SimTime::from_secs(10),
        EcuId(1),
        new_manifest,
        4096,
        &StagedParams::default(),
    )
    .expect("staged update runs");
    assert_eq!(report.outage, SimDuration::ZERO);

    // The offer survived the update and the new version serves.
    let after = report.completed_at;
    platform.refresh_directory(after);
    assert_eq!(platform.directory().find(after, ServiceId(10)).len(), 1);
    let node = platform.node(EcuId(1)).expect("node");
    let serving = node.serving_instances_of(AppId(1));
    assert_eq!(serving.len(), 1);
    assert_eq!(
        node.instance(serving[0]).expect("inst").manifest.version,
        Version::new(1, 1, 0)
    );
}

#[test]
fn redundancy_group_survives_ecu_loss_with_platform_state_in_sync() {
    let (model, _) = fixture();
    let authority = KeyPair::from_seed(b"integration authority");
    let mut platform = build_platform(&model, &authority);

    // Lane-keep replicated on both ADAS ECUs.
    let app = model.application(AppId(3)).expect("present").clone();
    let manifest = AppManifest::new(app, Version::new(1, 0, 0), [2; 32]);
    let mut group = RedundancyGroup::new(AppId(3), SimDuration::from_millis(20));
    for ecu in [EcuId(2), EcuId(3)] {
        let instance = platform
            .node_mut(ecu)
            .expect("node")
            .launch(manifest.clone())
            .expect("replica deploys");
        group
            .register(SimTime::ZERO, instance, ecu)
            .expect("registers");
    }

    let t = SimTime::from_millis(500);
    let lost = platform.fail_ecu(t, EcuId(2));
    assert!(lost.is_empty(), "app 3 still served by the replica on ecu3");
    let promoted = group.fail_ecu(t, EcuId(2)).expect("failover possible");
    assert!(promoted.is_some());
    assert_eq!(group.healthy(), 1);
    // The promoted replica is the one the platform still serves.
    let still_serving = platform
        .node(EcuId(3))
        .expect("node")
        .serving_instances_of(AppId(3));
    assert_eq!(still_serving.len(), 1);
    assert_eq!(group.master(), Some(still_serving[0]));
}

#[test]
fn monitoring_detects_injected_runtime_faults() {
    let (model, assignment) = fixture();
    let authority = KeyPair::from_seed(b"integration authority");
    let mut platform = build_platform(&model, &authority);
    deploy_all(&mut platform, &model, &assignment, &authority);

    let node = platform.node_mut(EcuId(1)).expect("node");
    let instance = node.serving_instances_of(AppId(1))[0];
    // Healthy activations for a while...
    let mut faults = dynplat::monitor::FaultRecorder::default();
    {
        let monitor = node.monitor_mut(instance).expect("monitored");
        for k in 0..50u64 {
            let t = SimTime::from_millis(k * 10);
            monitor.observe(TaskObservation::Activation(t), &mut faults);
            monitor.observe(
                TaskObservation::Completion {
                    release: t,
                    completion: t + SimDuration::from_millis(2),
                },
                &mut faults,
            );
        }
        assert_eq!(faults.total(), 0);
        // ...then a deadline overrun and a memory spike.
        let t = SimTime::from_millis(500);
        monitor.observe(
            TaskObservation::Completion {
                release: t,
                completion: t + SimDuration::from_millis(15),
            },
            &mut faults,
        );
        monitor.observe(TaskObservation::Memory(t, 10 * 1024 * 1024), &mut faults);
    }
    assert_eq!(faults.count(FaultKind::DeadlineMiss), 1);
    assert_eq!(faults.count(FaultKind::MemoryOverrun), 1);

    // Diagnostics snapshot for the backend.
    let node = platform.node(EcuId(1)).expect("node");
    let monitor = node.monitor(instance).expect("monitored");
    let report = dynplat::monitor::DiagnosticReport::capture(
        dynplat::common::VehicleId(1),
        SimTime::from_secs(1),
        &[monitor],
        faults.drain(),
    );
    assert!(report.has_faults());
    assert_eq!(report.tasks[0].task, TaskId(instance.raw() as u32));
    assert_eq!(report.tasks[0].activations, 50);
    assert_eq!(
        report.tasks[0].completions, 51,
        "50 healthy + 1 late completion"
    );
}

#[test]
fn lifecycle_is_consistent_after_stop_and_redeploy() {
    let (model, assignment) = fixture();
    let authority = KeyPair::from_seed(b"integration authority");
    let mut platform = build_platform(&model, &authority);
    deploy_all(&mut platform, &model, &assignment, &authority);

    let now = SimTime::from_secs(1);
    assert_eq!(platform.stop_app(now, AppId(3)).expect("stops"), 1);
    let node = platform.node(EcuId(2)).expect("node");
    assert!(node.serving_instances_of(AppId(3)).is_empty());
    assert_eq!(node.memory_used_kib(), 0);

    // Redeploy with a fresh (higher-counter) package.
    let app = model.application(AppId(3)).expect("present").clone();
    let package = UpdatePackage::new(AppId(3), Version::new(1, 0, 1), 10, vec![0xBB; 64]);
    let signed = SignedPackage::create(&package, &authority);
    let instance = platform
        .deploy(now, EcuId(3), app, &signed)
        .expect("redeploys");
    assert_eq!(
        platform
            .node(EcuId(3))
            .expect("node")
            .instance(instance)
            .expect("inst")
            .state,
        LifecycleState::Running
    );
}
