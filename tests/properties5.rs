//! Property-based tests, part 5: the lock-free SPSC event ring and the
//! frame-id recycling contract behind the zero-copy fabric fast path.
//!
//! * FIFO order survives arbitrary push/pop interleavings across many
//!   wrap-arounds of a small ring (checked against a model deque);
//! * a full ring rejects cleanly and the fabric's spill protocol (reject
//!   into an ordered overflow heap, merge on drain) loses nothing and
//!   keeps the global `(time, seq)` order;
//! * producer and consumer on *different threads* conserve every entry
//!   and deliver them in push order — the contract `bench --threads N`
//!   relies on;
//! * slab-slot frame ids recycle across hundreds of thousands of
//!   messages without truncation collisions: every batch conserves its
//!   sends exactly and the peak slot count stays bounded by in-flight
//!   messages, not by message count;
//! * the telemetry merge algebra holds: [`Sketch::merge`] and
//!   [`HistogramSnapshot::merge`] conserve count/sum/min/max and are
//!   order-invariant over arbitrary shardings and merge trees — the
//!   property that makes fleet aggregates byte-identical across shard
//!   counts;
//! * histogram snapshots stay self-consistent under concurrent striped
//!   flushes: every mid-flight snapshot's quantiles derive from the same
//!   bucket read as its count (the quantile/snapshot drift regression).
//!
//! Implemented as seeded-random loop tests on `dynplat::common::rng` (no
//! external property-testing dependency).

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use dynplat::comm::fabric::{Fabric, MessageSend};
use dynplat::comm::ring::{RingEntry, SpscRing};
use dynplat::common::rng::{seeded_rng, split_seed, Rng, SplitMix64};
use dynplat::common::time::SimTime;
use dynplat::common::{BusId, EcuId};
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat::net::TrafficClass;
use dynplat::obs::{Histogram, HistogramSnapshot, LocalHistogram, Sketch, TraceCtx};

const SUITE_SEED: u64 = 0x5EED_0005;

/// One deterministic RNG per (test, case) pair.
fn case_rng(test: u64, case: u64) -> SplitMix64 {
    seeded_rng(split_seed(split_seed(SUITE_SEED, test), case))
}

fn entry(n: u64) -> RingEntry {
    RingEntry {
        time: SimTime::from_nanos(n * 3),
        seq: n,
        slot: (n % 1024) as u32,
    }
}

// ------------------------------------------------------------ wraparound --

#[test]
fn fifo_survives_random_interleavings_across_wraparounds() {
    for case in 0..32u64 {
        let mut rng = case_rng(1, case);
        let cap = 1usize << rng.gen_range(1..6); // 2..=32 entries
        let ring = SpscRing::new(cap);
        let mut model: VecDeque<RingEntry> = VecDeque::new();
        let mut next = 0u64;
        let mut popped = 0u64;
        for _ in 0..5_000 {
            if rng.gen_bool(0.55) {
                let e = entry(next);
                let accepted = ring.try_push(e);
                assert_eq!(
                    accepted,
                    model.len() < cap,
                    "push must succeed exactly when the model has room"
                );
                if accepted {
                    model.push_back(e);
                    next += 1;
                }
            } else {
                assert_eq!(ring.peek(), model.front().copied());
                assert_eq!(ring.pop(), model.pop_front());
                popped += 1;
            }
            assert_eq!(ring.len(), model.len());
            assert_eq!(ring.is_empty(), model.is_empty());
        }
        assert!(next > 2 * cap as u64, "must wrap the ring several times");
        assert!(popped > 0);
        while let Some(e) = ring.pop() {
            assert_eq!(Some(e), model.pop_front());
        }
        assert!(model.is_empty(), "ring and model must drain together");
    }
}

// --------------------------------------------------------- overflow spill --

/// Min-heap key mirroring `PendingQueue` order: earliest `(time, seq)`.
#[derive(PartialEq, Eq)]
struct Spilled(RingEntry);

impl Ord for Spilled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

impl PartialOrd for Spilled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[test]
fn overflow_spill_protocol_conserves_and_merges_in_order() {
    // Mirrors the fabric's spill path: `try_push` rejections go to an
    // ordered overflow heap; the drain always takes the globally earliest
    // `(time, seq)` of {ring front, heap front}. Random burst sizes force
    // both regular operation and overflow.
    for case in 0..32u64 {
        let mut rng = case_rng(2, case);
        let ring = SpscRing::new(4);
        let mut spill: BinaryHeap<Spilled> = BinaryHeap::new();
        let mut next = 0u64;
        let mut drained: Vec<u64> = Vec::new();
        let mut spills = 0u64;
        for _round in 0..200 {
            for _ in 0..rng.gen_range(0..12) {
                let e = entry(next);
                next += 1;
                if !ring.try_push(e) {
                    spills += 1;
                    spill.push(Spilled(e));
                }
            }
            for _ in 0..rng.gen_range(0..10) {
                let take_ring = match (ring.peek(), spill.peek()) {
                    (Some(r), Some(s)) => (r.time, r.seq) < (s.0.time, s.0.seq),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let e = if take_ring {
                    ring.pop().expect("peeked entry must pop")
                } else {
                    spill.pop().expect("peeked entry must pop").0
                };
                drained.push(e.seq);
            }
        }
        while let Some(e) = ring.pop() {
            drained.push(e.seq);
        }
        // Ring entries always precede spilled ones pushed later at equal
        // progress, so the final heap drain is the ordered tail.
        while let Some(Spilled(e)) = spill.pop() {
            drained.push(e.seq);
        }
        assert!(spills > 0, "case must exercise the overflow path");
        assert_eq!(drained.len() as u64, next, "no entry may be lost");
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..next).collect::<Vec<_>>(),
            "each entry drains exactly once"
        );
    }
}

// ------------------------------------------------------------ cross-thread --

#[test]
fn cross_thread_push_pop_conserves_order_and_content() {
    const N: u64 = 20_000;
    for case in 0..4u64 {
        let ring = SpscRing::new(8);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let producer = s.spawn(|| {
                let mut rng = case_rng(3, case);
                for n in 0..N {
                    let e = entry(n);
                    while !ring.try_push(e) {
                        // Single-core CI boxes deschedule the consumer for
                        // whole quanta; yielding beats spinning there.
                        std::thread::yield_now();
                    }
                    // Occasionally stall so the consumer sees an empty
                    // ring mid-stream, not just a full one.
                    if rng.gen_bool(0.001) {
                        std::thread::yield_now();
                    }
                }
                done.store(true, Ordering::Release);
            });
            let consumer = s.spawn(|| {
                let mut received = 0u64;
                let mut checksum = 0u64;
                loop {
                    match ring.pop() {
                        Some(e) => {
                            assert_eq!(e, entry(received), "entries arrive in push order");
                            checksum = checksum
                                .wrapping_mul(31)
                                .wrapping_add(e.time.as_nanos() ^ u64::from(e.slot));
                            received += 1;
                        }
                        None => {
                            if done.load(Ordering::Acquire) && ring.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                (received, checksum)
            });
            producer.join().expect("producer thread must not panic");
            let (received, checksum) = consumer.join().expect("consumer thread must not panic");
            assert_eq!(received, N, "every pushed entry must be popped");
            let mut expect = 0u64;
            for n in 0..N {
                let e = entry(n);
                expect = expect
                    .wrapping_mul(31)
                    .wrapping_add(e.time.as_nanos() ^ u64::from(e.slot));
            }
            assert_eq!(checksum, expect, "lane contents must survive the transfer");
        });
    }
}

// ------------------------------------------------------- frame-id recycling --

fn four_ecu_bus() -> HwTopology {
    let mut topo = HwTopology::new();
    for i in 0..4u16 {
        topo.add_ecu(EcuSpec::of_class(
            EcuId(i),
            format!("e{i}"),
            EcuClass::Domain,
        ))
        .expect("fresh ids");
    }
    topo.add_bus(BusSpec::new(
        BusId(0),
        "eth",
        BusKind::ethernet_100m(),
        [EcuId(0), EcuId(1), EcuId(2), EcuId(3)],
    ))
    .expect("fresh bus");
    topo
}

#[test]
fn frame_ids_recycle_without_truncation_over_many_batches() {
    // The regression this guards: frame ids derived from a monotone
    // counter truncated `as u32` collide after enough messages and make a
    // `TxDone` decrement a *different* message's segment count. Slab-slot
    // ids must instead stay bounded by peak in-flight messages while every
    // batch keeps conserving its sends exactly.
    let mut rng = case_rng(4, 0);
    let topo = four_ecu_bus();
    let mut fabric = Fabric::new(topo);
    let mut deliveries = Vec::new();
    let mut total = 0u64;
    for _batch in 0..300 {
        let n = rng.gen_range(50..150);
        let sends: Vec<MessageSend> = (0..n)
            .map(|k| MessageSend {
                id: k,
                time: SimTime::from_micros(k * rng.gen_range(1u64..40)),
                src: EcuId(rng.gen_range(0u64..4) as u16),
                dst: EcuId(rng.gen_range(0u64..4) as u16),
                // Sometimes multi-segment, to exercise per-segment TxDones
                // against the same recycled id space.
                payload: if rng.gen_bool(0.2) { 4000 } else { 200 },
                class: TrafficClass::Critical,
                priority: 1,
                trace: TraceCtx::NONE,
            })
            .collect();
        deliveries.clear();
        fabric.run_batch(&sends, &mut deliveries, |_, _| {});
        total += n;
        let mut ids: Vec<u64> = deliveries.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "every send must be delivered exactly once per batch"
        );
        for d in &deliveries {
            assert!(d.delivered >= d.sent, "causality per delivery");
        }
    }
    assert!(
        total > 25_000,
        "the id space must be reused many times over"
    );
    assert!(
        fabric.peak_slab_capacity() < 256,
        "slot ids must be bounded by peak in-flight, got {}",
        fabric.peak_slab_capacity()
    );
}

// ----------------------------------------------------- telemetry merge algebra --

/// A random value with a heavy tail, so sketches and histograms populate
/// buckets across many exponent ranges.
fn tailed_value(rng: &mut SplitMix64) -> u64 {
    let shift: u64 = rng.gen_range(0..40);
    rng.gen_range(0..1u64 << shift.max(1))
}

#[test]
fn sketch_merge_conserves_and_is_order_invariant() {
    for case in 0..24u64 {
        let mut rng = case_rng(5, case);
        let n = rng.gen_range(1..2_000) as usize;
        let values: Vec<u64> = (0..n).map(|_| tailed_value(&mut rng)).collect();

        // Direct fold: one sketch over all values.
        let mut direct = Sketch::new();
        for &v in &values {
            direct.record(v);
        }

        // Random sharding of the same values.
        let shards_n = rng.gen_range(1..9) as usize;
        let mut shards = vec![Sketch::new(); shards_n];
        for &v in &values {
            shards[rng.gen_range(0..shards_n as u64) as usize].record(v);
        }

        // Merge forward, merge reversed, and merge as a pairwise tree:
        // all three must equal the direct fold exactly.
        let fold = |order: &[&Sketch]| {
            let mut acc = Sketch::new();
            for s in order {
                acc.merge(s);
            }
            acc
        };
        let fwd: Vec<&Sketch> = shards.iter().collect();
        let rev: Vec<&Sketch> = shards.iter().rev().collect();
        let mut tree: Vec<Sketch> = shards.clone();
        while tree.len() > 1 {
            let b = tree.pop().expect("len > 1");
            let idx = rng.gen_range(0..tree.len() as u64) as usize;
            tree[idx].merge(&b);
        }
        for merged in [fold(&fwd), fold(&rev), tree.pop().expect("one left")] {
            assert_eq!(merged, direct, "case {case}: merge must equal direct fold");
            assert_eq!(merged.count(), n as u64);
            assert_eq!(merged.sum(), values.iter().copied().sum::<u64>());
            assert_eq!(merged.min(), values.iter().copied().min().unwrap_or(0));
            assert_eq!(merged.max(), values.iter().copied().max().unwrap_or(0));
        }

        // Snapshot merge commutes with sketch merge.
        let mut snap = shards[0].to_snapshot();
        for s in &shards[1..] {
            snap.merge(&s.to_snapshot());
        }
        assert_eq!(snap, direct.to_snapshot());
    }
}

#[test]
fn histogram_snapshot_merge_conserves_and_is_order_invariant() {
    for case in 0..24u64 {
        let mut rng = case_rng(6, case);
        let n = rng.gen_range(1..1_500) as usize;
        let values: Vec<u64> = (0..n).map(|_| tailed_value(&mut rng)).collect();

        let direct = Histogram::default();
        let shards_n = rng.gen_range(1..7) as usize;
        let shards: Vec<Histogram> = (0..shards_n).map(|_| Histogram::default()).collect();
        for &v in &values {
            direct.record(v);
            shards[rng.gen_range(0..shards_n as u64) as usize].record(v);
        }

        let fold = |order: Vec<&Histogram>| {
            let mut acc = HistogramSnapshot::default();
            for h in order {
                acc.merge(&h.snapshot());
            }
            acc
        };
        let fwd = fold(shards.iter().collect());
        let rev = fold(shards.iter().rev().collect());
        assert_eq!(fwd, rev, "case {case}: merge order must be invisible");
        assert_eq!(
            fwd,
            direct.snapshot(),
            "case {case}: merge equals direct fold"
        );
        assert_eq!(fwd.count, n as u64);
        assert_eq!(fwd.sum, values.iter().copied().sum::<u64>());
        // Merged quantiles rederive from merged buckets, exactly like a
        // direct snapshot's do.
        assert_eq!(fwd.p50, fwd.quantile(0.50));
        assert_eq!(fwd.p95, fwd.quantile(0.95));
        assert_eq!(fwd.p99, fwd.quantile(0.99));
    }
}

#[test]
fn snapshots_stay_self_consistent_under_concurrent_striped_flushes() {
    // The drift regression this guards: a snapshot that reads the bucket
    // array and the quantile summary in two passes can pair a newer count
    // with older buckets while writers flush concurrently. Snapshots must
    // instead derive count and quantiles from one bucket read: at every
    // instant `count == Σ buckets` and the stored p50/p95/p99 equal the
    // quantiles recomputed from the very same buckets.
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 12_000;
    let hist = Histogram::default();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let hist = &hist;
            s.spawn(move || {
                let mut rng = case_rng(7, w);
                let mut local = LocalHistogram::new();
                for i in 0..PER_WRITER {
                    local.record(tailed_value(&mut rng));
                    // Flush in ragged bursts so snapshots race mid-merge.
                    if i % rng.gen_range(3u64..40) == 0 {
                        local.flush_into(hist);
                    }
                }
                local.flush_into(hist);
            });
        }
        let reader = s.spawn(|| {
            let mut observed = 0u64;
            let mut last_count = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = hist.snapshot();
                let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
                assert_eq!(
                    snap.count, bucket_total,
                    "count must equal the bucket sum it was read with"
                );
                assert_eq!(snap.p50, snap.quantile(0.50), "p50 drifted from buckets");
                assert_eq!(snap.p95, snap.quantile(0.95), "p95 drifted from buckets");
                assert_eq!(snap.p99, snap.quantile(0.99), "p99 drifted from buckets");
                assert!(snap.count >= last_count, "flushed counts never regress");
                last_count = snap.count;
                observed += 1;
            }
            observed
        });
        // Scope joins the writers; signal the reader afterwards would be
        // too late, so join writers explicitly here.
        while hist.count() < WRITERS * PER_WRITER {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        let observed = reader.join().expect("reader must not panic");
        assert!(observed > 0, "the reader must race at least one snapshot");
    });
    assert_eq!(hist.count(), WRITERS * PER_WRITER);
    let final_snap = hist.snapshot();
    assert_eq!(final_snap.count, WRITERS * PER_WRITER);
    assert_eq!(
        final_snap.sum,
        hist.sum(),
        "quiescent snapshot reads the exact totals"
    );
}
