//! E16 integration: SLO burn-rate gating beats threshold alerting, and
//! the fleet telemetry artifact is shard-invariant.
//!
//! The experiment's acceptance bar: over the three-arm replay the burn
//! gate pages strictly less than the per-batch threshold at an
//! equal-or-better time-to-detect on the broken arm, every SLO trip is
//! paired with a flight dump, and the merged telemetry — stage sketches,
//! counters, time-series ring — is byte-identical across shard counts.

use dynplat::obs::TelemetryRing;
use dynplat_bench::telemetry::{run_telemetry_arms, telemetry_arms_to_json};

const SEED: u64 = 0xE16_5EED;
const VEHICLES: u32 = 4_000;

#[test]
fn e16_json_and_telemetry_are_shard_invariant() {
    let a = run_telemetry_arms(SEED, VEHICLES, 1);
    let b = run_telemetry_arms(SEED, VEHICLES, 4);
    let ja = telemetry_arms_to_json(SEED, VEHICLES, &a);
    let jb = telemetry_arms_to_json(SEED, VEHICLES, &b);
    assert_eq!(ja, jb, "shard count must be invisible in the E16 JSON");
    assert!(ja.starts_with("{\"schema\":\"dynplat.e16.v1\""));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.telemetry, y.telemetry,
            "{}: merged telemetry must be byte-identical across shard counts",
            x.arm
        );
    }
}

#[test]
fn burn_gating_pages_less_and_detects_no_later() {
    let results = run_telemetry_arms(SEED, VEHICLES, 2);
    let thr_false: u64 = results.iter().map(|r| r.threshold_false_alarms).sum();
    let burn_false: u64 = results.iter().map(|r| r.burn_false_alarms).sum();
    assert!(thr_false > 0, "baseline noise must page the threshold");
    assert!(
        burn_false < thr_false,
        "burn gating must cut false pages: {burn_false} vs {thr_false}"
    );

    let broken = results.iter().find(|r| r.arm == "broken").expect("broken");
    let thr_ttd = broken.threshold_ttd_ms.expect("threshold must detect");
    let burn_ttd = broken.burn_ttd_ms.expect("burn gate must detect");
    assert!(
        burn_ttd <= thr_ttd,
        "burn gate must not detect later: {burn_ttd} vs {thr_ttd}"
    );
    for r in &results {
        if r.arm != "broken" {
            assert!(r.threshold_ttd_ms.is_none() && r.burn_ttd_ms.is_none());
        }
    }
}

#[test]
fn every_trip_pairs_with_a_flight_dump() {
    for r in run_telemetry_arms(SEED, VEHICLES, 2) {
        assert_eq!(
            r.trips, r.dumps,
            "{}: every SLO trip must freeze a dynplat.flight.v1 dump",
            r.arm
        );
    }
    let broken = run_telemetry_arms(SEED, VEHICLES, 2)
        .into_iter()
        .find(|r| r.arm == "broken")
        .expect("broken arm");
    assert!(broken.trips >= 1, "the broken arm must trip the gate");
}

#[test]
fn telemetry_artifact_parses_and_prices_the_pipeline() {
    let results = run_telemetry_arms(SEED, VEHICLES, 2);
    for r in &results {
        assert_eq!(r.telemetry_bytes as usize, r.telemetry.len());
        // Sketch buckets and the delta-encoded ring are bounded, so the
        // whole artifact stays a few KiB no matter the fleet size —
        // amortized, a fraction of a byte per monitored vehicle.
        assert!(
            r.telemetry_bytes < 8_192,
            "{}: telemetry artifact must stay bounded, got {} bytes",
            r.arm,
            r.telemetry_bytes
        );
        let series = r
            .telemetry
            .split("\"series\":")
            .nth(1)
            .expect("series section");
        let series = &series[..series.rfind('}').expect("closing brace")];
        let ring = TelemetryRing::from_json(series).expect("ring parses back");
        assert_eq!(ring.len(), 2, "{}: one sample per phase", r.arm);
        assert!(ring.points()[1].t_ns > ring.points()[0].t_ns);
    }
}
