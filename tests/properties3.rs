//! Property-based tests, part 3: fast-path equivalence of the fabric event
//! engine rewrite.
//!
//! * the dense [`RouteCache`] agrees with a fresh `HwTopology::route` BFS
//!   on every pair of every randomized topology, including unreachable
//!   pairs, unknown endpoints, and after `set_port` swaps on the fabric;
//! * the fabric conserves messages under randomized load with callback
//!   injections: every send is either delivered exactly once or was
//!   unreachable at injection, and completion order is monotone in
//!   delivery time.
//!
//! Implemented as seeded-random loop tests on `dynplat::common::rng` (no
//! external property-testing dependency).

use dynplat::comm::fabric::{BusPort, Fabric, MessageSend};
use dynplat::common::rng::{seeded_rng, split_seed, Rng, SplitMix64};
use dynplat::common::time::SimTime;
use dynplat::common::{BusId, EcuId};
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::hw::routes::RouteCache;
use dynplat::hw::topology::{BusKind, BusSpec, HwTopology, TopologyError};
use dynplat::net::TrafficClass;
use dynplat::obs::TraceCtx;

const SUITE_SEED: u64 = 0x5EED_0003;
const CASES: u64 = 48;

/// One deterministic RNG per (test, case) pair.
fn case_rng(test: u64, case: u64) -> SplitMix64 {
    seeded_rng(split_seed(split_seed(SUITE_SEED, test), case))
}

/// A random topology: 2..14 ECUs, 1..6 buses of mixed media, each attaching
/// a random subset of at least two ECUs. Isolated ECUs and disconnected
/// islands arise naturally, so unreachable pairs are covered.
fn arb_topology(rng: &mut SplitMix64) -> HwTopology {
    let n_ecus = rng.gen_range(2u64..15) as u16;
    let mut topo = HwTopology::new();
    for i in 0..n_ecus {
        let class = match i % 3 {
            0 => EcuClass::LowEnd,
            1 => EcuClass::Domain,
            _ => EcuClass::HighPerformance,
        };
        topo.add_ecu(EcuSpec::of_class(EcuId(i), format!("e{i}"), class))
            .expect("fresh ids");
    }
    let n_buses = rng.gen_range(1u64..7) as u16;
    for b in 0..n_buses {
        let kind = match rng.gen_range(0u64..3) {
            0 => BusKind::can_500k(),
            1 => BusKind::ethernet_100m(),
            _ => BusKind::ethernet_1g(),
        };
        let mut attached: Vec<EcuId> = (0..n_ecus)
            .filter(|_| rng.gen_bool(0.4))
            .map(EcuId)
            .collect();
        while attached.len() < 2 {
            attached.push(EcuId(rng.gen_range(0..u64::from(n_ecus)) as u16));
        }
        topo.add_bus(BusSpec::new(BusId(b), format!("b{b}"), kind, attached))
            .expect("fresh bus");
    }
    topo
}

// ----------------------------------------------------------- route cache --

#[test]
fn cached_routes_equal_fresh_bfs_on_random_topologies() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let topo = arb_topology(&mut rng);
        let mut cache = RouteCache::new(&topo);
        let n = topo.ecu_count() as u16;
        // All pairs (including self-pairs), plus unknown endpoints; queried
        // twice so both the BFS fill and the memoized lookup are checked.
        let mut endpoints: Vec<EcuId> = (0..n).map(EcuId).collect();
        endpoints.push(EcuId(n + 7)); // unknown
        for _ in 0..2 {
            for &src in &endpoints {
                for &dst in &endpoints {
                    let fresh = topo.route(src, dst);
                    let cached = cache.route(src, dst);
                    assert_eq!(cached, fresh, "case {case}: pair {src}->{dst}");
                    match cached {
                        Ok(ref r) if src == dst => assert!(r.is_local()),
                        Ok(_) => {}
                        Err(TopologyError::UnknownEcu(e)) => {
                            assert!(e == src || e == dst);
                        }
                        Err(TopologyError::NoRoute(a, b)) => {
                            assert_eq!((a, b), (src, dst));
                        }
                        Err(other) => panic!("unexpected error {other:?}"),
                    }
                }
            }
        }
    }
}

#[test]
fn fabric_routing_matches_bfs_reachability_after_port_swaps() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let topo = arb_topology(&mut rng);
        let n = topo.ecu_count() as u16;
        let mut fabric = Fabric::new(topo.clone());
        for round in 0..2u64 {
            if round == 1 {
                // Swap every Ethernet bus to the FIFO baseline port: the
                // cached routes must keep agreeing with fresh BFS across
                // port reconfiguration.
                for bus in topo.buses() {
                    if matches!(bus.kind, BusKind::Ethernet { .. }) {
                        fabric.set_port(bus.id, BusPort::fifo_for(bus.kind));
                    }
                }
            }
            let sends: Vec<MessageSend> = (0..40u64)
                .map(|i| MessageSend {
                    id: round * 1000 + i,
                    time: SimTime::from_micros(rng.gen_range(0..5000)),
                    src: EcuId(rng.gen_range(0..u64::from(n)) as u16),
                    dst: EcuId(rng.gen_range(0..u64::from(n)) as u16),
                    payload: rng.gen_range(1..257) as usize,
                    class: TrafficClass::BestEffort,
                    priority: rng.gen_range(0..8) as u32,
                    trace: TraceCtx::NONE,
                })
                .collect();
            let endpoints: std::collections::BTreeMap<u64, (EcuId, EcuId)> =
                sends.iter().map(|s| (s.id, (s.src, s.dst))).collect();
            let mut expect_delivered: Vec<u64> = sends
                .iter()
                .filter(|s| topo.route(s.src, s.dst).is_ok())
                .map(|s| s.id)
                .collect();
            let done = fabric.run(sends, |_| vec![]);
            let mut got: Vec<u64> = done.iter().map(|d| d.id).collect();
            expect_delivered.sort_unstable();
            got.sort_unstable();
            assert_eq!(
                got, expect_delivered,
                "case {case} round {round}: delivered set != BFS-reachable set"
            );
            // Hop counts agree with the fresh BFS route as well.
            for d in &done {
                let (src, dst) = endpoints[&d.id];
                let fresh = topo.route(src, dst).expect("delivered => reachable");
                assert_eq!(
                    d.hops,
                    fresh.hops(),
                    "case {case} round {round}: hop count diverges for {src}->{dst}"
                );
            }
        }
    }
}

// ---------------------------------------------------------- conservation --

#[test]
fn fabric_conserves_messages_under_randomized_load() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let topo = arb_topology(&mut rng);
        let n = topo.ecu_count() as u16;
        let mut fabric = Fabric::new(topo.clone());

        let n_sends = rng.gen_range(1u64..200);
        let sends: Vec<MessageSend> = (0..n_sends)
            .map(|i| MessageSend {
                id: i,
                time: SimTime::from_micros(rng.gen_range(0..10_000)),
                src: EcuId(rng.gen_range(0..u64::from(n)) as u16),
                dst: EcuId(rng.gen_range(0..u64::from(n)) as u16),
                payload: rng.gen_range(1..129) as usize,
                class: TrafficClass::BestEffort,
                priority: rng.gen_range(0..8) as u32,
                trace: TraceCtx::NONE,
            })
            .collect();

        // A delivery callback injects one follow-up send for every original
        // message (ids offset by 1_000_000), to a random destination drawn
        // from a dedicated RNG stream so the choice is deterministic.
        let mut cb_rng = case_rng(4, case);
        let mut injected: Vec<MessageSend> = Vec::new();
        let mut unreachable = sends
            .iter()
            .filter(|s| topo.route(s.src, s.dst).is_err())
            .count();
        let total_initial = sends.len();
        let done = fabric.run(sends, |d| {
            if d.id < 1_000_000 {
                let dst = EcuId(cb_rng.gen_range(0..u64::from(n)) as u16);
                let follow = MessageSend {
                    id: 1_000_000 + d.id,
                    time: d.delivered,
                    src: EcuId(cb_rng.gen_range(0..u64::from(n)) as u16),
                    dst,
                    payload: 64,
                    class: TrafficClass::BestEffort,
                    priority: 3,
                    trace: TraceCtx::NONE,
                };
                injected.push(follow.clone());
                vec![follow]
            } else {
                vec![]
            }
        });

        // Conservation: sends == deliveries + dropped_unreachable, counted
        // from the returned data (the global obs counters are shared across
        // parallel tests and cannot be asserted on here).
        unreachable += injected
            .iter()
            .filter(|s| topo.route(s.src, s.dst).is_err())
            .count();
        let total_sends = total_initial + injected.len();
        assert_eq!(
            done.len() + unreachable,
            total_sends,
            "case {case}: {} delivered + {unreachable} unreachable != {total_sends} sent",
            done.len()
        );

        // Each send delivers at most once.
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "case {case}: duplicate delivery");

        // Completion order is monotone in delivery time. Local (0-hop)
        // deliveries are appended at their injection event but stamped
        // `delivered = now + local_delay` (5 µs default), so compare the
        // underlying event times.
        let event_time = |d: &dynplat::comm::fabric::MessageDelivery| {
            if d.hops == 0 {
                d.delivered - dynplat::common::time::SimDuration::from_micros(5)
            } else {
                d.delivered
            }
        };
        for pair in done.windows(2) {
            assert!(
                event_time(&pair[0]) <= event_time(&pair[1]),
                "case {case}: completion order not monotone"
            );
        }
    }
}
