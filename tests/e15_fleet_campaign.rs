//! E15 integration: the sharded fleet campaign is shard-invariant.
//!
//! The experiment's acceptance bar: the merged campaign — outcomes, wave
//! ledger, JSON — is a pure function of the campaign seed. Shard count is
//! an execution detail: one shard or many, the update master must report
//! byte-identical results, and the cross-shard metric merge must conserve
//! every per-vehicle count.

use dynplat::common::time::SimTime;
use dynplat::common::VehicleId;
use dynplat::faults::FaultPlan;
use dynplat::fleet::{
    simulate_vehicle, CampaignSpec, ShardMetrics, ShardPool, UpdateMaster, VehicleVerdict,
};
use dynplat_bench::fleet::{arms_to_json, run_arms};
use std::sync::Arc;

const SEED: u64 = 0xE15_5EED;

#[test]
fn merged_campaign_is_identical_across_shard_counts() {
    let run = |shards: usize| {
        UpdateMaster::new(
            CampaignSpec::standard(SEED, 8_000, FaultPlan::quiet(SEED)),
            shards,
        )
        .run()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(
        one.outcomes, four.outcomes,
        "per-vehicle outcomes must not depend on the shard count"
    );
    assert_eq!(one.waves, four.waves);
    assert_eq!(one.totals, four.totals);
    assert_eq!(one.completed_at, four.completed_at);
}

#[test]
fn e15_json_is_deterministic_across_reruns_and_shard_counts() {
    let a = arms_to_json(SEED, 4_000, &run_arms(SEED, 4_000, 1));
    let b = arms_to_json(SEED, 4_000, &run_arms(SEED, 4_000, 3));
    let c = arms_to_json(SEED, 4_000, &run_arms(SEED, 4_000, 3));
    assert_eq!(a, b, "shard count must be invisible in the E15 JSON");
    assert_eq!(b, c, "two identical runs must agree byte for byte");
    assert!(a.starts_with("{\"schema\":\"dynplat.e15.v1\""));
}

#[test]
fn cross_shard_merge_conserves_per_vehicle_counts() {
    // Property test over seeds: for any campaign wave, the metrics the
    // shard pool merges equal a direct per-vehicle fold, conserve the
    // admission partition, and account for every retry and stall
    // nanosecond.
    for seed in [3u64, 0xABCD, 0xE15_5EED, u64::MAX / 7] {
        let spec = Arc::new(CampaignSpec::standard(
            seed,
            3_000,
            FaultPlan::quiet(seed).with_message_faults(0.1, 0.2, 0.0),
        ));
        let mut pool = ShardPool::spawn(Arc::clone(&spec), 4);
        let (outcomes, merged) = pool.run_wave(0, 0, 3_000, SimTime::ZERO);

        let mut direct = ShardMetrics::default();
        let mut retries = 0u64;
        let mut stall_ns = 0u64;
        for o in &outcomes {
            direct.observe(o);
            retries += u64::from(o.retries);
            stall_ns += o.stall.as_nanos();
            // The shard never assigns the master-only verdict.
            assert_ne!(o.verdict, VehicleVerdict::WaveRolledBack);
            // And every outcome matches an independent re-simulation.
            assert_eq!(*o, simulate_vehicle(&spec, o.vehicle, SimTime::ZERO));
        }
        assert_eq!(merged, direct, "seed {seed:#x}: merge diverged from fold");
        assert!(merged.conserves(), "seed {seed:#x}: counts do not conserve");
        assert_eq!(merged.simulated, 3_000);
        assert_eq!(merged.retries, retries);
        assert_eq!(merged.stall_ns, stall_ns);
        assert_eq!(outcomes.len(), 3_000);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.vehicle, VehicleId(i as u32));
        }
    }
}

#[test]
fn broken_arm_storms_and_halts_while_quiet_promotes() {
    let results = run_arms(SEED, 5_000, 2);
    let quiet = &results[0];
    let broken = &results[2];
    assert_eq!(quiet.arm, "quiet");
    assert_eq!(broken.arm, "broken");
    assert!(!quiet.halted && quiet.storm == 0);
    assert!(broken.halted, "a corrupted image must halt the campaign");
    assert!(broken.storm > 0, "the tripped wave must roll back");
    assert!(
        broken.skipped > 0,
        "waves after the tripped one must never open"
    );
}
