//! ADAS pipeline: the paper's motivating workload. A camera streams frames
//! to a fusion service (Stream paradigm), the fusion app answers planner
//! RPCs (Message paradigm), and the planner publishes brake commands
//! (Event paradigm) — all over one Ethernet backbone shared with bulk
//! infotainment traffic. The run compares plain strict-priority Ethernet
//! against TSN time-aware gates for the critical brake path (§3.1
//! "Hardware Access & Communication", §5.3 TSN).
//!
//! Run with: `cargo run --example adas_pipeline`

use dynplat::comm::fabric::{BusPort, Fabric, MessageSend};
use dynplat::comm::paradigm::{run_rpc, run_stream, RpcCall, StreamSpec};
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{BusId, EcuId};
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat::net::{GateControlList, TrafficClass};
use dynplat::obs::TraceCtx;

fn topology() -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "camera", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "fusion", EcuClass::HighPerformance),
            EcuSpec::of_class(EcuId(2), "planner", EcuClass::HighPerformance),
            EcuSpec::of_class(EcuId(3), "brake", EcuClass::Domain),
            EcuSpec::of_class(EcuId(4), "infotainment", EcuClass::HighPerformance),
        ],
        [BusSpec::new(
            BusId(0),
            "backbone",
            BusKind::ethernet_100m(),
            [EcuId(0), EcuId(1), EcuId(2), EcuId(3), EcuId(4)],
        )],
    )
    .expect("valid topology")
}

/// Saturating infotainment bulk transfer over the same backbone.
fn bulk_traffic(n: u64) -> Vec<MessageSend> {
    (0..n)
        .map(|i| MessageSend {
            id: 50_000 + i,
            time: SimTime::from_micros(i * 110),
            src: EcuId(4),
            dst: EcuId(1),
            payload: 1500,
            class: TrafficClass::BestEffort,
            priority: 6,
            trace: TraceCtx::NONE,
        })
        .collect()
}

fn brake_commands(n: u64) -> Vec<MessageSend> {
    (0..n)
        .map(|k| MessageSend {
            id: 90_000 + k,
            time: SimTime::from_millis(k * 10) + SimDuration::from_micros(137),
            src: EcuId(2),
            dst: EcuId(3),
            payload: 32,
            class: TrafficClass::Critical,
            priority: 0,
            trace: TraceCtx::NONE,
        })
        .collect()
}

fn run_scenario(label: &str, fabric: &mut Fabric) {
    // Camera stream: 30 frames of 60 KiB at 33 ms (≈ 15 Mbit/s).
    let stream = StreamSpec {
        start: SimTime::ZERO,
        frames: 30,
        interval: SimDuration::from_millis(33),
        frame_payload: 60 * 1024,
        src: EcuId(0),
        dst: EcuId(1),
        class: TrafficClass::Stream,
        priority: 3,
        trace: TraceCtx::NONE,
    };
    let stream_stats = run_stream(fabric, &stream);

    // Planner RPCs into the fusion service.
    let calls: Vec<RpcCall> = (0..20)
        .map(|k| RpcCall {
            time: SimTime::from_millis(k * 20),
            client: EcuId(2),
            server: EcuId(1),
            request_payload: 128,
            response_payload: 2048,
            processing: SimDuration::from_micros(400),
            class: TrafficClass::Stream,
            priority: 2,
            trace: TraceCtx::NONE,
        })
        .collect();
    let rpc_stats = run_rpc(fabric, &calls);
    let worst_rtt = rpc_stats.iter().map(|s| s.round_trip).max().unwrap();

    // Brake command events racing the infotainment bulk.
    let mut sends = brake_commands(100);
    sends.extend(bulk_traffic(3_000));
    let deliveries = fabric.run(sends, |_| vec![]);
    let brake_lat: Vec<SimDuration> = deliveries
        .iter()
        .filter(|d| d.id >= 90_000)
        .map(|d| d.latency())
        .collect();
    let worst_brake = brake_lat.iter().copied().max().unwrap();
    let deadline = SimDuration::from_millis(2);
    let misses = brake_lat.iter().filter(|&&l| l > deadline).count();

    println!("--- {label} ---");
    println!(
        "camera stream : {}/{} frames, mean {} / decodable worst {} / jitter {}",
        stream_stats.delivered,
        stream_stats.sent,
        stream_stats.mean_latency,
        stream_stats.max_decodable_latency,
        stream_stats.jitter
    );
    println!(
        "fusion RPC    : {} calls, worst round trip {}",
        rpc_stats.len(),
        worst_rtt
    );
    println!(
        "brake events  : {} sent, worst latency {}, {} misses of the {} deadline",
        brake_lat.len(),
        worst_brake,
        misses,
        deadline
    );
}

fn main() {
    let topo = topology();

    // Baseline: strict-priority Ethernet (the Fabric default).
    let mut plain = Fabric::new(topo.clone());
    run_scenario("802.1p strict priority", &mut plain);

    // TSN: exclusive critical window each millisecond.
    let mut tsn = Fabric::new(topo);
    let gcl = GateControlList::mixed_criticality(SimDuration::from_millis(1), 0.2);
    tsn.set_port(BusId(0), BusPort::tsn_for(BusKind::ethernet_100m(), gcl));
    run_scenario("TSN 802.1Qbv gates", &mut tsn);

    println!(
        "\nBoth isolate the brake path from infotainment bulk; TSN additionally\n\
         bounds it to the gate window, trading best-effort throughput."
    );
}
