//! V2X platoon scenario (§3.5): three vehicles hold a tight CACC gap on
//! leader beacons crossing a lossy shared channel. Mid-run the channel
//! partitions entirely — both followers must fall back to radar-only ACC,
//! and once the channel heals, return to CACC only when the link-quality
//! *belief* has recovered, not on the first good window.
//!
//! The same beacon-loss series drives two switching rules side by side:
//! the classic point threshold, and a `BoundaryEstimator` gated on
//! exceedance confidence. The printout shows the uncertainty story in
//! miniature: identical safety at the outage, fewer spurious mode flips
//! under noise.
//!
//! Run with: `cargo run --example platoon`

use dynplat::obs::FlightRecorder;
use dynplat_bench::platoon::{run_platoon, PlatoonConfig, SwitchStats};
use std::sync::Arc;

fn print_stats(name: &str, s: &SwitchStats) {
    let latency = s
        .fallback_latency
        .map_or_else(|| "-".to_owned(), |d| format!("{d}"));
    println!(
        "  {name:<12} fallbacks {:>2} (spurious {:>2})  latency {latency:>8}  \
         unsafe windows {:>2}  inefficient windows {:>2}",
        s.fallbacks, s.spurious_fallbacks, s.unsafe_windows, s.inefficient_windows
    );
}

fn main() {
    let cfg = PlatoonConfig::new(0xCACC);
    let flight = Arc::new(FlightRecorder::new(512));
    flight.arm();
    let outcome = run_platoon(&cfg, Some(flight.clone()));

    println!(
        "platoon: 1 leader + 2 followers, {} beacons each over {:.1}s, \
         {:.0}% channel noise, V2X outage from 1/3 to 1/2 of the horizon",
        outcome.beacons_per_follower,
        cfg.horizon.as_secs_f64(),
        cfg.noise_drop * 100.0
    );
    println!(
        "channel: {} of {} beacons lost; mean radar error {:.2} m",
        outcome.beacons_lost,
        outcome.beacons_per_follower * 2,
        outcome.mean_radar_error_m
    );
    println!("switching over {} decision windows:", outcome.windows);
    print_stats("threshold", &outcome.threshold);
    print_stats("uncertainty", &outcome.uncertainty);

    let flips = flight
        .events()
        .iter()
        .filter(|e| e.stage == "monitor.uncertainty")
        .count();
    println!("flight ring holds {flips} estimator crossing events");
}
