//! Fleet operations day-in-the-life: the backend side of the dynamic
//! platform.
//!
//! 1. build the reference vehicle network and measure its scheduling
//!    headroom (critical scaling factor — how much WCET uncertainty the
//!    configuration absorbs);
//! 2. watch a vehicle's monitoring telemetry drift toward its deadline and
//!    catch it *before* the first hard violation;
//! 3. react with a fleet update campaign: per-vehicle backend validation,
//!    canary wave, automatic halt if the fix misbehaves in the field;
//! 4. roll the fix out at fleet scale through the staged update master,
//!    read the waves as an SLO burn-rate summary, and chase the worst
//!    completion latencies by exemplar trace id.
//!
//! Run with: `cargo run --example fleet_operations`

use dynplat::common::rng::seeded_rng;
use dynplat::common::time::SimDuration;
use dynplat::common::{AppId, TaskId, VehicleId};
use dynplat::core::campaign::{CampaignPolicy, UpdateCampaign, UpdateRequirements, VehicleConfig};
use dynplat::faults::FaultPlan;
use dynplat::fleet::{CampaignSpec, UpdateMaster};
use dynplat::hw::reference::{ecus, reference_vehicle};
use dynplat::monitor::anomaly::{DriftDetector, DriftVerdict};
use dynplat::obs::TraceCtx;
use dynplat::sched::sensitivity::critical_scaling_factor;
use dynplat::sched::task::{TaskSet, TaskSpec};
use dynplat::security::package::Version;
use dynplat_common::rng::Rng;
use std::collections::BTreeMap;

fn main() {
    // -- 1. configuration headroom -------------------------------------------
    let vehicle = reference_vehicle();
    let platform_a = vehicle.ecu(ecus::PLATFORM_A).expect("reference ECU");
    println!(
        "reference vehicle: {} ECUs, platform host = {}",
        vehicle.ecu_count(),
        platform_a
    );

    let deployed: TaskSet = [
        TaskSpec::periodic(
            TaskId(1),
            "lane-keep",
            SimDuration::from_millis(20),
            SimDuration::from_millis(4),
        ),
        TaskSpec::periodic(
            TaskId(2),
            "fusion",
            SimDuration::from_millis(33),
            SimDuration::from_millis(8),
        ),
        TaskSpec::periodic(
            TaskId(3),
            "planner",
            SimDuration::from_millis(100),
            SimDuration::from_millis(15),
        ),
    ]
    .into_iter()
    .collect();
    let headroom = critical_scaling_factor(&deployed, 0.01);
    println!(
        "deployed DA set on {}: U = {:.2}, critical scaling factor = {:.2}x",
        platform_a.name(),
        deployed.utilization(),
        headroom
    );

    // -- 2. drift detection on telemetry ---------------------------------------
    // lane-keep's responses creep up in the field (say, a map-data
    // regression); the drift detector warns while deadlines still hold.
    let deadline_ns = 20e6;
    let mut detector = DriftDetector::for_bound(deadline_ns);
    let mut rng = seeded_rng(5);
    let mut first_warning = None;
    let mut first_violation = None;
    for k in 0..4_000u64 {
        let creep = k as f64 * 4_000.0; // +4 us per activation
        let sample = 4e6 + creep + rng.gen_range(-2e5..2e5);
        if sample > deadline_ns && first_violation.is_none() {
            first_violation = Some(k);
        }
        if detector.ingest(sample) == DriftVerdict::Drifting && first_warning.is_none() {
            first_warning = Some(k);
        }
    }
    let warn = first_warning.expect("drift detected");
    println!(
        "\ntelemetry drift: warned at activation {warn}, first hard violation would be at {:?}",
        first_violation
    );
    assert!(first_violation.is_none_or(|v| warn < v));

    // -- 3. the fix ships as a campaign -----------------------------------------
    let mut rng = seeded_rng(11);
    let fleet: Vec<VehicleConfig> = (0..5_000u32)
        .map(|i| {
            let mut v = VehicleConfig::new(
                VehicleId(i),
                rng.gen_range(512..8192),
                rng.gen_range(0.1..0.9),
            );
            // 95% of the fleet runs lane-keep v2.3; a few are still on 2.2.
            let minor = if rng.gen_bool(0.95) { 3 } else { 2 };
            v.installed.insert(AppId(1), Version::new(2, minor, 0));
            // Fusion dependency at various patch levels.
            v.installed
                .insert(AppId(2), Version::new(1, rng.gen_range(0..4), 0));
            v
        })
        .collect();
    let req = UpdateRequirements {
        app: AppId(1),
        version: Version::new(2, 4, 0),
        staged_memory_kib: 2048,
        utilization: 0.2,
        depends_on: [(AppId(2), Version::new(1, 2, 0))].into_iter().collect(),
    };
    let campaign = UpdateCampaign::new(req)
        .with_field_failures(0.01, 99)
        .with_policy(CampaignPolicy {
            waves: vec![0.01, 0.1, 1.0],
            max_wave_failure_rate: 0.08,
        });
    let report = campaign.run(&fleet);
    println!("\nlane-keep 2.4.0 campaign over {} vehicles:", fleet.len());
    for w in &report.waves {
        println!(
            "  wave {}: attempted {:4}, updated {:4}, rejected {:3}, failed {:2} (rate {:.3})",
            w.wave,
            w.attempted,
            w.updated,
            w.rejected,
            w.failed,
            w.failure_rate()
        );
    }
    println!(
        "totals: updated {}, rejected {}, failed {}, halted: {}",
        report.updated(),
        report.rejected(),
        report.failed(),
        report.halted
    );
    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    for outcome in report.outcomes.values() {
        if let dynplat::core::campaign::VehicleOutcome::Rejected(r) = outcome {
            *reasons.entry(r.to_string()).or_insert(0) += 1;
        }
    }
    println!("rejection reasons:");
    for (reason, n) in reasons {
        println!("  {n:4} × {reason}");
    }

    // -- 4. staged rollout, SLO summary, exemplar trace ids --------------------
    // The same fix at fleet scale: the sharded update master stages the
    // rollout in waves, and each wave promotes only while the burn-rate
    // gate stays under the verification error budget.
    let plan = FaultPlan::quiet(23).with_message_faults(0.02, 0.05, 0.0);
    let spec = CampaignSpec::standard(23, 20_000, plan);
    let report = UpdateMaster::new(spec, 4).run();
    println!(
        "\nstaged rollout over {} vehicles ({} updated, halted: {}):",
        report.vehicles, report.totals.updated, report.halted
    );
    print!("{}", report.slo_summary());

    // The slowest end-to-end completions, each tagged with a trace id
    // derived from the vehicle id — the handle an operator would feed to
    // the flight recorder / Chrome-trace lookup to see *why* that vehicle
    // sat in the tail.
    let exemplars = dynplat::obs::global().exemplars("fleet.campaign.e2e_ns");
    for o in &report.outcomes {
        let e2e = o.completed.as_nanos().saturating_sub(o.started.as_nanos());
        exemplars.offer(e2e, TraceCtx::root(u64::from(o.vehicle.raw()) + 1));
    }
    println!("worst completion latencies (exemplar -> trace id):");
    for (metric, top) in dynplat::obs::global().exemplar_snapshot() {
        for e in top.iter().take(3) {
            println!(
                "  {metric}: {:6.1} s  trace {:#x}",
                e.value as f64 / 1e9,
                e.trace.trace_id
            );
        }
    }
}
