//! Fail-operational highway scenario (§3.3): the trajectory-following app
//! runs as a redundant master/slave group across three platform ECUs. At
//! t = 2 s the master's ECU dies; heartbeat supervision detects the silence
//! and promotes a synchronized slave. The vehicle keeps driving — the
//! fail-safe state of an autonomous vehicle is *not* a shutdown.
//!
//! Run with: `cargo run --example fail_operational`

use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{AppId, AppKind, Asil, EcuId, InstanceId};
use dynplat::core::app::AppManifest;
use dynplat::core::redundancy::{RedundancyGroup, Role};
use dynplat::core::DynamicPlatform;
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::model::ir::AppModel;
use dynplat::security::package::{KeyRegistry, Version};

fn trajectory_app() -> AppManifest {
    AppManifest::new(
        AppModel {
            id: AppId(7),
            name: "trajectory".into(),
            kind: AppKind::Deterministic,
            asil: Asil::D,
            provides: vec![],
            consumes: vec![],
            period: SimDuration::from_millis(20),
            work_mi: 40.0,
            memory_kib: 64 * 1024,
            needs_gpu: false,
        },
        Version::new(3, 2, 0),
        [0; 32],
    )
}

fn main() {
    // Three high-performance platform ECUs, one replica each.
    let mut platform = DynamicPlatform::new(KeyRegistry::new());
    for i in 0..3u16 {
        platform.add_node(EcuSpec::of_class(
            EcuId(i),
            format!("platform-{i}"),
            EcuClass::HighPerformance,
        ));
    }

    let heartbeat = SimDuration::from_millis(20);
    let mut group = RedundancyGroup::new(AppId(7), heartbeat);
    let mut replicas: Vec<(InstanceId, EcuId)> = Vec::new();
    for i in 0..3u16 {
        let node = platform.node_mut(EcuId(i)).expect("node exists");
        let instance = node.launch(trajectory_app()).expect("replica deploys");
        let role = group
            .register(SimTime::ZERO, instance, EcuId(i))
            .expect("registers");
        replicas.push((instance, EcuId(i)));
        println!("replica {instance} on ecu{i}: {role}");
    }
    assert_eq!(group.role_of(replicas[0].0), Some(Role::Master));

    // Drive: heartbeats every 20 ms; ecu0 dies at t = 2 s.
    let crash_at = SimTime::from_secs(2);
    let horizon = SimTime::from_secs(4);
    let mut t = SimTime::ZERO;
    let mut crashed = false;
    let mut promoted_at: Option<SimTime> = None;
    while t <= horizon {
        t += heartbeat;
        if !crashed && t >= crash_at {
            crashed = true;
            let lost = platform.fail_ecu(t, EcuId(0));
            println!("\n[{t}] ecu0 failed! apps without serving instance: {lost:?}");
        }
        for &(instance, ecu) in &replicas {
            let alive = !crashed || ecu != EcuId(0);
            if alive {
                group.heartbeat(t, instance).expect("known replica");
            }
        }
        if let Some(new_master) = group.supervise(t).expect("replicas remain") {
            promoted_at = Some(t);
            println!("[{t}] failover: {new_master} promoted to master");
        }
    }

    let detect_latency = promoted_at
        .expect("failover must have happened")
        .saturating_since(crash_at);
    println!("\nfailover detection latency : {detect_latency}");
    println!("control output gap         : {}", group.output_gap());
    println!("healthy replicas remaining : {}", group.healthy());
    println!("failovers performed        : {}", group.failovers());
    assert!(group.healthy() >= 2, "vehicle still fail-operational");
    assert!(
        detect_latency <= heartbeat * 3 + SimDuration::from_millis(1),
        "detection bounded by heartbeat supervision"
    );
    println!("\nvehicle continued operating through the ECU loss — fail-operational.");
}
