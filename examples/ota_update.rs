//! Over-the-air update walkthrough (§3.2 + §4.1):
//!
//! 1. the OEM authority signs an update package;
//! 2. a tampered copy and a replayed package are rejected;
//! 3. a crypto-less body ECU receives the package through the redundant
//!    update master;
//! 4. the running deterministic app is updated with the 4-phase staged
//!    procedure (zero outage), compared against stop–restart and against a
//!    centrally synchronized switch under clock error.
//!
//! Run with: `cargo run --example ota_update`

use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{AppId, AppKind, Asil, EcuId};
use dynplat::core::app::AppManifest;
use dynplat::core::update::{
    centralized_switch_update, staged_update, stop_restart_update, StagedParams, StopRestartParams,
};
use dynplat::core::DynamicPlatform;
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::model::ir::AppModel;
use dynplat::security::master::{RedundantMasters, UpdateMaster, WeakEcuVerifier};
use dynplat::security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat::security::sign::KeyPair;
use dynplat::sim::jitter::ClockModel;
use std::collections::BTreeMap;

fn cruise(version: Version) -> AppManifest {
    AppManifest::new(
        AppModel {
            id: AppId(1),
            name: "cruise".into(),
            kind: AppKind::Deterministic,
            asil: Asil::C,
            provides: vec![],
            consumes: vec![],
            period: SimDuration::from_millis(10),
            work_mi: 2.0,
            memory_kib: 512,
            needs_gpu: false,
        },
        version,
        [0; 32],
    )
}

fn main() {
    let authority = KeyPair::from_seed(b"oem release authority");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());

    // -- package security ---------------------------------------------------
    let package = UpdatePackage::new(AppId(1), Version::new(1, 1, 0), 2, vec![0xF1; 4096])
        .with_metadata("changelog", "improved rain handling");
    let signed = SignedPackage::create(&package, &authority);
    println!("package verifies: {}", signed.verify(&registry).is_ok());

    let mut tampered = signed.clone();
    tampered.package_bytes[100] ^= 0x01;
    println!(
        "tampered copy rejected: {:?}",
        tampered.verify(&registry).err().unwrap()
    );

    // -- update master for the crypto-less ECU -------------------------------
    let psk = [0x42u8; 32];
    let mut m1 = UpdateMaster::new(registry.clone());
    let mut m2 = UpdateMaster::new(registry.clone());
    m1.enroll(EcuId(0), psk);
    m2.enroll(EcuId(0), psk);
    let mut masters = RedundantMasters::new(vec![m1, m2]);
    let (_, voucher) = masters
        .verify_for(&signed, EcuId(0))
        .expect("master verifies");
    let weak = WeakEcuVerifier::new(EcuId(0), psk);
    println!(
        "weak ECU accepts master voucher: {}",
        weak.accept(&signed.package_bytes, &voucher)
    );
    masters.fail(0);
    let (_, voucher) = masters
        .verify_for(&signed, EcuId(0))
        .expect("backup master serves");
    println!(
        "after primary master failure, backup voucher still accepted: {}",
        weak.accept(&signed.package_bytes, &voucher)
    );

    // -- staged vs stop-restart ----------------------------------------------
    let mut platform = DynamicPlatform::new(registry);
    platform.add_node(EcuSpec::of_class(EcuId(1), "zone", EcuClass::Domain));
    platform
        .node_mut(EcuId(1))
        .unwrap()
        .launch(cruise(Version::new(1, 0, 0)))
        .expect("initial deployment");

    let now = SimTime::from_secs(100);
    let staged = staged_update(
        &mut platform,
        now,
        EcuId(1),
        cruise(Version::new(1, 1, 0)),
        2048, // KiB of state to synchronize
        &StagedParams::default(),
    )
    .expect("staged update");
    println!(
        "\nstaged update    : outage {}, overlap {}",
        staged.outage, staged.overlap
    );
    for (phase, at) in &staged.phases {
        println!("  {at}: {phase}");
    }

    let naive = stop_restart_update(
        &mut platform,
        staged.completed_at + SimDuration::from_secs(1),
        EcuId(1),
        cruise(Version::new(1, 2, 0)),
        &StopRestartParams::default(),
    )
    .expect("stop-restart update");
    println!(
        "stop-restart     : outage {} (service down the whole window)",
        naive.outage
    );

    // -- the fragile centralized switch ---------------------------------------
    let commanded = SimTime::from_secs(200);
    for max_offset_ms in [0i64, 1, 5, 20] {
        // Worst-case spread: one replica max-early, one max-late.
        let offsets = [0, max_offset_ms, -max_offset_ms, max_offset_ms / 2];
        let clocks: BTreeMap<EcuId, ClockModel> = offsets
            .iter()
            .enumerate()
            .map(|(i, &off_ms)| (EcuId(i as u16), ClockModel::new(off_ms * 1_000_000, 0.0)))
            .collect();
        let (report, _) = centralized_switch_update(&clocks, commanded, false);
        println!(
            "centralized switch, clock error ±{max_offset_ms} ms: mixed-version window {}",
            report.mixed_version_window
        );
    }
    let (failed, _) = centralized_switch_update(&BTreeMap::new(), commanded, true);
    println!(
        "centralized switch with failed coordinator: phases {:?}",
        failed.phases
    );
}
