//! Quickstart: model a two-ECU dynamic platform, securely deploy a
//! deterministic control app and a non-deterministic HMI app, authorize and
//! exercise an event binding between them, and inspect the platform state.
//!
//! Run with: `cargo run --example quickstart`

use dynplat::comm::paradigm::{EventBus, Publication};
use dynplat::comm::Fabric;
use dynplat::common::ids::ServiceInstance;
use dynplat::common::time::{SimDuration, SimTime};
use dynplat::common::{AppId, AppKind, Asil, EcuId, EventGroupId, ServiceId};
use dynplat::core::DynamicPlatform;
use dynplat::hw::ecu::{EcuClass, EcuSpec};
use dynplat::model::ir::{AppModel, ConsumedPort, PortKind};
use dynplat::net::TrafficClass;
use dynplat::obs::TraceCtx;
use dynplat::security::authz::{AccessControlMatrix, Permission};
use dynplat::security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat::security::sign::KeyPair;

const SPEED_SERVICE: ServiceId = ServiceId(10);
const SPEED_EVENT: EventGroupId = EventGroupId(1);

fn app(id: u32, name: &str, kind: AppKind, asil: Asil) -> AppModel {
    AppModel {
        id: AppId(id),
        name: name.into(),
        kind,
        asil,
        provides: vec![],
        consumes: vec![],
        period: SimDuration::from_millis(10),
        work_mi: 2.0,
        memory_kib: 512,
        needs_gpu: false,
    }
}

fn main() {
    // 1. Trust the OEM signing authority.
    let authority = KeyPair::from_seed(b"oem release authority");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());

    // 2. Two platform ECUs connected by 100 Mbit/s Ethernet.
    let gw = EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain);
    let hp = EcuSpec::of_class(EcuId(2), "compute", EcuClass::HighPerformance);
    let mut platform = DynamicPlatform::new(registry);
    platform.add_node(gw.clone());
    platform.add_node(hp.clone());

    // 3. A deterministic speed provider and a non-deterministic HMI consumer.
    let mut provider = app(1, "speed-sensor", AppKind::Deterministic, Asil::C);
    provider.provides = vec![SPEED_SERVICE];
    let mut consumer = app(2, "hmi", AppKind::NonDeterministic, Asil::Qm);
    consumer.consumes = vec![ConsumedPort {
        service: SPEED_SERVICE,
        kind: PortKind::Event(SPEED_EVENT),
    }];

    let now = SimTime::ZERO;
    for (ecu, model, counter) in [(EcuId(1), provider, 1u64), (EcuId(2), consumer, 2)] {
        let package = UpdatePackage::new(model.id, Version::new(1, 0, 0), counter, vec![0xEC; 64]);
        let signed = SignedPackage::create(&package, &authority);
        let instance = platform
            .deploy(now, ecu, model.clone(), &signed)
            .expect("deploys");
        println!("deployed {:12} on {} as {}", model.name, ecu, instance);
    }

    // 4. Authorization is deny-by-default; grant the HMI its subscription.
    let denied = platform.bind(now, AppId(2), SPEED_SERVICE, Permission::Subscribe);
    println!(
        "bind before grant: {:?}",
        denied.err().map(|e| e.to_string())
    );
    let mut matrix = AccessControlMatrix::new();
    matrix.grant(AppId(2), SPEED_SERVICE, Permission::Subscribe);
    platform.set_access_matrix(matrix);
    let offer = platform
        .bind(now, AppId(2), SPEED_SERVICE, Permission::Subscribe)
        .expect("authorized binding succeeds");
    println!(
        "bind after grant: offer from {} v{}",
        offer.host, offer.version
    );

    // 5. Push ten speed events through the network fabric and measure.
    let mut fabric = Fabric::new(
        dynplat::hw::HwTopology::from_parts(
            [gw, hp],
            [dynplat::hw::topology::BusSpec::new(
                dynplat::common::BusId(0),
                "eth0",
                dynplat::hw::BusKind::ethernet_100m(),
                [EcuId(1), EcuId(2)],
            )],
        )
        .expect("valid topology"),
    );
    let directory = platform.directory().clone();
    let mut bus = EventBus::new(&mut fabric, &directory);
    let publications: Vec<Publication> = (0..10)
        .map(|k| Publication {
            time: now + SimDuration::from_millis(10) * k,
            instance: ServiceInstance::new(SPEED_SERVICE, 0),
            group: SPEED_EVENT,
            src: EcuId(1),
            payload: 16,
            class: TrafficClass::Critical,
            priority: 1,
            trace: TraceCtx::NONE,
        })
        .collect();
    let deliveries = bus.publish_all(&publications);
    println!("\nevent deliveries ({}):", deliveries.len());
    for (k, host, d) in &deliveries {
        println!("  event #{k} -> {host}: latency {}", d.latency());
    }

    // 6. Platform health overview.
    println!("\nplatform state:");
    for (ecu, node) in platform.nodes() {
        println!(
            "  {}: {} instances, {} KiB used, U = {:.3}",
            ecu,
            node.instances().count(),
            node.memory_used_kib(),
            node.utilization()
        );
    }
}
