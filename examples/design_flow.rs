//! The full §2 design flow, end to end:
//!
//! DSL text → parse → verification engine over *all* deployment variants →
//! design-space exploration → artifact generation (access-control matrix,
//! middleware config, per-ECU task sets, code stubs) → schedule synthesis.
//!
//! Run with: `cargo run --example design_flow`

use dynplat::common::time::SimDuration;
use dynplat::dse::search::{simulated_annealing, DseConfig};
use dynplat::model::dsl::{parse_model, print_model};
use dynplat::model::generate::{access_matrix, code_stubs, middleware_config, task_sets};
use dynplat::model::verify::verify_all_variants;
use dynplat::sched::tt;

const VEHICLE: &str = r#"
# A compact E/E architecture: body CAN + compute Ethernet.
system {
  hardware {
    ecu "body"    { id 0 class low }
    ecu "gateway" { id 1 class domain }
    ecu "adas-a"  { id 2 class high }
    ecu "adas-b"  { id 3 class high }
    bus "can0" { id 0 can 500000 attach [0 1] }
    bus "eth0" { id 1 ethernet 1000000000 attach [1 2 3] }
  }
  interface "vehicle-state" {
    id 10 owner 1 version 1
    event "speed" { id 1 payload {speed_kmh: f64, wheel_ticks: [u32; 4]} latency 10ms critical }
    method "set_profile" { id 2 request {profile: enum(eco|normal|sport)} response bool latency 50ms }
  }
  interface "camera" {
    id 20 owner 3 version 1
    stream "front" { id 1 frame blob bandwidth 15000000 }
  }
  application "state-server" {
    id 1 deterministic asil C provides [10] period 10ms work 2 memory 1024
  }
  application "lane-keep" {
    id 3 deterministic asil D
    consumes [10 event 1, 20 stream 1]
    period 20ms work 40 memory 262144
  }
  application "camera-driver" {
    id 4 deterministic asil D provides [20] period 33ms work 30 memory 131072
  }
  application "hmi" {
    id 5 non-deterministic asil QM
    consumes [10 event 1, 10 method 2]
    period 100ms work 10 memory 524288
  }
  deployment {
    app 1 on 1
    app 3 on any [2 3]
    app 4 on any [2 3]
    app 5 on any [2 3]
  }
}
"#;

fn main() {
    // 1. Parse the DSLs.
    let model = parse_model(VEHICLE).expect("model parses");
    println!(
        "parsed: {} ECUs, {} interfaces, {} applications, {} deployment variants",
        model.hardware.ecu_count(),
        model.interfaces.len(),
        model.applications.len(),
        model.deployment.variant_count()
    );

    // The printer emits canonical DSL text (round-trips through the parser).
    let reprinted = print_model(&model);
    assert_eq!(parse_model(&reprinted).expect("reparse"), model);

    // 2. Verify every variant ("every possible mapping is functional, safe
    //    and secure", §2.3).
    let results = verify_all_variants(&model, 64);
    let clean = results.iter().filter(|(_, v)| v.is_empty()).count();
    println!("\nvariant verification: {clean}/{} clean", results.len());
    for (assignment, violations) in &results {
        if !violations.is_empty() {
            let placed: Vec<String> = assignment
                .iter()
                .map(|(a, e)| format!("{a}->{e}"))
                .collect();
            println!("  [{}]", placed.join(" "));
            for v in violations {
                println!("     {v}");
            }
        }
    }

    // 3. Explore the deployment space for the cheapest feasible design.
    let cfg = DseConfig {
        iterations: 1000,
        ..Default::default()
    };
    let result = simulated_annealing(&model, &cfg);
    let (assignment, objectives) = result.best.expect("search produced a design");
    println!(
        "\nDSE best design: cost {}, {} ECUs used, peak U {:.2} ({} evaluations, {} Pareto points)",
        objectives.used_cost,
        objectives.used_ecus,
        objectives.peak_utilization,
        result.evaluations,
        result.archive.len()
    );
    for (app, ecu) in &assignment {
        println!("  {app} -> {ecu}");
    }

    // 4. Generate the deployment artifacts.
    let matrix = access_matrix(&model);
    println!(
        "\naccess-control matrix: {} rules (deny-by-default)",
        matrix.len()
    );
    let sd = middleware_config(&model, &assignment, SimDuration::from_secs(5));
    println!("middleware bootstrap: {} SD entries", sd.len());
    let sets = task_sets(&model, &assignment);
    for (ecu, set) in &sets {
        println!(
            "task set on {ecu}: {} tasks, U = {:.3}, hyperperiod {}",
            set.len(),
            set.utilization(),
            set.hyperperiod()
        );
        // 5. Synthesize the backend time-triggered schedule (§3.1).
        match tt::synthesize(set) {
            Ok(schedule) => {
                schedule
                    .validate(set)
                    .expect("synthesized schedule is valid");
                println!(
                    "  TT schedule: {} slots, table utilization {:.3}",
                    schedule.entries().len(),
                    schedule.utilization()
                );
            }
            Err(e) => println!("  TT synthesis failed: {e}"),
        }
    }

    // 6. Code stubs for the interface owners.
    let stubs = code_stubs(&model);
    println!("\ngenerated code stubs:\n{stubs}");
}
