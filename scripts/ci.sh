#!/usr/bin/env bash
# The full offline gate: everything here runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
