#!/usr/bin/env bash
# The full offline gate: everything here runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch space for rerun/determinism checks: cleaned up even when a cmp
# fails, so a broken gate never leaves *_rerun.json litter in the tree.
SMOKE_TMP="$(mktemp -d)"
trap 'rm -rf "$SMOKE_TMP"' EXIT

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> dynplat-analysis --workspace (invariant lint, allowlist-gated)"
# The zero-dep workspace linter: forbid(unsafe_code) everywhere, no
# unwrap/panic in lib code, no wall clocks or hash collections in
# determinism-critical crates, every Ordering::Relaxed justified. Writes
# the machine-readable findings report that CI uploads on failure.
cargo run --release -q -p dynplat-analysis -- \
  --workspace --report ANALYSIS_findings.json

echo "==> schedule-exploration model checker (SPSC ring + stripe flush)"
cargo test -q -p dynplat-analysis --test model_check

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> SPSC ring property suite (wrap-around, spill, cross-thread)"
cargo test -q --test properties5

echo "==> perf smoke gate (bench vs BENCH_baseline.json, alloc gate armed)"
# Single-threaded, so the counting allocator is armed: any heap allocation
# in a steady-state deliver loop fails this step, not just a perf drop.
cargo run --release -p dynplat-bench --bin bench -- \
  --quick --out BENCH_snapshot.json --check BENCH_baseline.json >/dev/null

echo "==> e13 detection-latency smoke (tiny horizon)"
cargo run --release -p dynplat-bench --bin e13_detection_latency -- \
  --horizon-ms 3000 --dump FLIGHT_e13.json >/dev/null

echo "==> e14 uncertainty-adaptation smoke (tiny horizon, determinism-checked)"
cargo run --release -p dynplat-bench --bin e14_uncertainty_adaptation -- \
  --horizon-ms 3000 --out E14_sweep.json >/dev/null
cargo run --release -p dynplat-bench --bin e14_uncertainty_adaptation -- \
  --horizon-ms 3000 --out "$SMOKE_TMP/E14_sweep_rerun.json" >/dev/null
cmp E14_sweep.json "$SMOKE_TMP/E14_sweep_rerun.json"

echo "==> e15 fleet-campaign smoke (100k vehicles, shard-invariance-checked)"
# The rerun flips the shard count: one cmp pins both rerun determinism and
# the merge's independence from sharding.
cargo run --release -p dynplat-bench --bin e15_fleet_campaign -- \
  --vehicles 100000 --shards 4 --out E15_campaign.json >/dev/null
cargo run --release -p dynplat-bench --bin e15_fleet_campaign -- \
  --vehicles 100000 --shards 1 --out "$SMOKE_TMP/E15_campaign_rerun.json" >/dev/null
cmp E15_campaign.json "$SMOKE_TMP/E15_campaign_rerun.json"

echo "==> e16 slo-telemetry smoke (8k vehicles, shard-flipped telemetry cmp)"
# The rerun flips the shard count; cmp-ing both the e16 report and every
# merged TELEMETRY_<arm>.json pins determinism *and* the sketch/ring
# merge's shard-invariance in one check.
mkdir -p "$SMOKE_TMP/tel_a" "$SMOKE_TMP/tel_b"
cargo run --release -p dynplat-bench --bin e16_slo_telemetry -- \
  --vehicles 8000 --shards 4 --out E16_slo.json \
  --telemetry "$SMOKE_TMP/tel_a" >/dev/null
cargo run --release -p dynplat-bench --bin e16_slo_telemetry -- \
  --vehicles 8000 --shards 1 --out "$SMOKE_TMP/E16_slo_rerun.json" \
  --telemetry "$SMOKE_TMP/tel_b" >/dev/null
cmp E16_slo.json "$SMOKE_TMP/E16_slo_rerun.json"
for f in "$SMOKE_TMP"/tel_a/TELEMETRY_*.json; do
  cmp "$f" "$SMOKE_TMP/tel_b/$(basename "$f")"
done
# Keep the merged per-arm telemetry next to the report for the failure
# artifact upload.
cp "$SMOKE_TMP"/tel_a/TELEMETRY_*.json .

echo "==> ci.sh: all green"
