//! The per-vehicle OTA state machine, in closed form.
//!
//! A fleet campaign cannot afford a full discrete-event kernel per vehicle
//! — at 10⁵–10⁶ vehicles the per-vehicle cost must stay at "a few dozen
//! RNG draws plus arithmetic". [`simulate_vehicle`] therefore walks the
//! admission → download → install → verify pipeline analytically on the
//! simulated clock: chunked download with per-chunk loss retries and delay
//! spikes, region-bus partitions stalling progress (the straggler tail),
//! image corruption forcing re-fetches, and a final verification draw.
//!
//! **Every stochastic decision draws from a per-vehicle stream** derived as
//! `split_seed(split_seed(campaign_seed, VEHICLE_STREAM), vehicle_id)`.
//! A shard's randomness is exactly the union of its vehicles' streams and
//! nothing else, which is what makes the merged campaign byte-identical
//! across shard counts: vehicle identity, not shard identity, addresses
//! the entropy.

use crate::campaign::CampaignSpec;
use crate::variant::pick_variant;
use dynplat_common::rng::{seeded_rng, split_seed, truncated_normal_factor, Rng};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, VehicleId};

/// Stream label separating per-vehicle streams from any other use of the
/// campaign seed.
const VEHICLE_STREAM: u64 = 0x0F1E_E7CA_A5E5_0001;

/// A chunk lost this many times in a row is handed to the resumptive
/// transport's slow path; the model stops burning draws on it and charges
/// one full backoff instead. Keeps the per-vehicle draw count bounded even
/// at drop rates near 1.
const MAX_CHUNK_RETRIES: u32 = 16;

/// Terminal state of one vehicle in one campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VehicleVerdict {
    /// Admission refused: the variant's flash cannot hold an A/B image.
    RejectedFlash,
    /// The vehicle was unreachable when its wave opened (parked offline,
    /// no connectivity); it is skipped, not failed.
    Offline,
    /// Downloaded, installed and verified — running the new version.
    Updated,
    /// Verification failed (or the image corrupted twice); the vehicle
    /// rolled back to its previous version on its own.
    VerifyFailed,
    /// Verified fine, but the wave gate later failed the whole wave and
    /// the update master rolled this vehicle back. Assigned by the master,
    /// never by the per-vehicle simulation.
    WaveRolledBack,
}

/// What happened to one vehicle, on the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VehicleOutcome {
    /// The vehicle.
    pub vehicle: VehicleId,
    /// Index into the campaign's variant mix.
    pub variant: usize,
    /// The region bus this vehicle downloads over (partition target).
    pub region: BusId,
    /// Terminal state.
    pub verdict: VehicleVerdict,
    /// When the update master offered the image (wave start + stagger).
    pub started: SimTime,
    /// When the chunked download finished (equals `started` for vehicles
    /// that never downloaded) — splits the pipeline into a download stage
    /// and a finalize (integrity/install/verify) stage for the per-stage
    /// telemetry sketches.
    pub downloaded: SimTime,
    /// When the vehicle reached its terminal state.
    pub completed: SimTime,
    /// Time lost waiting out region partitions — the straggler cause.
    pub stall: SimDuration,
    /// Chunk retransmissions due to message loss.
    pub retries: u32,
}

impl VehicleOutcome {
    /// Offer-to-terminal duration.
    pub fn duration(&self) -> SimDuration {
        self.completed.saturating_since(self.started)
    }

    /// Offer-to-downloaded duration (zero for vehicles that never
    /// downloaded).
    pub fn download_time(&self) -> SimDuration {
        self.downloaded.saturating_since(self.started)
    }

    /// Downloaded-to-terminal duration: integrity re-fetch, install and
    /// verification.
    pub fn finalize_time(&self) -> SimDuration {
        self.completed.saturating_since(self.downloaded)
    }

    /// `true` for the verdicts that passed admission and ran the full
    /// download/install/verify pipeline.
    pub fn admitted(&self) -> bool {
        !matches!(
            self.verdict,
            VehicleVerdict::RejectedFlash | VehicleVerdict::Offline
        )
    }
}

/// The region bus a vehicle downloads over. Regions tile the fleet
/// round-robin so every partition window hits a deterministic, evenly
/// spread subset of each wave.
pub fn region_of(spec: &CampaignSpec, vehicle: VehicleId) -> BusId {
    BusId((vehicle.raw() % u32::from(spec.regions.max(1))) as u16)
}

/// Runs one vehicle through the campaign pipeline, starting at its wave's
/// `wave_start`. Pure function of `(spec, vehicle, wave_start)` — no shard
/// state enters.
pub fn simulate_vehicle(
    spec: &CampaignSpec,
    vehicle: VehicleId,
    wave_start: SimTime,
) -> VehicleOutcome {
    let mut rng = seeded_rng(split_seed(
        split_seed(spec.seed, VEHICLE_STREAM),
        u64::from(vehicle.raw()),
    ));
    let variant_idx = pick_variant(&spec.mix, &mut rng);
    let variant = &spec.mix[variant_idx];
    let region = region_of(spec, vehicle);

    // Offer instant: the update master spreads each wave's offers over
    // `wave_spread` so the backend never sees the whole wave at once.
    let stagger = SimDuration::from_nanos(rng.gen_range(0..spec.wave_spread.as_nanos().max(1)));
    let started = wave_start + stagger;

    let done = |verdict, downloaded, completed, stall, retries| VehicleOutcome {
        vehicle,
        variant: variant_idx,
        region,
        verdict,
        started,
        downloaded,
        completed,
        stall,
        retries,
    };

    // Admission: per-variant resource check, then reachability.
    if !variant.admits(&spec.image) {
        return done(
            VehicleVerdict::RejectedFlash,
            started,
            started,
            SimDuration::ZERO,
            0,
        );
    }
    if spec.offline_rate > 0.0 && rng.gen_bool(spec.offline_rate) {
        return done(
            VehicleVerdict::Offline,
            started,
            started,
            SimDuration::ZERO,
            0,
        );
    }

    // Chunked download under the fault plan: partitions stall progress,
    // loss retransmits chunks, delay spikes stretch individual fetches.
    let plan = &spec.plan;
    let chunk_time =
        SimDuration::from_secs_f64(spec.image.chunk_kib() / variant.download_kib_per_s as f64);
    let mut t = started;
    let mut stall = SimDuration::ZERO;
    let mut retries = 0u32;
    for _chunk in 0..spec.image.chunks {
        let clear = plan.clear_of_partitions(region, t);
        stall += clear.saturating_since(t);
        t = clear;
        if plan.drop_rate > 0.0 {
            let mut lost = 0u32;
            while lost < MAX_CHUNK_RETRIES && rng.gen_bool(plan.drop_rate) {
                lost += 1;
                t += chunk_time; // the lost transfer still burned air time
            }
            retries += lost;
        }
        if plan.delay_spike_rate > 0.0 && rng.gen_bool(plan.delay_spike_rate) {
            t += plan.delay_spike.mul_f64(rng.gen::<f64>());
        }
        t += chunk_time;
    }
    let downloaded = t;

    // Integrity check at install: a corrupted image is re-fetched once
    // (differential re-download, ~¼ of the image); corrupted twice, the
    // vehicle gives up and rolls back on its own.
    if plan.corrupt_rate > 0.0 && rng.gen_bool(plan.corrupt_rate) {
        t += downloaded.saturating_since(started).mul_f64(0.25);
        if rng.gen_bool(plan.corrupt_rate) {
            return done(VehicleVerdict::VerifyFailed, downloaded, t, stall, retries);
        }
    }

    // Install with per-vehicle jitter, then the post-install health check.
    t += variant
        .install
        .mul_f64(truncated_normal_factor(&mut rng, 0.15, 0.6, 1.8));
    t += variant.verify;
    let verdict = if rng.gen_bool(variant.good_image_verify_failure) {
        VehicleVerdict::VerifyFailed
    } else {
        VehicleVerdict::Updated
    };
    done(verdict, downloaded, t, stall, retries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignSpec, WaveGate};
    use crate::variant::{standard_mix, ImageSpec};
    use dynplat_faults::FaultPlan;

    fn spec(plan: FaultPlan) -> CampaignSpec {
        CampaignSpec {
            seed: 0xE15,
            vehicles: 1_000,
            regions: 8,
            offline_rate: 0.02,
            mix: standard_mix(),
            image: ImageSpec::standard(),
            waves: vec![0.25, 0.75],
            wave_spread: SimDuration::from_secs(60),
            soak: SimDuration::from_secs(5),
            gate: WaveGate::default(),
            plan,
        }
    }

    #[test]
    fn outcomes_are_deterministic_per_vehicle() {
        let s = spec(FaultPlan::quiet(0xE15));
        for v in 0..64u32 {
            let a = simulate_vehicle(&s, VehicleId(v), SimTime::ZERO);
            let b = simulate_vehicle(&s, VehicleId(v), SimTime::ZERO);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn quiet_plan_yields_no_stall_or_retries() {
        let s = spec(FaultPlan::quiet(0xE15));
        for v in 0..256u32 {
            let o = simulate_vehicle(&s, VehicleId(v), SimTime::ZERO);
            assert_eq!(o.stall, SimDuration::ZERO);
            assert_eq!(o.retries, 0);
            assert!(o.completed >= o.started);
        }
    }

    #[test]
    fn partition_stalls_only_its_region() {
        let quiet = spec(FaultPlan::quiet(0xE15));
        let window_from = SimTime::from_secs(0);
        let window_until = SimTime::from_secs(600);
        let faulted = spec(FaultPlan::quiet(0xE15).partition(BusId(3), window_from, window_until));
        let mut stalled = 0u32;
        for v in 0..512u32 {
            let q = simulate_vehicle(&quiet, VehicleId(v), SimTime::ZERO);
            let f = simulate_vehicle(&faulted, VehicleId(v), SimTime::ZERO);
            if f.region == BusId(3) && f.admitted() {
                assert!(f.stall > SimDuration::ZERO, "veh{v} should have stalled");
                assert!(f.completed > q.completed);
                stalled += 1;
            } else {
                assert_eq!(f.stall, SimDuration::ZERO, "veh{v} is outside the region");
            }
        }
        assert!(stalled > 20, "the partitioned region must be populated");
    }

    #[test]
    fn corruption_raises_verify_failures() {
        let quiet = spec(FaultPlan::quiet(0xE15));
        let broken = spec(FaultPlan::quiet(0xE15).with_message_faults(0.0, 0.4, 0.0));
        let fail = |s: &CampaignSpec| {
            (0..2_000u32)
                .map(|v| simulate_vehicle(s, VehicleId(v), SimTime::ZERO))
                .filter(|o| o.verdict == VehicleVerdict::VerifyFailed)
                .count()
        };
        let (q, b) = (fail(&quiet), fail(&broken));
        assert!(
            b > q + 100,
            "double corruption must dominate failures: quiet {q}, broken {b}"
        );
    }

    #[test]
    fn loss_adds_retries_and_time() {
        let quiet = spec(FaultPlan::quiet(0xE15));
        let lossy = spec(FaultPlan::quiet(0xE15).with_message_faults(0.3, 0.0, 0.0));
        // Loss shifts the whole distribution right, but a single vehicle
        // can still finish earlier under loss (its install-jitter draw
        // differs between the arms), so compare aggregates.
        let mut retries = 0u64;
        let mut quiet_total = 0u64;
        let mut lossy_total = 0u64;
        for v in 0..256u32 {
            let q = simulate_vehicle(&quiet, VehicleId(v), SimTime::ZERO);
            let l = simulate_vehicle(&lossy, VehicleId(v), SimTime::ZERO);
            if l.admitted() && q.admitted() {
                quiet_total += q.duration().as_nanos();
                lossy_total += l.duration().as_nanos();
                retries += u64::from(l.retries);
            }
        }
        assert!(
            lossy_total > quiet_total,
            "aggregate completion must slow down under loss"
        );
        assert!(retries > 500, "30% loss over 32 chunks must retransmit");
    }
}
