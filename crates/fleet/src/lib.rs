//! Sharded fleet engine and staged OTA campaign backend (§3.2, §4.1).
//!
//! The paper's update master is not a per-vehicle tool: §4.1 frames
//! software updates as a *fleet* operation, where the backend must manage
//! uncertainty at scale — heterogeneous hardware variants, vehicles that
//! are offline or starved for flash, lossy and partitioned networks, and
//! images that turn out to be broken only once thousands of vehicles have
//! verified them. This crate reproduces that backend over the repo's
//! deterministic substrate:
//!
//! * [`variant`] — heterogeneous [`HwVariant`]s and per-variant admission
//!   (A/B flash headroom), the scaling problem of fleet campaigns;
//! * [`vehicle`] — the closed-form per-vehicle OTA pipeline (admission →
//!   chunked download → install → verify) under a `dynplat_faults`
//!   [`FaultPlan`](dynplat_faults::FaultPlan), with all randomness keyed
//!   by vehicle id;
//! * [`shard`] — the [`ShardPool`]: one sim kernel per thread, vehicles
//!   tiled round-robin, canonical merge that is byte-identical across
//!   shard counts;
//! * [`campaign`] — the [`UpdateMaster`]: staged rollout waves, a
//!   wave-promotion gate driven by `dynplat_monitor`'s
//!   [`BoundaryEstimator`](dynplat_monitor::uncertainty::BoundaryEstimator)
//!   over the verification failure-rate distribution, and the rollback
//!   storm a tripped gate produces.
//!
//! Experiment **E15** (`dynplat-bench`) runs three campaign arms — quiet,
//! degraded network, broken image — over 10⁵-vehicle fleets and emits the
//! `dynplat.e15.v1` report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod shard;
pub mod variant;
pub mod vehicle;

pub use campaign::{CampaignReport, CampaignSpec, UpdateMaster, WaveGate, WaveReport};
pub use shard::{ShardMetrics, ShardPool};
pub use variant::{pick_variant, standard_mix, HwVariant, ImageSpec};
pub use vehicle::{region_of, simulate_vehicle, VehicleOutcome, VehicleVerdict};
