//! Heterogeneous hardware variants and per-variant admission checks.
//!
//! A fleet is never uniform: vehicles ship with different ECU generations,
//! flash sizes and connectivity, and "Automatic Platform Configuration and
//! Software Integration for Software-Defined Vehicles" (PAPERS.md) names
//! per-variant configuration as *the* scaling problem of fleet-wide
//! campaigns. The update master therefore admission-checks every vehicle
//! against its [`HwVariant`] before the image is offered: a variant whose
//! flash cannot hold both the running slot and the incoming image (A/B
//! update) is rejected up front instead of bricking in the field.

use dynplat_common::rng::Rng;
use dynplat_common::time::SimDuration;

/// The OTA image one campaign distributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageSpec {
    /// Image size in KiB.
    pub size_kib: u64,
    /// Chunks the download is split into (each chunk is retried
    /// independently under message loss).
    pub chunks: u32,
}

impl ImageSpec {
    /// A mid-size full-platform image: 96 MiB in 32 chunks.
    pub fn standard() -> Self {
        ImageSpec {
            size_kib: 96 * 1024,
            chunks: 32,
        }
    }

    /// Size of one download chunk in KiB.
    pub fn chunk_kib(&self) -> f64 {
        self.size_kib as f64 / f64::from(self.chunks.max(1))
    }
}

/// One hardware variant of the fleet: the resources and failure behavior
/// shared by every vehicle built with this ECU generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwVariant {
    /// Variant label (stable, appears in reports).
    pub name: &'static str,
    /// Update-partition flash in KiB; admission requires room for an A/B
    /// double image.
    pub flash_kib: u64,
    /// OTA downlink bandwidth in KiB/s.
    pub download_kib_per_s: u64,
    /// Base install time of one image.
    pub install: SimDuration,
    /// Post-install health-check (verification) run time.
    pub verify: SimDuration,
    /// Probability that verification fails on a *good* image (flaky
    /// sensors, marginal flash cells) — the noise floor the wave gate must
    /// not trip on.
    pub good_image_verify_failure: f64,
    /// Relative weight of this variant in the fleet mix.
    pub share: u32,
}

impl HwVariant {
    /// Admission check: the variant can hold the image next to the running
    /// slot (A/B update — the fleet-scale analogue of the staged update's
    /// "double resources during the overlap", §3.2).
    pub fn admits(&self, image: &ImageSpec) -> bool {
        self.flash_kib >= image.size_kib.saturating_mul(2)
    }
}

/// The standard four-variant fleet mix: three admissible ECU generations
/// with different bandwidth/flash/noise trade-offs, plus a legacy variant
/// whose flash cannot hold an A/B image of [`ImageSpec::standard`] — every
/// campaign over this mix exercises per-variant admission rejection.
pub fn standard_mix() -> Vec<HwVariant> {
    vec![
        HwVariant {
            name: "lowend-cell",
            flash_kib: 256 * 1024,
            download_kib_per_s: 2 * 1024,
            install: SimDuration::from_secs(40),
            verify: SimDuration::from_secs(10),
            good_image_verify_failure: 0.004,
            share: 3,
        },
        HwVariant {
            name: "domain-eth",
            flash_kib: 1024 * 1024,
            download_kib_per_s: 8 * 1024,
            install: SimDuration::from_secs(25),
            verify: SimDuration::from_secs(8),
            good_image_verify_failure: 0.002,
            share: 5,
        },
        HwVariant {
            name: "hpc-5g",
            flash_kib: 4 * 1024 * 1024,
            download_kib_per_s: 32 * 1024,
            install: SimDuration::from_secs(15),
            verify: SimDuration::from_secs(6),
            good_image_verify_failure: 0.001,
            share: 2,
        },
        HwVariant {
            name: "legacy-small-flash",
            flash_kib: 128 * 1024,
            download_kib_per_s: 1024,
            install: SimDuration::from_secs(60),
            verify: SimDuration::from_secs(12),
            good_image_verify_failure: 0.006,
            share: 2,
        },
    ]
}

/// Picks a variant index from `mix` by share weight, consuming exactly one
/// draw from `rng`. Deterministic given the rng state, so a per-vehicle
/// stream always maps a vehicle to the same variant regardless of which
/// shard simulates it.
///
/// # Panics
///
/// Panics if `mix` is empty or all shares are zero.
pub fn pick_variant<R: Rng>(mix: &[HwVariant], rng: &mut R) -> usize {
    let total: u64 = mix.iter().map(|v| u64::from(v.share)).sum();
    assert!(total > 0, "variant mix must have positive total share");
    let mut ticket = rng.gen_range(0..total);
    for (i, v) in mix.iter().enumerate() {
        let share = u64::from(v.share);
        if ticket < share {
            return i;
        }
        ticket -= share;
    }
    unreachable!("ticket exhausts the total share");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::rng::seeded_rng;

    #[test]
    fn standard_mix_splits_admission() {
        let image = ImageSpec::standard();
        let mix = standard_mix();
        let admitted: Vec<&str> = mix
            .iter()
            .filter(|v| v.admits(&image))
            .map(|v| v.name)
            .collect();
        assert_eq!(admitted, ["lowend-cell", "domain-eth", "hpc-5g"]);
        // The legacy variant is rejected for flash, not for any other field.
        let legacy = mix.last().expect("mix is non-empty");
        assert!(legacy.flash_kib < 2 * image.size_kib);
    }

    #[test]
    fn pick_variant_tracks_shares() {
        let mix = standard_mix();
        let total: u64 = mix.iter().map(|v| u64::from(v.share)).sum();
        let mut rng = seeded_rng(7);
        let n = 24_000usize;
        let mut counts = vec![0u64; mix.len()];
        for _ in 0..n {
            counts[pick_variant(&mix, &mut rng)] += 1;
        }
        for (i, v) in mix.iter().enumerate() {
            let expected = n as f64 * f64::from(v.share) / total as f64;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected * 0.15,
                "{}: {got} picks vs expected {expected}",
                v.name
            );
        }
    }

    #[test]
    fn pick_variant_is_deterministic_per_stream() {
        let mix = standard_mix();
        let a = pick_variant(&mix, &mut seeded_rng(99));
        let b = pick_variant(&mix, &mut seeded_rng(99));
        assert_eq!(a, b);
    }

    #[test]
    fn chunking_covers_the_image() {
        let image = ImageSpec::standard();
        let covered = image.chunk_kib() * f64::from(image.chunks);
        assert!((covered - image.size_kib as f64).abs() < 1e-6);
    }
}
