//! The sharded fleet engine: one sim kernel per shard, merge at the master.
//!
//! A 10⁵–10⁶-vehicle campaign does not fit one sequential kernel, so the
//! fleet is split across persistent worker threads ("shards"), each running
//! the closed-form vehicle kernel over its slice of every wave. Shards are
//! pure workers: a vehicle's entire stochastic behavior comes from its
//! per-vehicle stream (see [`crate::vehicle`]), so which shard simulates it
//! is invisible in the results. The pool merges each wave canonically —
//! replies collected in shard-index order, outcomes sorted by vehicle id —
//! which makes the merged campaign byte-identical across shard counts and
//! is what E15 and the root `e15_fleet_campaign` test pin.

use crate::campaign::CampaignSpec;
use crate::vehicle::{simulate_vehicle, VehicleOutcome, VehicleVerdict};
use dynplat_common::time::SimTime;
use dynplat_common::{ShardId, VehicleId};
use dynplat_obs::Sketch;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-shard pipeline counters and stage-latency sketches, merged across
/// shards by the master. [`Sketch::merge`] is associative and commutative,
/// so the merged distributions — like the counters — are byte-identical
/// whatever the shard count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Vehicles this shard ran through the pipeline.
    pub simulated: u64,
    /// Vehicles that passed admission.
    pub admitted: u64,
    /// Vehicles rejected at admission (flash too small).
    pub rejected_flash: u64,
    /// Vehicles unreachable at wave open.
    pub offline: u64,
    /// Vehicles that verified the new version.
    pub updated: u64,
    /// Vehicles whose verification failed.
    pub verify_failed: u64,
    /// Chunk retransmissions across the shard's vehicles.
    pub retries: u64,
    /// Total time the shard's vehicles spent stalled on partitions, in ns.
    pub stall_ns: u64,
    /// Download-stage durations (ms) of admitted vehicles.
    pub download_ms: Sketch,
    /// Finalize-stage (integrity/install/verify) durations (ms) of
    /// admitted vehicles.
    pub finalize_ms: Sketch,
    /// Partition-stall durations (ms) of admitted vehicles.
    pub stall_ms: Sketch,
    /// Offer-to-terminal durations (ms) of admitted vehicles.
    pub e2e_ms: Sketch,
}

impl ShardMetrics {
    /// Folds one vehicle outcome into the counters and, for admitted
    /// vehicles (the ones that ran the pipeline), the stage sketches.
    pub fn observe(&mut self, outcome: &VehicleOutcome) {
        self.simulated += 1;
        match outcome.verdict {
            VehicleVerdict::RejectedFlash => self.rejected_flash += 1,
            VehicleVerdict::Offline => self.offline += 1,
            VehicleVerdict::Updated | VehicleVerdict::WaveRolledBack => {
                self.admitted += 1;
                self.updated += 1;
            }
            VehicleVerdict::VerifyFailed => {
                self.admitted += 1;
                self.verify_failed += 1;
            }
        }
        self.retries += u64::from(outcome.retries);
        self.stall_ns += outcome.stall.as_nanos();
        if outcome.admitted() {
            self.download_ms.record(outcome.download_time().as_millis());
            self.finalize_ms.record(outcome.finalize_time().as_millis());
            self.stall_ms.record(outcome.stall.as_millis());
            self.e2e_ms.record(outcome.duration().as_millis());
        }
    }

    /// Merges another shard's counters and sketches into this one.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.simulated += other.simulated;
        self.admitted += other.admitted;
        self.rejected_flash += other.rejected_flash;
        self.offline += other.offline;
        self.updated += other.updated;
        self.verify_failed += other.verify_failed;
        self.retries += other.retries;
        self.stall_ns += other.stall_ns;
        self.download_ms.merge(&other.download_ms);
        self.finalize_ms.merge(&other.finalize_ms);
        self.stall_ms.merge(&other.stall_ms);
        self.e2e_ms.merge(&other.e2e_ms);
    }

    /// `true` iff the counters conserve vehicles: every simulated vehicle
    /// is admitted, rejected or offline, every admitted vehicle either
    /// updated or failed verification, and every stage sketch holds
    /// exactly one observation per admitted vehicle.
    pub fn conserves(&self) -> bool {
        self.admitted + self.rejected_flash + self.offline == self.simulated
            && self.updated + self.verify_failed == self.admitted
            && self.download_ms.count() == self.admitted
            && self.finalize_ms.count() == self.admitted
            && self.stall_ms.count() == self.admitted
            && self.e2e_ms.count() == self.admitted
    }
}

/// Command from the master to one shard worker.
enum ShardCmd {
    /// Simulate this shard's slice of wave `[lo, hi)` starting at `start`.
    Wave {
        wave: u32,
        lo: u32,
        hi: u32,
        start: SimTime,
    },
    /// Drain and exit.
    Shutdown,
}

/// One shard's reply for one wave.
struct WaveBatch {
    shard: ShardId,
    wave: u32,
    outcomes: Vec<VehicleOutcome>,
    metrics: ShardMetrics,
}

struct ShardWorker {
    cmds: Sender<ShardCmd>,
    replies: Receiver<WaveBatch>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of persistent shard workers, one sim kernel per thread.
///
/// Vehicles tile the shards round-robin (`vehicle % shards`), so every
/// shard sees a representative slice of each wave. The pool lives for the
/// whole campaign; waves are dispatched over channels and merged in shard
/// order.
pub struct ShardPool {
    workers: Vec<ShardWorker>,
}

impl ShardPool {
    /// Spawns `shards` workers over the campaign spec.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn spawn(spec: Arc<CampaignSpec>, shards: usize) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let workers = (0..shards)
            .map(|idx| {
                let spec = Arc::clone(&spec);
                let (cmd_tx, cmd_rx) = channel::<ShardCmd>();
                let (reply_tx, reply_rx) = channel::<WaveBatch>();
                let shard = ShardId(idx as u16);
                let handle = std::thread::Builder::new()
                    .name(format!("fleet-shard-{idx}"))
                    .spawn(move || shard_main(&spec, shard, shards, &cmd_rx, &reply_tx))
                    .expect("spawn fleet shard thread");
                ShardWorker {
                    cmds: cmd_tx,
                    replies: reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool { workers }
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Runs wave `[lo, hi)` across all shards and returns the canonical
    /// merge: outcomes sorted by vehicle id plus summed counters. The
    /// result is independent of the shard count.
    pub fn run_wave(
        &mut self,
        wave: u32,
        lo: u32,
        hi: u32,
        start: SimTime,
    ) -> (Vec<VehicleOutcome>, ShardMetrics) {
        for worker in &self.workers {
            worker
                .cmds
                .send(ShardCmd::Wave {
                    wave,
                    lo,
                    hi,
                    start,
                })
                .expect("fleet shard hung up before the wave was dispatched");
        }
        let mut outcomes = Vec::with_capacity((hi - lo) as usize);
        let mut metrics = ShardMetrics::default();
        for (idx, worker) in self.workers.iter().enumerate() {
            let batch = worker
                .replies
                .recv()
                .expect("fleet shard died mid-wave (panicked worker?)");
            debug_assert_eq!(batch.shard, ShardId(idx as u16));
            debug_assert_eq!(batch.wave, wave);
            metrics.merge(&batch.metrics);
            outcomes.extend(batch.outcomes);
        }
        outcomes.sort_unstable_by_key(|o| o.vehicle);
        (outcomes, metrics)
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for worker in &self.workers {
            // A worker that already exited (send fails) is fine to join.
            let _ = worker.cmds.send(ShardCmd::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Worker loop: simulate this shard's round-robin slice of each wave.
fn shard_main(
    spec: &CampaignSpec,
    shard: ShardId,
    shards: usize,
    cmds: &Receiver<ShardCmd>,
    replies: &Sender<WaveBatch>,
) {
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            ShardCmd::Shutdown => return,
            ShardCmd::Wave {
                wave,
                lo,
                hi,
                start,
            } => {
                let mut outcomes = Vec::new();
                let mut metrics = ShardMetrics::default();
                for v in lo..hi {
                    if v as usize % shards != usize::from(shard.raw()) {
                        continue;
                    }
                    let outcome = simulate_vehicle(spec, VehicleId(v), start);
                    metrics.observe(&outcome);
                    outcomes.push(outcome);
                }
                if replies
                    .send(WaveBatch {
                        shard,
                        wave,
                        outcomes,
                        metrics,
                    })
                    .is_err()
                {
                    // Master dropped the pool mid-wave; nothing to report to.
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_faults::FaultPlan;

    fn spec(seed: u64) -> Arc<CampaignSpec> {
        Arc::new(CampaignSpec::standard(
            seed,
            4_000,
            FaultPlan::quiet(seed).with_message_faults(0.05, 0.1, 0.0),
        ))
    }

    #[test]
    fn merged_wave_is_invariant_to_shard_count() {
        let spec = spec(0x5AA5);
        let mut one = ShardPool::spawn(Arc::clone(&spec), 1);
        let mut four = ShardPool::spawn(Arc::clone(&spec), 4);
        let (o1, m1) = one.run_wave(0, 0, 4_000, SimTime::ZERO);
        let (o4, m4) = four.run_wave(0, 0, 4_000, SimTime::ZERO);
        assert_eq!(o1, o4);
        assert_eq!(m1, m4);
    }

    #[test]
    fn merged_metrics_equal_per_vehicle_fold() {
        let spec = spec(0xBEEF);
        let mut pool = ShardPool::spawn(Arc::clone(&spec), 3);
        let (outcomes, metrics) = pool.run_wave(0, 0, 2_500, SimTime::ZERO);
        let mut direct = ShardMetrics::default();
        for o in &outcomes {
            direct.observe(o);
        }
        assert_eq!(metrics, direct);
        assert!(metrics.conserves());
        assert_eq!(metrics.simulated, 2_500);
    }

    #[test]
    fn outcomes_are_sorted_and_complete() {
        let spec = spec(0xC0DE);
        let mut pool = ShardPool::spawn(Arc::clone(&spec), 5);
        let (outcomes, _) = pool.run_wave(2, 100, 900, SimTime::from_secs(30));
        assert_eq!(outcomes.len(), 800);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.vehicle, VehicleId(100 + i as u32));
            assert!(o.started >= SimTime::from_secs(30));
        }
    }

    #[test]
    fn pool_survives_many_waves() {
        let spec = spec(0xF00D);
        let mut pool = ShardPool::spawn(Arc::clone(&spec), 2);
        let mut total = ShardMetrics::default();
        for wave in 0..4u32 {
            let lo = wave * 1_000;
            let (_, m) = pool.run_wave(wave, lo, lo + 1_000, SimTime::ZERO);
            total.merge(&m);
        }
        assert_eq!(total.simulated, 4_000);
        assert!(total.conserves());
    }
}
