//! The update-master backend: staged OTA campaigns over a sharded fleet.
//!
//! The paper's §3.2/§4.1 update master is a backend service that pushes a
//! new software version *across a fleet*, not onto one vehicle. This
//! module runs that campaign as the paper sketches it:
//!
//! 1. **Rollout waves** — the fleet is split into staged waves (canary →
//!    early → broad → rest). A wave's vehicles are admission-checked per
//!    hardware variant, offered the image spread over a window, and
//!    simulated to their terminal state on the shard pool;
//! 2. **Verification gating** — per-vehicle verification verdicts are
//!    folded into `(good, bad)` batches in completion order and fed to a
//!    [`SloBurnGate`] from `monitor::slo`: the failure boundary becomes
//!    an error budget, each batch's burn rate is judged by a
//!    `BoundaryEstimator` against burn 1.0, and the flight recorder is
//!    armed the moment the fast-window burn crosses the budget — so a
//!    trip ships with the causal window that led to it. Because every
//!    estimator parameter scales with its boundary, the trip timing is
//!    identical to the previous raw failure-rate gate — adaptation on a
//!    distribution, not on a point, exactly as in E14;
//! 3. **Rollback policy** — a tripped gate rolls back every updated
//!    vehicle of the wave (the rollback storm) and halts the campaign;
//!    individually failed vehicles roll back on their own either way.
//!
//! Everything runs on the simulated clock and is a deterministic function
//! of the campaign seed: reports serialize byte-identically across reruns
//! and across shard counts.

use crate::shard::{ShardMetrics, ShardPool};
use crate::variant::{standard_mix, HwVariant, ImageSpec};
use crate::vehicle::{VehicleOutcome, VehicleVerdict};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_faults::FaultPlan;
use dynplat_monitor::slo::SloBurnGate;
use dynplat_obs::slo::SloSpec;
use dynplat_obs::{FlightRecorder, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::Arc;

/// How a wave's verification verdicts gate its promotion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaveGate {
    /// Verification failure rate the campaign must stay below.
    pub failure_boundary: f64,
    /// Vehicles per failure-rate sample (batched in completion order).
    pub batch: usize,
    /// Confidence at which the estimator's boundary-exceedance belief
    /// fails the wave.
    pub trip_confidence: f64,
}

impl Default for WaveGate {
    fn default() -> Self {
        WaveGate {
            failure_boundary: 0.05,
            batch: 32,
            trip_confidence: 0.95,
        }
    }
}

impl WaveGate {
    /// The gate as a declarative SLO: the failure boundary is the error
    /// budget of the `fleet.wave.verify` objective, tripping at the
    /// gate's confidence.
    pub fn slo_spec(&self) -> SloSpec {
        let mut spec = SloSpec::error_fraction("fleet.wave.verify", self.failure_boundary);
        spec.trip_confidence = self.trip_confidence;
        spec
    }
}

/// The complete, seed-driven description of one fleet campaign.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign master seed; every per-vehicle stream derives from it.
    pub seed: u64,
    /// Fleet size.
    pub vehicles: u32,
    /// Region buses the fleet downloads over (partition targets).
    pub regions: u16,
    /// Probability a vehicle is unreachable when its wave opens.
    pub offline_rate: f64,
    /// Hardware variant mix.
    pub mix: Vec<HwVariant>,
    /// The image being rolled out.
    pub image: ImageSpec,
    /// Wave sizes as fleet fractions (normalized over their sum; waves
    /// cover the fleet in vehicle-id order).
    pub waves: Vec<f64>,
    /// Window over which one wave's offers are spread.
    pub wave_spread: SimDuration,
    /// Pause between a promoted wave and the next wave's first offer.
    pub soak: SimDuration,
    /// Promotion gate.
    pub gate: WaveGate,
    /// Fault injection plan (drop/corrupt/delay rates, region partitions).
    pub plan: FaultPlan,
}

impl CampaignSpec {
    /// The standard staged campaign over `vehicles` vehicles: the
    /// [`standard_mix`] fleet in 8 regions, a 1% canary, 5% early, 25%
    /// broad and 69% rest wave, offers spread over 60 s per wave.
    pub fn standard(seed: u64, vehicles: u32, plan: FaultPlan) -> Self {
        CampaignSpec {
            seed,
            vehicles,
            regions: 8,
            offline_rate: 0.02,
            mix: standard_mix(),
            image: ImageSpec::standard(),
            waves: vec![0.01, 0.05, 0.25, 0.69],
            wave_spread: SimDuration::from_secs(60),
            soak: SimDuration::from_secs(5),
            gate: WaveGate::default(),
            plan,
        }
    }

    /// Wave boundaries as `[lo, hi)` vehicle-id ranges covering the whole
    /// fleet in order. Fractions are normalized over their sum; the last
    /// wave absorbs rounding.
    ///
    /// # Panics
    ///
    /// Panics if `waves` is empty or sums to zero.
    pub fn wave_bounds(&self) -> Vec<(u32, u32)> {
        let total: f64 = self.waves.iter().sum();
        assert!(
            !self.waves.is_empty() && total > 0.0,
            "campaign needs at least one wave with positive size"
        );
        let mut bounds = Vec::with_capacity(self.waves.len());
        let mut lo = 0u32;
        let mut acc = 0.0;
        for (i, w) in self.waves.iter().enumerate() {
            acc += w / total;
            let hi = if i + 1 == self.waves.len() {
                self.vehicles
            } else {
                ((f64::from(self.vehicles) * acc).round() as u32).clamp(lo, self.vehicles)
            };
            bounds.push((lo, hi));
            lo = hi;
        }
        bounds
    }
}

/// What one rollout wave did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaveReport {
    /// Wave index (0 = canary).
    pub index: u32,
    /// Vehicle-id range `[lo, hi)`.
    pub lo: u32,
    /// Exclusive upper bound of the range.
    pub hi: u32,
    /// Vehicles that passed admission and ran the pipeline.
    pub admitted: u64,
    /// Vehicles rejected at admission (flash too small for A/B).
    pub rejected_flash: u64,
    /// Vehicles unreachable at wave open.
    pub offline: u64,
    /// Vehicles that verified the new version.
    pub updated: u64,
    /// Vehicles whose verification failed (individual rollbacks).
    pub verify_failed: u64,
    /// Observed verification failure rate of the wave.
    pub failure_rate: f64,
    /// Peak converged boundary-exceedance belief the estimator reached
    /// while the wave's verification stream came in (0 if it never
    /// converged — e.g. a canary too small for the gate's batch size).
    pub exceed: f64,
    /// Peak fast-window burn rate (bad fraction over budget) the SLO gate
    /// saw during the wave.
    pub fast_burn_peak: f64,
    /// Peak slow-window burn rate during the wave.
    pub slow_burn_peak: f64,
    /// `true` if the gate promoted the wave; `false` fails the campaign.
    pub promoted: bool,
    /// Updated vehicles rolled back because the wave gate tripped.
    pub rolled_back: u64,
    /// First offer instant of the wave.
    pub started: SimTime,
    /// Last vehicle terminal instant of the wave.
    pub completed: SimTime,
}

/// The merged, deterministic result of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Fleet size.
    pub vehicles: u32,
    /// Per-wave summaries, in rollout order (absent waves were never
    /// opened because an earlier gate halted the campaign).
    pub waves: Vec<WaveReport>,
    /// Cross-shard merged pipeline counters.
    pub totals: ShardMetrics,
    /// Every simulated vehicle's outcome, sorted by vehicle id (wave-gate
    /// rollbacks already applied).
    pub outcomes: Vec<VehicleOutcome>,
    /// Vehicles never offered the image because the campaign halted.
    pub skipped: u64,
    /// `true` if a wave gate tripped and halted the campaign.
    pub halted: bool,
    /// Last terminal instant of the campaign.
    pub completed_at: SimTime,
}

impl CampaignReport {
    /// Vehicles rolled back by wave gates (the storm total).
    pub fn storm_total(&self) -> u64 {
        self.waves.iter().map(|w| w.rolled_back).sum()
    }

    /// Largest single-wave rollback (the storm peak).
    pub fn storm_peak(&self) -> u64 {
        self.waves.iter().map(|w| w.rolled_back).max().unwrap_or(0)
    }

    /// Offer-to-verified durations (ms, sorted ascending) of every vehicle
    /// that completed the full update pipeline successfully — the
    /// campaign's completion-time distribution. Wave-rolled-back vehicles
    /// completed the pipeline too (the gate, not the vehicle, reversed
    /// them), so they stay in the distribution.
    pub fn completion_ms_sorted(&self) -> Vec<u64> {
        let mut ms: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.verdict,
                    VehicleVerdict::Updated | VehicleVerdict::WaveRolledBack
                )
            })
            .map(|o| o.duration().as_millis())
            .collect();
        ms.sort_unstable();
        ms
    }

    /// Vehicles whose completion took more than `factor` × the median —
    /// the straggler tail a partitioned region produces.
    pub fn straggler_count(&self, factor: f64) -> u64 {
        let ms = self.completion_ms_sorted();
        if ms.is_empty() {
            return 0;
        }
        let median = ms[ms.len() / 2] as f64;
        ms.iter().filter(|&&d| d as f64 > median * factor).count() as u64
    }

    /// Admission throughput on the simulated clock: vehicles admitted per
    /// simulated second over the whole campaign.
    pub fn admitted_per_sim_sec(&self) -> f64 {
        let secs = self.completed_at.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.totals.admitted as f64 / secs
        }
    }

    /// One line per wave: failure rate, burn peaks, exceedance belief and
    /// the gate decision — the operator-facing SLO picture of the
    /// campaign.
    pub fn slo_summary(&self) -> String {
        let mut out = String::new();
        for w in &self.waves {
            let _ = writeln!(
                out,
                "wave {}: vehicles {:>6} fail {:.4} fast-burn {:>6.2}x slow-burn {:>6.2}x \
                 exceed {:.3} -> {}",
                w.index,
                w.hi - w.lo,
                w.failure_rate,
                w.fast_burn_peak,
                w.slow_burn_peak,
                w.exceed,
                if w.promoted {
                    "promoted"
                } else {
                    "ROLLED BACK"
                }
            );
        }
        out
    }

    /// Publishes the merged campaign into a metrics registry under
    /// `fleet.*` — counters for every pipeline verdict, the wave ledger,
    /// the completion-time distribution as a histogram (bulk-merged with
    /// `record_n`, one call per distinct millisecond value), and the
    /// per-stage latency sketches.
    pub fn publish(&self, registry: &MetricsRegistry) {
        let t = &self.totals;
        registry
            .counter("fleet.vehicles.simulated")
            .add(t.simulated);
        registry.counter("fleet.vehicles.admitted").add(t.admitted);
        registry
            .counter("fleet.vehicles.rejected_flash")
            .add(t.rejected_flash);
        registry.counter("fleet.vehicles.offline").add(t.offline);
        registry.counter("fleet.vehicles.updated").add(t.updated);
        registry
            .counter("fleet.vehicles.verify_failed")
            .add(t.verify_failed);
        registry
            .counter("fleet.vehicles.wave_rolled_back")
            .add(self.storm_total());
        registry.counter("fleet.vehicles.skipped").add(self.skipped);
        let promoted = self.waves.iter().filter(|w| w.promoted).count() as u64;
        registry.counter("fleet.waves.promoted").add(promoted);
        registry
            .counter("fleet.waves.rolled_back")
            .add(self.waves.len() as u64 - promoted);
        registry
            .gauge("fleet.campaign.sim_duration_ms")
            .set(self.completed_at.as_millis() as i64);
        registry
            .gauge("fleet.campaign.admitted_per_sim_sec_milli")
            .set((self.admitted_per_sim_sec() * 1e3) as i64);
        let hist = registry.histogram("fleet.vehicle.completion_ms");
        let sorted = self.completion_ms_sorted();
        let mut i = 0usize;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            hist.record_n(sorted[i], (j - i) as u64);
            i = j;
        }
        registry
            .sketch("fleet.stage.download_ms")
            .merge(&self.totals.download_ms);
        registry
            .sketch("fleet.stage.finalize_ms")
            .merge(&self.totals.finalize_ms);
        registry
            .sketch("fleet.stage.stall_ms")
            .merge(&self.totals.stall_ms);
        registry
            .sketch("fleet.stage.e2e_ms")
            .merge(&self.totals.e2e_ms);
    }
}

/// The staged-campaign driver: owns the shard pool and walks the waves.
pub struct UpdateMaster {
    spec: Arc<CampaignSpec>,
    pool: ShardPool,
    gate: SloBurnGate,
}

impl UpdateMaster {
    /// Creates a master over `shards` sim kernels.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the fault plan is invalid.
    pub fn new(spec: CampaignSpec, shards: usize) -> Self {
        spec.plan
            .validate()
            .expect("campaign fault plan is invalid");
        let gate = SloBurnGate::new(spec.gate.slo_spec());
        let spec = Arc::new(spec);
        UpdateMaster {
            pool: ShardPool::spawn(Arc::clone(&spec), shards),
            gate,
            spec,
        }
    }

    /// Attaches a flight recorder to the wave gate: the fast-window burn
    /// arms it, and every gate trip freezes a `dynplat.flight.v1` dump.
    pub fn attach_flight_recorder(&mut self, flight: Arc<FlightRecorder>) {
        self.gate.attach_flight_recorder(flight);
    }

    /// Runs the campaign to completion (or to its halting wave) and
    /// returns the merged report.
    pub fn run(mut self) -> CampaignReport {
        let spec = Arc::clone(&self.spec);
        let mut now = SimTime::ZERO;
        let mut waves = Vec::new();
        let mut outcomes: Vec<VehicleOutcome> = Vec::with_capacity(spec.vehicles as usize);
        let mut totals = ShardMetrics::default();
        let mut halted = false;
        let mut skipped = 0u64;
        let mut completed_at = SimTime::ZERO;

        for (index, (lo, hi)) in spec.wave_bounds().into_iter().enumerate() {
            if halted {
                skipped += u64::from(hi - lo);
                continue;
            }
            let (mut wave_outcomes, metrics) = self.pool.run_wave(index as u32, lo, hi, now);
            totals.merge(&metrics);

            // Failure-rate series: admitted vehicles in completion order,
            // batched; the estimator judges the wave on the distribution.
            let mut finished: Vec<(SimTime, bool)> = wave_outcomes
                .iter()
                .filter(|o| o.admitted())
                .map(|o| (o.completed, o.verdict == VehicleVerdict::VerifyFailed))
                .collect();
            finished.sort_unstable_by_key(|&(at, failed)| (at, failed));
            self.gate.reset();
            // The gate is edge-triggered: a live master watches the
            // failure stream and halts the moment the estimator is
            // confident, so the wave fails if ANY point of the stream
            // tripped. (Verify failures complete faster than successes —
            // they skip install+verify — so they cluster early; judging
            // only the end of the stream would let the estimator "recover"
            // on the trailing successes and wave a broken image through.)
            let mut tripped = false;
            let mut exceed_peak = 0.0f64;
            let mut fast_burn_peak = 0.0f64;
            let mut slow_burn_peak = 0.0f64;
            for batch in finished.chunks(spec.gate.batch.max(1)) {
                let failures = batch.iter().filter(|&&(_, failed)| failed).count() as u64;
                let at = batch.last().expect("chunks are non-empty").0;
                let verdict = self
                    .gate
                    .observe(at, batch.len() as u64 - failures, failures);
                if verdict.estimate.converged {
                    exceed_peak = exceed_peak.max(verdict.estimate.exceed);
                }
                fast_burn_peak = fast_burn_peak.max(verdict.burn.fast_burn);
                slow_burn_peak = slow_burn_peak.max(verdict.burn.slow_burn);
                tripped |= verdict.tripped;
            }

            let wave_end = wave_outcomes
                .iter()
                .map(|o| o.completed)
                .max()
                .unwrap_or(now);
            let mut rolled_back = 0u64;
            if tripped {
                for o in &mut wave_outcomes {
                    if o.verdict == VehicleVerdict::Updated {
                        o.verdict = VehicleVerdict::WaveRolledBack;
                        rolled_back += 1;
                    }
                }
                halted = true;
            }
            let failure_rate = if metrics.admitted == 0 {
                0.0
            } else {
                metrics.verify_failed as f64 / metrics.admitted as f64
            };
            waves.push(WaveReport {
                index: index as u32,
                lo,
                hi,
                admitted: metrics.admitted,
                rejected_flash: metrics.rejected_flash,
                offline: metrics.offline,
                updated: metrics.updated,
                verify_failed: metrics.verify_failed,
                failure_rate,
                exceed: exceed_peak,
                fast_burn_peak,
                slow_burn_peak,
                promoted: !tripped,
                rolled_back,
                started: now,
                completed: wave_end,
            });
            outcomes.extend(wave_outcomes);
            completed_at = completed_at.max(wave_end);
            now = wave_end.max(now) + spec.soak;
        }

        outcomes.sort_unstable_by_key(|o| o.vehicle);
        CampaignReport {
            seed: spec.seed,
            vehicles: spec.vehicles,
            waves,
            totals,
            outcomes,
            skipped,
            halted,
            completed_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::BusId;

    const SEED: u64 = 0xE15_5EED;

    fn run(vehicles: u32, shards: usize, plan: FaultPlan) -> CampaignReport {
        UpdateMaster::new(CampaignSpec::standard(SEED, vehicles, plan), shards).run()
    }

    #[test]
    fn wave_bounds_tile_the_fleet() {
        let spec = CampaignSpec::standard(SEED, 10_000, FaultPlan::quiet(SEED));
        let bounds = spec.wave_bounds();
        assert_eq!(bounds.len(), 4);
        assert_eq!(bounds[0].0, 0);
        assert_eq!(bounds.last().expect("non-empty").1, 10_000);
        for w in bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0, "waves must abut");
        }
        assert_eq!(bounds[0].1 - bounds[0].0, 100, "1% canary of 10k");
    }

    #[test]
    fn quiet_campaign_promotes_every_wave() {
        let report = run(6_000, 2, FaultPlan::quiet(SEED));
        assert!(!report.halted);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.waves.len(), 4);
        assert!(report.waves.iter().all(|w| w.promoted));
        assert_eq!(report.storm_total(), 0);
        assert_eq!(report.outcomes.len(), 6_000);
        assert!(report.totals.conserves());
        // The legacy variant (2/12 of the mix) is rejected at admission.
        let rejected = report.totals.rejected_flash as f64 / report.totals.simulated as f64;
        assert!(
            (rejected - 2.0 / 12.0).abs() < 0.03,
            "rejection share {rejected} far from the legacy share"
        );
        assert!(report.admitted_per_sim_sec() > 0.0);
    }

    #[test]
    fn broken_image_trips_a_gate_and_storms() {
        // 35% corruption → ~12% double-corruption verify failures, far
        // over the 5% boundary: some wave must fail with confidence, roll
        // its updated vehicles back and halt the campaign.
        let report = run(
            6_000,
            2,
            FaultPlan::quiet(SEED).with_message_faults(0.0, 0.35, 0.0),
        );
        assert!(report.halted);
        assert!(report.skipped > 0, "halt must strand the remaining waves");
        let failed_wave = report
            .waves
            .iter()
            .find(|w| !w.promoted)
            .expect("a wave must trip");
        assert!(failed_wave.exceed >= 0.95);
        assert!(
            failed_wave.fast_burn_peak > 1.0,
            "a tripping wave must burn past its budget: {failed_wave:?}"
        );
        assert!(failed_wave.rolled_back > 0);
        assert_eq!(report.storm_peak(), failed_wave.rolled_back);
        assert!(
            report
                .outcomes
                .iter()
                .any(|o| o.verdict == VehicleVerdict::WaveRolledBack),
            "storm verdicts must land in the merged outcomes"
        );
        // Waves after the tripped one were never opened.
        assert_eq!(
            report.waves.last().expect("non-empty").index,
            failed_wave.index
        );
    }

    #[test]
    fn partitions_produce_a_straggler_tail() {
        let plan = FaultPlan::quiet(SEED)
            .partition(BusId(0), SimTime::from_secs(30), SimTime::from_secs(500))
            .partition(BusId(1), SimTime::from_secs(30), SimTime::from_secs(500));
        let quiet = run(4_000, 2, FaultPlan::quiet(SEED));
        let faulted = run(4_000, 2, plan);
        assert!(!faulted.halted, "stragglers are slow, not broken");
        assert!(
            faulted.straggler_count(4.0) > quiet.straggler_count(4.0),
            "partitioned regions must stretch the tail"
        );
        let q_max = *quiet.completion_ms_sorted().last().expect("non-empty");
        let f_max = *faulted.completion_ms_sorted().last().expect("non-empty");
        assert!(f_max > q_max);
    }

    #[test]
    fn report_conserves_vehicles_across_waves_and_halt() {
        let report = run(
            5_000,
            3,
            FaultPlan::quiet(SEED).with_message_faults(0.0, 0.35, 0.0),
        );
        assert_eq!(
            report.outcomes.len() as u64 + report.skipped,
            u64::from(report.vehicles)
        );
        assert_eq!(report.totals.simulated, report.outcomes.len() as u64);
        let wave_admitted: u64 = report.waves.iter().map(|w| w.admitted).sum();
        assert_eq!(wave_admitted, report.totals.admitted);
    }

    #[test]
    fn publish_exports_conserving_counters() {
        let report = run(3_000, 2, FaultPlan::quiet(SEED));
        let registry = MetricsRegistry::new();
        report.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["fleet.vehicles.simulated"], 3_000);
        assert_eq!(
            snap.counters["fleet.vehicles.admitted"]
                + snap.counters["fleet.vehicles.rejected_flash"]
                + snap.counters["fleet.vehicles.offline"],
            snap.counters["fleet.vehicles.simulated"]
        );
        assert_eq!(
            snap.histograms["fleet.vehicle.completion_ms"].count,
            snap.counters["fleet.vehicles.updated"]
        );
        assert_eq!(snap.counters["fleet.waves.promoted"], 4);
        for stage in [
            "fleet.stage.download_ms",
            "fleet.stage.finalize_ms",
            "fleet.stage.stall_ms",
            "fleet.stage.e2e_ms",
        ] {
            assert_eq!(
                snap.sketches[stage].count, snap.counters["fleet.vehicles.admitted"],
                "{stage} must hold one sample per admitted vehicle"
            );
        }
        assert!(!report.slo_summary().is_empty());
    }

    #[test]
    fn gate_trip_pairs_with_a_flight_dump() {
        let mut master = UpdateMaster::new(
            CampaignSpec::standard(
                SEED,
                6_000,
                FaultPlan::quiet(SEED).with_message_faults(0.0, 0.35, 0.0),
            ),
            2,
        );
        let flight = Arc::new(dynplat_obs::FlightRecorder::new(256));
        master.attach_flight_recorder(Arc::clone(&flight));
        let report = master.run();
        assert!(report.halted);
        let dumps = flight.dumps();
        assert!(!dumps.is_empty(), "a halting campaign must capture");
        for d in &dumps {
            assert!(d.reason.contains("fleet.wave.verify"));
        }
        assert!(
            dumps[0]
                .events
                .iter()
                .any(|e| e.stage == "obs.slo.burn" && e.detail.contains("fleet.wave.verify")),
            "the arming crossing must be on tape before the trip"
        );
    }
}
