//! Property test: the Prometheus and JSON snapshot codecs agree.
//!
//! For randomized registries, every value that both encodings carry —
//! counter totals, gauge levels, histogram bucket counts, sums and counts
//! — must parse back identical from the Prometheus text and the JSON
//! document. The JSON side is held to the stronger bar (lossless
//! round-trip); the Prometheus side is decoded by reversing its
//! cumulative-bucket encoding.

use std::collections::BTreeMap;

use dynplat_common::rng::{seeded_rng, split_seed, Rng};
use dynplat_obs::{MetricsRegistry, MetricsSnapshot};

/// Registry names are `&'static str`, so randomized registries draw from
/// static pools. Prefixes keep the sanitized Prometheus names (and the
/// counter `_total` suffix) collision-free across metric types.
const COUNTER_NAMES: [&str; 6] = [
    "ctr.alpha",
    "ctr.beta",
    "ctr.gamma:sub",
    "ctr.delta-dash",
    "ctr.epsilon",
    "ctr.zeta.deep.path",
];
const GAUGE_NAMES: [&str; 5] = [
    "gga.alpha",
    "gga.beta",
    "gga.gamma",
    "gga.delta space",
    "gga.epsilon",
];
const HISTOGRAM_NAMES: [&str; 4] = ["hst.alpha", "hst.beta", "hst.gamma", "hst.delta"];

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn random_registry(seed: u64) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    let mut rng = seeded_rng(seed);
    for name in COUNTER_NAMES {
        if rng.gen_bool(0.7) {
            registry.counter(name).add(rng.gen_range(0..1_000_000u64));
        }
    }
    for name in GAUGE_NAMES {
        if rng.gen_bool(0.7) {
            registry
                .gauge(name)
                .set(rng.gen_range(-1_000_000..1_000_000i64));
        }
    }
    for name in HISTOGRAM_NAMES {
        if !rng.gen_bool(0.8) {
            continue;
        }
        let h = registry.histogram(name);
        for _ in 0..rng.gen_range(0..200u32) {
            // Spread over every magnitude, including the overflow bucket.
            let magnitude = rng.gen_range(0..20u32);
            let value = if magnitude == 19 {
                u64::MAX - rng.gen_range(0..1_000u64)
            } else {
                rng.gen_range(0..10u64.pow(magnitude.min(18)).max(1))
            };
            h.record(value);
        }
    }
    registry
}

/// Parses Prometheus text exposition into `metric line key -> value`,
/// e.g. `ctr_alpha_total -> 42`, `hst_beta_bucket{le="10"} -> 3`.
fn parse_prometheus(text: &str) -> BTreeMap<String, i128> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("metric line has a value");
        let parsed: i128 = value.parse().expect("numeric sample value");
        assert!(
            out.insert(key.to_owned(), parsed).is_none(),
            "duplicate exposition key {key}"
        );
    }
    out
}

/// Asserts every shared value matches between `snap` and its Prometheus
/// exposition.
fn assert_prometheus_agrees(snap: &MetricsSnapshot, prom: &BTreeMap<String, i128>) {
    for (name, value) in &snap.counters {
        let key = format!("{}_total", sanitize(name));
        assert_eq!(prom.get(&key), Some(&i128::from(*value)), "counter {name}");
    }
    for (name, value) in &snap.gauges {
        let key = sanitize(name);
        assert_eq!(prom.get(&key), Some(&i128::from(*value)), "gauge {name}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        assert_eq!(
            prom.get(&format!("{n}_sum")),
            Some(&i128::from(h.sum)),
            "histogram {name} sum"
        );
        assert_eq!(
            prom.get(&format!("{n}_count")),
            Some(&i128::from(h.count)),
            "histogram {name} count"
        );
        assert_eq!(
            prom.get(&format!("{n}_bucket{{le=\"+Inf\"}}")),
            Some(&i128::from(h.count)),
            "histogram {name} +Inf"
        );
        // Reverse the cumulative encoding bucket by bucket. The overflow
        // bucket (bound u64::MAX) is folded into +Inf by the encoder, so
        // its count must equal what +Inf adds beyond the last finite row.
        let mut acc: u64 = 0;
        let mut finite_total: u64 = 0;
        for (bound, count) in &h.buckets {
            if *bound == u64::MAX {
                assert_eq!(
                    h.count - finite_total,
                    *count,
                    "histogram {name} overflow bucket"
                );
                continue;
            }
            acc += count;
            finite_total += count;
            assert_eq!(
                prom.get(&format!("{n}_bucket{{le=\"{bound}\"}}")),
                Some(&i128::from(acc)),
                "histogram {name} bucket le={bound}"
            );
        }
    }
}

#[test]
fn prometheus_and_json_codecs_agree_on_random_registries() {
    let root = 0xC0DEC_A62EEu64;
    for case in 0..64u64 {
        let registry = random_registry(split_seed(root, case));
        let snap = registry.snapshot();

        // JSON must round-trip losslessly…
        let decoded = MetricsSnapshot::from_json(&snap.to_json())
            .unwrap_or_else(|e| panic!("case {case}: json round-trip failed: {e}"));
        assert_eq!(decoded, snap, "case {case}: json decode diverged");

        // …and the Prometheus exposition must agree with it value for
        // value, on both the original and the round-tripped snapshot.
        let prom = parse_prometheus(&snap.to_prometheus());
        assert_prometheus_agrees(&snap, &prom);
        assert_prometheus_agrees(&decoded, &prom);
        assert_eq!(decoded.to_prometheus(), snap.to_prometheus());
    }
}

#[test]
fn codecs_agree_on_the_empty_registry() {
    let snap = MetricsRegistry::new().snapshot();
    assert!(snap.to_prometheus().is_empty());
    let decoded = MetricsSnapshot::from_json(&snap.to_json()).expect("round-trip");
    assert_eq!(decoded, snap);
}
