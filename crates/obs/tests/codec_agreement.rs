//! Property test: the Prometheus and JSON snapshot codecs agree.
//!
//! For randomized registries, every value that both encodings carry —
//! counter totals, gauge levels, histogram bucket counts, quantile-sketch
//! summaries, sums and counts — must parse back identical from the
//! Prometheus text and the JSON document. The JSON side is held to the
//! stronger bar (lossless round-trip); the Prometheus side is decoded by
//! reversing its cumulative-bucket encoding (histograms) and reading the
//! summary rows (sketches). Time-series rings sampled from the same
//! registries must round-trip their `dynplat.telemetry.v1` encoding
//! losslessly too, point for point.

use std::collections::BTreeMap;

use dynplat_common::rng::{seeded_rng, split_seed, Rng};
use dynplat_obs::{MetricsRegistry, MetricsSnapshot, TelemetryRing};

/// Registry names are `&'static str`, so randomized registries draw from
/// static pools. Prefixes keep the sanitized Prometheus names (and the
/// counter `_total` suffix) collision-free across metric types.
const COUNTER_NAMES: [&str; 6] = [
    "ctr.alpha",
    "ctr.beta",
    "ctr.gamma:sub",
    "ctr.delta-dash",
    "ctr.epsilon",
    "ctr.zeta.deep.path",
];
const GAUGE_NAMES: [&str; 5] = [
    "gga.alpha",
    "gga.beta",
    "gga.gamma",
    "gga.delta space",
    "gga.epsilon",
];
const HISTOGRAM_NAMES: [&str; 4] = ["hst.alpha", "hst.beta", "hst.gamma", "hst.delta"];
const SKETCH_NAMES: [&str; 4] = ["skt.alpha", "skt.beta", "skt.gamma:sub", "skt.delta-dash"];

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn random_registry(seed: u64) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    let mut rng = seeded_rng(seed);
    for name in COUNTER_NAMES {
        if rng.gen_bool(0.7) {
            registry.counter(name).add(rng.gen_range(0..1_000_000u64));
        }
    }
    for name in GAUGE_NAMES {
        if rng.gen_bool(0.7) {
            registry
                .gauge(name)
                .set(rng.gen_range(-1_000_000..1_000_000i64));
        }
    }
    for name in HISTOGRAM_NAMES {
        if !rng.gen_bool(0.8) {
            continue;
        }
        let h = registry.histogram(name);
        for _ in 0..rng.gen_range(0..200u32) {
            // Spread over every magnitude, including the overflow bucket.
            let magnitude = rng.gen_range(0..20u32);
            let value = if magnitude == 19 {
                u64::MAX - rng.gen_range(0..1_000u64)
            } else {
                rng.gen_range(0..10u64.pow(magnitude.min(18)).max(1))
            };
            h.record(value);
        }
    }
    for name in SKETCH_NAMES {
        if !rng.gen_bool(0.8) {
            continue;
        }
        let s = registry.sketch(name);
        for _ in 0..rng.gen_range(0..200u32) {
            let magnitude = rng.gen_range(0..20u32);
            let value = if magnitude == 19 {
                u64::MAX - rng.gen_range(0..1_000u64)
            } else {
                rng.gen_range(0..10u64.pow(magnitude.min(18)).max(1))
            };
            s.record(value);
        }
    }
    registry
}

/// Parses Prometheus text exposition into `metric line key -> value`,
/// e.g. `ctr_alpha_total -> 42`, `hst_beta_bucket{le="10"} -> 3`.
fn parse_prometheus(text: &str) -> BTreeMap<String, i128> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("metric line has a value");
        let parsed: i128 = value.parse().expect("numeric sample value");
        assert!(
            out.insert(key.to_owned(), parsed).is_none(),
            "duplicate exposition key {key}"
        );
    }
    out
}

/// Asserts every shared value matches between `snap` and its Prometheus
/// exposition.
fn assert_prometheus_agrees(snap: &MetricsSnapshot, prom: &BTreeMap<String, i128>) {
    for (name, value) in &snap.counters {
        let key = format!("{}_total", sanitize(name));
        assert_eq!(prom.get(&key), Some(&i128::from(*value)), "counter {name}");
    }
    for (name, value) in &snap.gauges {
        let key = sanitize(name);
        assert_eq!(prom.get(&key), Some(&i128::from(*value)), "gauge {name}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        assert_eq!(
            prom.get(&format!("{n}_sum")),
            Some(&i128::from(h.sum)),
            "histogram {name} sum"
        );
        assert_eq!(
            prom.get(&format!("{n}_count")),
            Some(&i128::from(h.count)),
            "histogram {name} count"
        );
        assert_eq!(
            prom.get(&format!("{n}_bucket{{le=\"+Inf\"}}")),
            Some(&i128::from(h.count)),
            "histogram {name} +Inf"
        );
        // Reverse the cumulative encoding bucket by bucket. The overflow
        // bucket (bound u64::MAX) is folded into +Inf by the encoder, so
        // its count must equal what +Inf adds beyond the last finite row.
        let mut acc: u64 = 0;
        let mut finite_total: u64 = 0;
        for (bound, count) in &h.buckets {
            if *bound == u64::MAX {
                assert_eq!(
                    h.count - finite_total,
                    *count,
                    "histogram {name} overflow bucket"
                );
                continue;
            }
            acc += count;
            finite_total += count;
            assert_eq!(
                prom.get(&format!("{n}_bucket{{le=\"{bound}\"}}")),
                Some(&i128::from(acc)),
                "histogram {name} bucket le={bound}"
            );
        }
    }
    // Sketches expose as summaries: the three pre-computed quantiles plus
    // sum and count must match the snapshot field for field.
    for (name, s) in &snap.sketches {
        let n = sanitize(name);
        for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
            assert_eq!(
                prom.get(&format!("{n}{{quantile=\"{q}\"}}")),
                Some(&i128::from(v)),
                "sketch {name} quantile {q}"
            );
        }
        assert_eq!(
            prom.get(&format!("{n}_sum")),
            Some(&i128::from(s.sum)),
            "sketch {name} sum"
        );
        assert_eq!(
            prom.get(&format!("{n}_count")),
            Some(&i128::from(s.count)),
            "sketch {name} count"
        );
    }
}

#[test]
fn prometheus_and_json_codecs_agree_on_random_registries() {
    let root = 0xC0DEC_A62EEu64;
    for case in 0..64u64 {
        let registry = random_registry(split_seed(root, case));
        let snap = registry.snapshot();

        // JSON must round-trip losslessly…
        let decoded = MetricsSnapshot::from_json(&snap.to_json())
            .unwrap_or_else(|e| panic!("case {case}: json round-trip failed: {e}"));
        assert_eq!(decoded, snap, "case {case}: json decode diverged");

        // …and the Prometheus exposition must agree with it value for
        // value, on both the original and the round-tripped snapshot.
        let prom = parse_prometheus(&snap.to_prometheus());
        assert_prometheus_agrees(&snap, &prom);
        assert_prometheus_agrees(&decoded, &prom);
        assert_eq!(decoded.to_prometheus(), snap.to_prometheus());
    }
}

#[test]
fn codecs_agree_on_the_empty_registry() {
    let snap = MetricsRegistry::new().snapshot();
    assert!(snap.to_prometheus().is_empty());
    let decoded = MetricsSnapshot::from_json(&snap.to_json()).expect("round-trip");
    assert_eq!(decoded, snap);
}

#[test]
fn telemetry_ring_json_round_trips_random_sample_series() {
    // Rings sampled from one randomly-evolving registry — more samples
    // than ring capacity, so eviction is exercised too — must round-trip
    // their `dynplat.telemetry.v1` delta encoding losslessly: same
    // points, same re-encoded bytes, and every retained point still
    // carries the exact counter/gauge values of the snapshot it was
    // sampled from. (The delta encoding carries omitted names forward,
    // so its contract is repeated samples of one registry — the only way
    // the library produces rings — not unrelated snapshots per point.)
    let root = 0x71ED_C0DECu64;
    for case in 0..32u64 {
        let mut rng = seeded_rng(split_seed(root, case));
        let capacity = rng.gen_range(1..12) as usize;
        let samples = rng.gen_range(1..20) as usize;
        let registry = random_registry(split_seed(root, case));
        let mut ring = TelemetryRing::new(capacity);
        let mut taken: Vec<(u64, MetricsSnapshot)> = Vec::new();
        let mut t_ns = 0u64;
        for _ in 0..samples {
            t_ns += rng.gen_range(1..1_000_000u64);
            // Advance a random subset of metrics between samples, so some
            // points delta on every name and some on none.
            for name in COUNTER_NAMES {
                if rng.gen_bool(0.4) {
                    registry.counter(name).add(rng.gen_range(0..10_000u64));
                }
            }
            for name in GAUGE_NAMES {
                if rng.gen_bool(0.4) {
                    registry.gauge(name).set(rng.gen_range(-10_000..10_000i64));
                }
            }
            let snap = registry.snapshot();
            ring.sample(t_ns, &snap);
            taken.push((t_ns, snap));
        }
        assert_eq!(ring.len(), samples.min(capacity), "case {case}: ring fill");

        let encoded = ring.to_json();
        let decoded = TelemetryRing::from_json(&encoded)
            .unwrap_or_else(|e| panic!("case {case}: telemetry round-trip failed: {e}"));
        assert_eq!(
            decoded.points(),
            ring.points(),
            "case {case}: points diverged"
        );
        assert_eq!(
            decoded.to_json(),
            encoded,
            "case {case}: re-encode diverged"
        );

        // The ring keeps the newest `capacity` samples in order, verbatim.
        let kept = &taken[samples - ring.len()..];
        for (point, (at, snap)) in decoded.points().iter().zip(kept) {
            assert_eq!(point.t_ns, *at, "case {case}: sample time");
            assert_eq!(point.counters, snap.counters, "case {case}: counters");
            assert_eq!(point.gauges, snap.gauges, "case {case}: gauges");
        }
    }
}

#[test]
fn telemetry_ring_rejects_malformed_documents() {
    assert!(TelemetryRing::from_json("[]").is_err());
    assert!(TelemetryRing::from_json(r#"{"schema": "other.v9", "points": []}"#).is_err());
}
