//! Concurrency smoke tests: the registry and tracer must stay consistent
//! under parallel writers (shard-friendliness claim of the obs layer).

use dynplat_obs::{MetricsRegistry, Tracer};
use std::sync::Arc;

#[test]
fn registry_counts_exactly_under_contention() {
    let registry = Arc::new(MetricsRegistry::new());
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let counter = registry.counter("smoke.ops");
                let hist = registry.histogram("smoke.latency_ns");
                let gauge = registry.gauge("smoke.level");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(1 + (i % 1000));
                    gauge.set(t as i64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counters["smoke.ops"], expected);
    let h = &snap.histograms["smoke.latency_ns"];
    assert_eq!(h.count, expected);
    assert_eq!(h.min, 1);
    assert_eq!(h.max, 1000);
    // Sum of per-bucket counts equals the total count.
    let bucket_total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(bucket_total, expected);
    assert!((0..THREADS as i64).contains(&snap.gauges["smoke.level"]));
}

#[test]
fn tracer_survives_parallel_spans() {
    let tracer = Arc::new(Tracer::new(64));
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 500;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    tracer.in_span("outer", || {
                        tracer.in_span("inner", || {});
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(tracer.total_finished(), THREADS as u64 * 2 * PER_THREAD);
    // Nesting stays thread-local: every retained inner span has a parent.
    for span in tracer.finished() {
        if span.name == "inner" {
            assert!(span.parent.is_some());
        }
        assert!(span.end > span.start);
    }
}

#[test]
fn snapshot_while_writing_does_not_tear_invariants() {
    let registry = Arc::new(MetricsRegistry::new());
    let writer = {
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            let hist = registry.histogram("tear.h");
            for i in 0..50_000u64 {
                hist.record(i % 97 + 1);
            }
        })
    };
    // Snapshots taken mid-write must stay internally plausible.
    for _ in 0..50 {
        let snap = registry.snapshot();
        if let Some(h) = snap.histograms.get("tear.h") {
            assert!(h.p50 <= h.p95);
            assert!(h.p95 <= h.p99);
            assert!(h.min <= h.max || h.count == 0);
        }
    }
    writer.join().unwrap();
    let h = &registry.snapshot().histograms["tear.h"];
    assert_eq!(h.count, 50_000);
}
