//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Design constraints (§3.4 of the paper applied to a host-side
//! reproduction): instrumentation must be cheap enough to live in the hot
//! paths of the fabric and the scheduler simulator, deterministic in its
//! bucket layout, and dependency-free. Every metric is keyed by a
//! `&'static str` name; registration takes a short-lived lock once per
//! call site, after which all updates are single atomic operations on a
//! shared handle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::exemplar::{Exemplar, ExemplarSet};
use crate::sketch::SketchCell;
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Number of per-thread cells a [`Counter`] is striped over. Each thread
/// hashes to one cell, so concurrent increments from different workers land
/// on different cache lines instead of ping-ponging one shared line.
pub const COUNTER_STRIPES: usize = 8;

/// One cache-line-aligned counter cell, padded so adjacent cells never
/// share a line (the whole point of striping).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

/// The cell index of the calling thread: assigned round-robin on first use
/// and cached in a thread-local, so the steady-state cost is one TLS read.
fn thread_stripe() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        // relaxed: a round-robin ticket; only uniqueness matters, no
        // memory is published through it.
        let mine = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
        s.set(mine);
        mine
    })
}

/// A monotonically increasing counter, striped over per-thread cells.
///
/// Increments go to the calling thread's cell (a relaxed add on a cache
/// line no other thread writes); [`Counter::get`] sums the cells. This is
/// what keeps `counter!` off the contended profile when the bench runs
/// with `--threads N`: N workers hammering the same counter name touch N
/// different cache lines.
#[derive(Debug)]
pub struct Counter {
    cells: [CounterCell; COUNTER_STRIPES],
}

impl Default for Counter {
    fn default() -> Self {
        Counter {
            cells: std::array::from_fn(|_| CounterCell::default()),
        }
    }
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        // relaxed: counters are monotone event tallies, not publication
        // flags; cross-thread visibility is provided by whoever
        // synchronizes the snapshot (thread join / scope end), which the
        // `StripeModel` in `dynplat-analysis` model-checks.
        self.cells[thread_stripe()]
            .value
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all per-thread cells.
    pub fn get(&self) -> u64 {
        // relaxed: a statistical snapshot read; exactness is only
        // guaranteed after the writers are joined (see `Counter::add`).
        self.cells
            .iter()
            .map(|c| c.value.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        // relaxed: reset is documented as quiescent-only (between bench
        // phases); there are no concurrent writers to order against.
        for c in &self.cells {
            c.value.store(0, Ordering::Relaxed);
        }
    }
}

/// A gauge: a signed value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        // relaxed: a gauge is a single self-contained word; readers take
        // whichever value is newest, nothing else is published with it.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds (or, with a negative delta, subtracts).
    pub fn add(&self, delta: i64) {
        // relaxed: atomic RMW keeps the tally exact; no other memory
        // rides on a gauge update.
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // relaxed: snapshot read of a self-contained word.
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        // relaxed: quiescent-only, as for `Counter::reset`.
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of fixed histogram buckets: a 1–2–5 series per decade from 1 to
/// 10^18, plus one overflow bucket.
pub const BUCKET_COUNT: usize = 3 * 19 + 1;

/// The shared, deterministic bucket upper bounds (inclusive): 1, 2, 5, 10,
/// 20, 50, … 5·10^18, then overflow. Values are typically nanoseconds, so
/// the range covers 1 ns to ~158 years with ≤ 2.5× quantile error.
pub fn bucket_bounds() -> &'static [u64; BUCKET_COUNT - 1] {
    static BOUNDS: std::sync::OnceLock<[u64; BUCKET_COUNT - 1]> = std::sync::OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = [0u64; BUCKET_COUNT - 1];
        let mut i = 0;
        let mut decade: u64 = 1;
        while i < BUCKET_COUNT - 1 {
            for m in [1u64, 2, 5] {
                if i < BUCKET_COUNT - 1 {
                    b[i] = m.saturating_mul(decade);
                    i += 1;
                }
            }
            decade = decade.saturating_mul(10);
        }
        b
    })
}

/// A fixed-bucket histogram with exact count/sum/min/max and bucketed
/// quantiles (p50/p95/p99 within one 1–2–5 bucket of the true value).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = bucket_index(value); // first bound >= value
                                       // relaxed: each field is an independent exact tally (atomic RMW
                                       // loses nothing); a concurrent snapshot may see the fields
                                       // mid-update, which histogram consumers tolerate by contract —
                                       // exact reads happen after writers are synchronized externally.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        self.sum.fetch_add(value, Ordering::Relaxed); // relaxed: see above
        self.min.fetch_min(value, Ordering::Relaxed); // relaxed: see above
        self.max.fetch_max(value, Ordering::Relaxed); // relaxed: see above
    }

    /// Records `n` identical observations in one shot — the merge primitive
    /// for pre-aggregated data (per-shard fleet results, replayed series),
    /// where recording each observation individually would put millions of
    /// redundant atomic operations on the merge path.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value); // first bound >= value
                                       // relaxed: same per-field tally argument as `record`.
        self.buckets[idx].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed); // relaxed: see above
        self.sum
            // relaxed: see above
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed); // relaxed: see above
        self.max.fetch_max(value, Ordering::Relaxed); // relaxed: see above
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // relaxed: snapshot read; see `record` for the tally argument.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        // relaxed: snapshot read; see `record`.
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        // relaxed: snapshot read; see `record`.
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        // relaxed: snapshot read; see `record`.
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`), or 0 when empty. The bound is exact for the
    /// overflow bucket only in the sense of returning [`Histogram::max`].
    ///
    /// The bucket array is read in one pass and the rank is taken against
    /// that same read — not against the separately-updated `count` field —
    /// so the answer is self-consistent even while striped
    /// [`Histogram::merge_local`] flushes land concurrently.
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets = self.load_buckets();
        quantile_of(&buckets, q, self.max())
    }

    /// One coherent pass over the bucket array.
    fn load_buckets(&self) -> [u64; BUCKET_COUNT] {
        let mut out = [0u64; BUCKET_COUNT];
        for (slot, b) in out.iter_mut().zip(self.buckets.iter()) {
            // relaxed: snapshot read; see `record`.
            *slot = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs; the overflow
    /// bucket reports `u64::MAX` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let bounds = bucket_bounds();
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                // relaxed: snapshot read; see `record`.
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bounds.get(i).copied().unwrap_or(u64::MAX), n))
            })
            .collect()
    }

    /// Snapshot of this histogram's aggregate state.
    ///
    /// The whole snapshot derives from **one** read of the bucket array:
    /// `count` is that read's total and `p50`/`p95`/`p99` are ranked
    /// against it, so recomputing a quantile from the snapshot's own
    /// `buckets` ([`HistogramSnapshot::quantile`]) reproduces the stored
    /// percentiles exactly — there is no drift between `quantile()` and
    /// `snapshot()` under concurrent striped flushes. (`sum` is a
    /// separate atomic and may trail the buckets mid-flush; it is exact
    /// once writers are synchronized, like every other tally here.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.load_buckets();
        let count: u64 = buckets.iter().sum();
        let max = self.max();
        let bounds = bucket_bounds();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: self.min(),
            max,
            p50: quantile_of(&buckets, 0.50, max),
            p95: quantile_of(&buckets, 0.95, max),
            p99: quantile_of(&buckets, 0.99, max),
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (bounds.get(i).copied().unwrap_or(u64::MAX), n))
                .collect(),
        }
    }

    /// Merges a thread-local accumulator into this shared histogram and
    /// clears the local side. One call replaces `local.count` individual
    /// `record` calls — the flush primitive that lets hot loops (the fabric
    /// deliver path, the dispatcher) observe into a plain `u64` array and
    /// touch atomics once per batch instead of once per observation.
    pub fn merge_local(&self, local: &mut LocalHistogram) {
        if local.count == 0 {
            return;
        }
        // relaxed: the flush is a batch of the same per-field tallies as
        // `record`; the reader that needs exactness (snapshot after join)
        // is synchronized externally, which `dynplat-analysis`'s
        // `StripeModel` model-checks.
        for (shared, &n) in self.buckets.iter().zip(local.buckets.iter()) {
            if n > 0 {
                shared.fetch_add(n, Ordering::Relaxed); // relaxed: see above
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed); // relaxed: see above
        self.sum.fetch_add(local.sum, Ordering::Relaxed); // relaxed: see above
        self.min.fetch_min(local.min, Ordering::Relaxed); // relaxed: see above
        self.max.fetch_max(local.max, Ordering::Relaxed); // relaxed: see above
        local.clear();
    }

    fn reset(&self) {
        // relaxed: quiescent-only, as for `Counter::reset`.
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // relaxed: see above
        }
        self.count.store(0, Ordering::Relaxed); // relaxed: see above
        self.sum.store(0, Ordering::Relaxed); // relaxed: see above
        self.min.store(u64::MAX, Ordering::Relaxed); // relaxed: see above
        self.max.store(0, Ordering::Relaxed); // relaxed: see above
    }
}

/// Index of the bucket holding `value` (first bound ≥ `value`, or the
/// overflow bucket).
#[inline]
fn bucket_index(value: u64) -> usize {
    bucket_bounds().partition_point(|&b| b < value)
}

/// Nearest-rank quantile over one coherent bucket read, clamped to `max`.
fn quantile_of(buckets: &[u64; BUCKET_COUNT], q: f64, max: u64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
    let bounds = bucket_bounds();
    let mut acc = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        acc += n;
        if acc >= target {
            return if i < bounds.len() {
                bounds[i].min(max)
            } else {
                max
            };
        }
    }
    max
}

/// A single-owner histogram accumulator: the same 1–2–5 bucket layout as
/// [`Histogram`], but plain `u64`s with no atomics. Hot loops record into
/// one of these and [`Histogram::merge_local`] folds it into the shared
/// registry handle once per batch, so per-observation cost is an array
/// increment instead of five atomic read-modify-writes.
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LocalHistogram::default()
    }

    /// Records one observation (no atomics).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations accumulated since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Empties the accumulator without flushing.
    pub fn clear(&mut self) {
        *self = LocalHistogram::default();
    }

    /// Flushes into `target` and clears; convenience for
    /// [`Histogram::merge_local`].
    pub fn flush_into(&mut self, target: &Histogram) {
        target.merge_local(self);
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    sketches: BTreeMap<&'static str, Arc<SketchCell>>,
    exemplars: BTreeMap<&'static str, Arc<ExemplarSet>>,
}

/// The registry: name → metric handle. Handles are `Arc`s, so the lock is
/// only held while resolving a name; updates through a resolved handle are
/// lock-free.
///
/// # Examples
///
/// ```
/// use dynplat_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let sends = registry.counter("comm.fabric.sends");
/// sends.add(3);
/// let lat = registry.histogram("comm.fabric.latency_ns");
/// lat.record(1_500);
/// let snap = registry.snapshot();
/// assert_eq!(snap.counters["comm.fabric.sends"], 3);
/// assert_eq!(snap.histograms["comm.fabric.latency_ns"].count, 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().expect("registry lock").counters.get(name) {
            return Arc::clone(c);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(inner.counters.entry(name).or_default())
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = self.inner.read().expect("registry lock").gauges.get(name) {
            return Arc::clone(g);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(inner.gauges.entry(name).or_default())
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = self
            .inner
            .read()
            .expect("registry lock")
            .histograms
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(inner.histograms.entry(name).or_default())
    }

    /// Resolves (creating on first use) the quantile sketch `name`
    /// (capacityless: sketches grow sparsely with observed buckets).
    pub fn sketch(&self, name: &'static str) -> Arc<SketchCell> {
        if let Some(s) = self.inner.read().expect("registry lock").sketches.get(name) {
            return Arc::clone(s);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(inner.sketches.entry(name).or_default())
    }

    /// Resolves (creating on first use) the exemplar set `name`
    /// (default top-K capacity, [`crate::exemplar::DEFAULT_EXEMPLARS`]).
    pub fn exemplars(&self, name: &'static str) -> Arc<ExemplarSet> {
        if let Some(e) = self
            .inner
            .read()
            .expect("registry lock")
            .exemplars
            .get(name)
        {
            return Arc::clone(e);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(inner.exemplars.entry(name).or_default())
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().expect("registry lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.snapshot()))
                .collect(),
            sketches: inner
                .sketches
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.snapshot()))
                .collect(),
        }
    }

    /// The retained exemplars of every registered set, by name (kept out
    /// of [`MetricsSnapshot`]: exemplars link to traces, not to the perf
    /// baseline the CI gate diffs).
    pub fn exemplar_snapshot(&self) -> BTreeMap<String, Vec<Exemplar>> {
        let inner = self.inner.read().expect("registry lock");
        inner
            .exemplars
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.snapshot()))
            .collect()
    }

    /// Zeroes every metric *in place*: handles already resolved by call
    /// sites stay valid, which is what makes back-to-back hermetic bench
    /// phases possible.
    pub fn reset(&self) {
        let inner = self.inner.read().expect("registry lock");
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
        for s in inner.sketches.values() {
            s.reset();
        }
        for e in inner.exemplars.values() {
            e.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").add(4);
        r.gauge("g").set(-3);
        r.gauge("g").add(1);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.gauge("g").get(), -2);
    }

    #[test]
    fn same_name_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        assert_eq!(b.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn record_n_matches_n_individual_records() {
        let r = MetricsRegistry::new();
        let bulk = r.histogram("bulk");
        let one_by_one = r.histogram("single");
        for (value, n) in [(7u64, 3u64), (1_200, 5), (0, 2), (999_999, 1)] {
            bulk.record_n(value, n);
            for _ in 0..n {
                one_by_one.record(value);
            }
        }
        bulk.record_n(42, 0); // a zero-count merge is a no-op
        assert_eq!(bulk.snapshot(), one_by_one.snapshot());
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let r = MetricsRegistry::new();
        let c = r.counter("striped");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        c.add(5);
        assert_eq!(c.get(), 40_005);
        r.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn local_histogram_flush_matches_direct_records() {
        let direct = Histogram::default();
        let shared = Histogram::default();
        let mut local = LocalHistogram::new();
        for v in [1u64, 3, 50, 999, 1_000_000, 0, 7_000_000_000_000_000_000] {
            direct.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), 7);
        local.flush_into(&shared);
        assert_eq!(local.count(), 0, "flush clears the local side");
        assert_eq!(shared.snapshot(), direct.snapshot());
        // Flushing an empty accumulator is a no-op.
        local.flush_into(&shared);
        assert_eq!(shared.count(), 7);
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        let b = bucket_bounds();
        for w in b.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        assert_eq!(b[0], 1);
        assert_eq!(b[b.len() - 1], 5_000_000_000_000_000_000);
    }

    #[test]
    fn histogram_quantiles_land_in_correct_buckets() {
        let h = Histogram::default();
        // 100 values: 1..=100. p50 -> 50th value = 50, bucket bound 50.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.95), 100);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn histogram_quantile_clamped_to_observed_max() {
        let h = Histogram::default();
        h.record(3); // bucket bound 5
        assert_eq!(h.quantile(0.5), 3, "bound must clamp to observed max");
        assert_eq!(h.quantile(0.0), 3);
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let h = Histogram::default();
        let big = 6_000_000_000_000_000_000u64; // beyond the last bound
        h.record(big);
        assert_eq!(h.quantile(0.99), big);
        assert_eq!(h.nonzero_buckets(), vec![(u64::MAX, 1)]);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn sketches_and_exemplars_live_in_the_registry() {
        let r = MetricsRegistry::new();
        let s = r.sketch("reg.sketch");
        s.record_n(100, 4);
        let e = r.exemplars("reg.exemplars");
        e.offer(9_000, crate::TraceCtx::new(0xAB, 2));
        let snap = r.snapshot();
        assert_eq!(snap.sketches["reg.sketch"].count, 4);
        let ex = r.exemplar_snapshot();
        assert_eq!(ex["reg.exemplars"][0].value, 9_000);
        assert!(Arc::ptr_eq(&s, &r.sketch("reg.sketch")));
        r.reset();
        assert_eq!(r.sketch("reg.sketch").count(), 0);
        assert!(r.exemplar_snapshot()["reg.exemplars"].is_empty());
    }

    #[test]
    fn snapshot_quantiles_recompute_from_their_own_buckets() {
        // The drift fix: a snapshot's p50/p95/p99 must be derivable from
        // the snapshot's own buckets, even while striped flushes land.
        let h = Arc::new(Histogram::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for worker in 0..3u64 {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut local = LocalHistogram::new();
                    let mut v = worker + 1;
                    // relaxed: test-only stop flag, no data published.
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            v = v.wrapping_mul(6364136223846793005).wrapping_add(worker);
                            local.record(v % 1_000_000);
                        }
                        local.flush_into(&h);
                    }
                });
            }
            for _ in 0..200 {
                let snap = h.snapshot();
                for (q, expect) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
                    assert_eq!(
                        snap.quantile(q),
                        expect,
                        "snapshot internally inconsistent at q{q}: {snap:?}"
                    );
                }
            }
            // relaxed: see above.
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(7);
        h.record(10);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // The pre-reset handle still feeds the registry.
        c.inc();
        assert_eq!(r.snapshot().counters["c"], 1);
    }
}
