//! A minimal JSON reader/writer — just enough for `BENCH_*.json`
//! snapshots, with no external dependencies.
//!
//! The writer lives in [`crate::snapshot`]; this module parses a JSON
//! document into a [`JsonValue`] tree. Numbers are kept as `f64` when
//! fractional and `u64`/`i64` when integral so metric values round-trip
//! exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integral number that fits an unsigned 64-bit value.
    UInt(u64),
    /// Negative integral number.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object with key order normalized (BTreeMap).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as u64 if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as i64 if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::UInt(v) => i64::try_from(*v).ok(),
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as f64 if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad unicode escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad unicode escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (possibly multi-byte).
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": -1}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_i64(), Some(-1));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "he said \"hi\"\n\tdone\\";
        let parsed = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn large_u64_survives() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(
            parse("\"\\u0041\"").unwrap(),
            JsonValue::Str("A".to_owned())
        );
    }
}
