//! Chrome-trace-format export for span trees.
//!
//! Emits the `chrome://tracing` / Perfetto "JSON array" flavor: one
//! complete event (`"ph": "X"`) per finished span, with the span tree
//! recoverable from the `args.id` / `args.parent` pair. Timestamps are
//! the tracer's logical ticks (the format calls the field microseconds;
//! for a deterministic logical clock the unit is ticks — relative
//! ordering and nesting render identically).

use std::fmt::Write as _;

use crate::json;
use crate::span::{SpanRecord, Tracer};

/// Encodes finished spans as a Chrome-trace JSON array.
///
/// # Examples
///
/// ```
/// use dynplat_obs::Tracer;
///
/// let t = Tracer::new(8);
/// t.in_span("campaign", || t.in_span("wave", || {}));
/// let trace = dynplat_obs::chrome::to_chrome_trace(&t.finished());
/// assert!(trace.starts_with('['));
/// assert!(trace.contains("\"ph\": \"X\""));
/// ```
pub fn to_chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"id\": {}, \"parent\": {}}}}}",
            json::escape(r.name),
            r.start,
            r.ticks(),
            r.id,
            r.parent
                .map_or_else(|| "null".to_owned(), |p| p.to_string()),
        );
    }
    out.push_str(if records.is_empty() { "]\n" } else { "\n]\n" });
    out
}

impl Tracer {
    /// The retained spans as a Chrome-trace JSON array (see
    /// [`to_chrome_trace`]).
    pub fn to_chrome_trace(&self) -> String {
        to_chrome_trace(&self.finished())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn empty_trace_is_an_empty_array() {
        let doc = json::parse(&to_chrome_trace(&[])).expect("valid json");
        assert_eq!(doc.as_array().map(<[JsonValue]>::len), Some(0));
    }

    #[test]
    fn events_carry_span_tree_and_escape_names() {
        let records = vec![
            SpanRecord {
                id: 0,
                parent: None,
                name: "outer \"quoted\"",
                start: 0,
                end: 3,
            },
            SpanRecord {
                id: 1,
                parent: Some(0),
                name: "inner",
                start: 1,
                end: 2,
            },
        ];
        let doc = json::parse(&to_chrome_trace(&records)).expect("valid json");
        let events = doc.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|v| v.as_str()),
            Some("outer \"quoted\"")
        );
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(events[0].get("dur").and_then(|v| v.as_u64()), Some(3));
        let args = events[1].get("args").expect("args");
        assert_eq!(args.get("parent").and_then(|v| v.as_u64()), Some(0));
        assert!(matches!(
            events[0].get("args").and_then(|a| a.get("parent")),
            Some(JsonValue::Null)
        ));
    }

    #[test]
    fn tracer_method_matches_free_function() {
        let t = Tracer::new(8);
        t.in_span("a", || {});
        assert_eq!(t.to_chrome_trace(), to_chrome_trace(&t.finished()));
    }
}
