//! Chrome-trace-format export for span trees.
//!
//! Emits the `chrome://tracing` / Perfetto "JSON array" flavor: one
//! complete event (`"ph": "X"`) per finished span, with the span tree
//! recoverable from the `args.id` / `args.parent` pair. Timestamps are
//! the tracer's logical ticks (the format calls the field microseconds;
//! for a deterministic logical clock the unit is ticks — relative
//! ordering and nesting render identically).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::exemplar::Exemplar;
use crate::json;
use crate::span::{SpanRecord, Tracer};

/// Encodes finished spans as a Chrome-trace JSON array.
///
/// # Examples
///
/// ```
/// use dynplat_obs::Tracer;
///
/// let t = Tracer::new(8);
/// t.in_span("campaign", || t.in_span("wave", || {}));
/// let trace = dynplat_obs::chrome::to_chrome_trace(&t.finished());
/// assert!(trace.starts_with('['));
/// assert!(trace.contains("\"ph\": \"X\""));
/// ```
pub fn to_chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"id\": {}, \"parent\": {}}}}}",
            json::escape(r.name),
            r.start,
            r.ticks(),
            r.id,
            r.parent
                .map_or_else(|| "null".to_owned(), |p| p.to_string()),
        );
    }
    out.push_str(if records.is_empty() { "]\n" } else { "\n]\n" });
    out
}

/// Encodes finished spans plus top-K exemplars (the shape of
/// [`crate::MetricsRegistry::exemplar_snapshot`]) as one Chrome-trace
/// JSON array. Each exemplar becomes an instant event (`"ph": "i"`) on
/// its own `tid` row per metric, stamped at the exemplar value with the
/// originating trace id and span in `args` — so the worst tail latencies
/// line up visually against the span tree that produced them.
pub fn to_chrome_trace_with_exemplars(
    records: &[SpanRecord],
    exemplars: &BTreeMap<String, Vec<Exemplar>>,
) -> String {
    let mut out = to_chrome_trace(records);
    let n_exemplars: usize = exemplars.values().map(Vec::len).sum();
    if n_exemplars == 0 {
        return out;
    }
    // Splice the exemplar events into the existing array: drop the
    // closing "]\n" (and, when spans exist, re-separate with a comma).
    out.truncate(out.rfind(']').expect("array close"));
    out.truncate(out.trim_end().len());
    let mut first = records.is_empty();
    for (tid, (metric, top)) in exemplars.iter().enumerate() {
        for e in top {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n  {{\"name\": \"{}\", \"cat\": \"exemplar\", \"ph\": \"i\", \
                 \"s\": \"g\", \"ts\": {}, \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"value\": {}, \"trace_id\": {}, \"span\": {}}}}}",
                json::escape(metric),
                e.value,
                tid + 1,
                e.value,
                e.trace.trace_id,
                e.trace.span,
            );
        }
    }
    out.push_str("\n]\n");
    out
}

impl Tracer {
    /// The retained spans as a Chrome-trace JSON array (see
    /// [`to_chrome_trace`]).
    pub fn to_chrome_trace(&self) -> String {
        to_chrome_trace(&self.finished())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn empty_trace_is_an_empty_array() {
        let doc = json::parse(&to_chrome_trace(&[])).expect("valid json");
        assert_eq!(doc.as_array().map(<[JsonValue]>::len), Some(0));
    }

    #[test]
    fn events_carry_span_tree_and_escape_names() {
        let records = vec![
            SpanRecord {
                id: 0,
                parent: None,
                name: "outer \"quoted\"",
                start: 0,
                end: 3,
            },
            SpanRecord {
                id: 1,
                parent: Some(0),
                name: "inner",
                start: 1,
                end: 2,
            },
        ];
        let doc = json::parse(&to_chrome_trace(&records)).expect("valid json");
        let events = doc.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|v| v.as_str()),
            Some("outer \"quoted\"")
        );
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(events[0].get("dur").and_then(|v| v.as_u64()), Some(3));
        let args = events[1].get("args").expect("args");
        assert_eq!(args.get("parent").and_then(|v| v.as_u64()), Some(0));
        assert!(matches!(
            events[0].get("args").and_then(|a| a.get("parent")),
            Some(JsonValue::Null)
        ));
    }

    #[test]
    fn tracer_method_matches_free_function() {
        let t = Tracer::new(8);
        t.in_span("a", || {});
        assert_eq!(t.to_chrome_trace(), to_chrome_trace(&t.finished()));
    }

    #[test]
    fn exemplars_become_instant_events() {
        use crate::trace::TraceCtx;

        let records = vec![SpanRecord {
            id: 0,
            parent: None,
            name: "wave",
            start: 0,
            end: 5,
        }];
        let mut exemplars = BTreeMap::new();
        exemplars.insert(
            "fleet.stage.e2e_ms".to_owned(),
            vec![Exemplar {
                value: 900,
                trace: TraceCtx::new(42, 7),
            }],
        );
        let trace = to_chrome_trace_with_exemplars(&records, &exemplars);
        let doc = json::parse(&trace).expect("valid json");
        let events = doc.as_array().expect("array");
        assert_eq!(events.len(), 2);
        let ex = &events[1];
        assert_eq!(ex.get("ph").and_then(|v| v.as_str()), Some("i"));
        assert_eq!(ex.get("cat").and_then(|v| v.as_str()), Some("exemplar"));
        let args = ex.get("args").expect("args");
        assert_eq!(args.get("trace_id").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(args.get("span").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(args.get("value").and_then(|v| v.as_u64()), Some(900));
    }

    #[test]
    fn exemplars_without_spans_still_form_a_valid_array() {
        use crate::trace::TraceCtx;

        let mut exemplars = BTreeMap::new();
        exemplars.insert(
            "m".to_owned(),
            vec![Exemplar {
                value: 1,
                trace: TraceCtx::new(1, 1),
            }],
        );
        let doc =
            json::parse(&to_chrome_trace_with_exemplars(&[], &exemplars)).expect("valid json");
        assert_eq!(doc.as_array().map(<[JsonValue]>::len), Some(1));
        // And no exemplars at all degrades to the plain span trace.
        assert_eq!(
            to_chrome_trace_with_exemplars(&[], &BTreeMap::new()),
            to_chrome_trace(&[])
        );
    }
}
