//! Structured tracing spans with a deterministic logical clock.
//!
//! Wall clocks make traces machine-dependent and chaos runs non-hermetic,
//! so spans here are stamped with ticks of a per-[`Tracer`] logical clock:
//! every span enter and exit advances the clock by one. Two runs of the
//! same deterministic workload produce byte-identical span logs.
//!
//! Spans nest per thread: a span opened while another span of the same
//! tracer is active on the same thread records that span as its parent.
//! Finished spans land in a fixed-capacity ring buffer so long campaigns
//! keep the most recent window without unbounded growth.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::json::{self, JsonValue};

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the tracer (allocation order).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name.
    pub name: &'static str,
    /// Logical tick at entry.
    pub start: u64,
    /// Logical tick at exit.
    pub end: u64,
}

impl SpanRecord {
    /// Logical duration in ticks.
    pub fn ticks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    records: Vec<SpanRecord>,
    next: usize,
    total: u64,
}

impl Ring {
    fn push(&mut self, rec: SpanRecord) {
        self.total += 1;
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.next] = rec;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    fn in_order(&self) -> Vec<SpanRecord> {
        if self.records.len() < self.capacity {
            self.records.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.records[self.next..]);
            out.extend_from_slice(&self.records[..self.next]);
            out
        }
    }
}

static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread stack of `(tracer id, span id)` pairs across all tracers.
    static ACTIVE: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A span source with a logical clock and a bounded exporter.
///
/// # Examples
///
/// ```
/// use dynplat_obs::Tracer;
///
/// let tracer = Tracer::new(16);
/// {
///     let _outer = tracer.span("campaign");
///     let _inner = tracer.span("wave");
/// } // guards drop: inner first, then outer
/// let spans = tracer.finished();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].name, "wave");
/// assert_eq!(spans[0].parent, Some(spans[1].id));
/// ```
#[derive(Debug)]
pub struct Tracer {
    id: usize,
    clock: AtomicU64,
    next_span: AtomicU64,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// Creates a tracer retaining the `capacity` most recent spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Tracer {
            // relaxed: a unique-id ticket; nothing is published with it.
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            clock: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                capacity,
                records: Vec::new(),
                next: 0,
                total: 0,
            }),
        }
    }

    /// Current logical tick.
    pub fn tick(&self) -> u64 {
        // relaxed: a monotone logical clock read; ticks order spans, they
        // do not publish memory.
        self.clock.load(Ordering::Relaxed)
    }

    /// Opens a span; it closes (and is exported) when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        // relaxed: unique-id ticket + logical-clock tick; atomic RMWs keep
        // both exact, and neither publishes other memory.
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let start = self.clock.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        let parent = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(t, _)| *t == self.id)
                .map(|(_, s)| *s);
            stack.push((self.id, id));
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            name,
            start,
        }
    }

    /// Runs `f` inside a span.
    pub fn in_span<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(name);
        f()
    }

    /// The retained spans, oldest first.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.ring.lock().expect("ring lock").in_order()
    }

    /// Total spans ever finished (including those evicted from the ring).
    pub fn total_finished(&self) -> u64 {
        self.ring.lock().expect("ring lock").total
    }

    /// A plain-text dump of the retained spans, one per line:
    /// `"name" id parent start end`, where `name` is JSON-escaped (so
    /// names containing spaces, quotes or newlines stay one unambiguous
    /// line) and `parent` is a span id or `-` for roots.
    ///
    /// [`parse_dump`] inverts this exactly.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in self.finished() {
            let parent = r.parent.map_or_else(|| "-".to_owned(), |p| p.to_string());
            out.push_str(&format!(
                "\"{}\" {} {} {} {}\n",
                json::escape(r.name),
                r.id,
                parent,
                r.start,
                r.end
            ));
        }
        out
    }

    fn close(&self, guard: &SpanGuard<'_>) {
        // relaxed: logical-clock tick, as in `span`.
        let end = self.clock.fetch_add(1, Ordering::Relaxed);
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Usually the top of the stack; search from the end so
            // out-of-order guard drops stay correct.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, s)| t == self.id && s == guard.id)
            {
                stack.remove(pos);
            }
        });
        self.ring.lock().expect("ring lock").push(SpanRecord {
            id: guard.id,
            parent: guard.parent,
            name: guard.name,
            start: guard.start,
            end,
        });
    }
}

/// One span parsed back from a [`Tracer::dump`] line. Mirrors
/// [`SpanRecord`] with an owned name (the original `&'static str` cannot
/// be reconstructed from text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedSpan {
    /// Unique id within the tracer.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, unescaped.
    pub name: String,
    /// Logical tick at entry.
    pub start: u64,
    /// Logical tick at exit.
    pub end: u64,
}

/// Parses a [`Tracer::dump`] back into spans.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
///
/// # Examples
///
/// ```
/// use dynplat_obs::{span::parse_dump, Tracer};
///
/// let t = Tracer::new(8);
/// t.in_span("a name with spaces", || {});
/// let spans = parse_dump(&t.dump()).unwrap();
/// assert_eq!(spans[0].name, "a name with spaces");
/// ```
pub fn parse_dump(dump: &str) -> Result<Vec<ParsedSpan>, String> {
    let mut out = Vec::new();
    for (lineno, line) in dump.lines().enumerate() {
        let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if !line.starts_with('"') {
            return Err(bad("expected quoted span name"));
        }
        // Find the closing quote, honoring backslash escapes.
        let mut close = None;
        let mut escaped = false;
        for (i, c) in line.char_indices().skip(1) {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or_else(|| bad("unterminated span name"))?;
        let name = match json::parse(&line[..=close]) {
            Ok(JsonValue::Str(s)) => s,
            _ => return Err(bad("invalid name escape")),
        };
        let fields: Vec<&str> = line[close + 1..].split_whitespace().collect();
        if fields.len() != 4 {
            return Err(bad("expected `id parent start end` after name"));
        }
        let num = |s: &str, what: &str| -> Result<u64, String> { s.parse().map_err(|_| bad(what)) };
        let parent = if fields[1] == "-" {
            None
        } else {
            Some(num(fields[1], "invalid parent id")?)
        };
        out.push(ParsedSpan {
            id: num(fields[0], "invalid span id")?,
            parent,
            name,
            start: num(fields[2], "invalid start tick")?,
            end: num(fields[3], "invalid end tick")?,
        });
    }
    Ok(out)
}

/// RAII guard of an open span.
#[must_use = "a span closes when its guard drops; an unused guard closes immediately"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: u64,
}

impl SpanGuard<'_> {
    /// The span's id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.close(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let t = Tracer::new(8);
        let outer = t.span("outer");
        let outer_id = outer.id();
        {
            let _inner = t.span("inner");
        }
        drop(outer);
        let spans = t.finished();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None);
        // Logical clock: outer enter=0, inner enter=1, inner exit=2, outer exit=3.
        assert_eq!(spans[0].start, 1);
        assert_eq!(spans[0].end, 2);
        assert_eq!(spans[1].start, 0);
        assert_eq!(spans[1].end, 3);
    }

    #[test]
    fn out_of_order_guard_drop_is_safe() {
        let t = Tracer::new(8);
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // dropped before its child
        let c = t.span("c");
        drop(b);
        drop(c);
        let spans = t.finished();
        assert_eq!(spans.len(), 3);
        // No panic, and the surviving span b still parents c.
        let b_rec = spans.iter().find(|s| s.name == "b").unwrap();
        let c_rec = spans.iter().find(|s| s.name == "c").unwrap();
        assert_eq!(c_rec.parent, Some(b_rec.id));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let t = Tracer::new(2);
        for name in ["s0", "s1", "s2", "s3"] {
            t.in_span(name, || {});
        }
        let spans = t.finished();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "s2");
        assert_eq!(spans[1].name, "s3");
        assert_eq!(t.total_finished(), 4);
    }

    #[test]
    fn two_tracers_do_not_cross_parent() {
        let t1 = Tracer::new(4);
        let t2 = Tracer::new(4);
        let _a = t1.span("a");
        let b = t2.span("b");
        // b's parent must come from t2 (none), not from t1's open span.
        assert!(b.parent.is_none());
        drop(b);
        let spans = t2.finished();
        assert_eq!(spans[0].parent, None);
    }

    #[test]
    fn in_span_returns_value_and_dump_formats() {
        let t = Tracer::new(4);
        let v = t.in_span("compute", || 41 + 1);
        assert_eq!(v, 42);
        let dump = t.dump();
        assert!(dump.starts_with("\"compute\" 0 - 0 1"), "got {dump:?}");
    }

    #[test]
    fn dump_round_trips_hostile_names_and_parents() {
        let t = Tracer::new(8);
        t.in_span("name with spaces", || {
            t.in_span("quoted \"inner\" name", || {});
            t.in_span("multi\nline\tname", || {});
        });
        let parsed = parse_dump(&t.dump()).expect("parse");
        let finished = t.finished();
        assert_eq!(parsed.len(), finished.len());
        for (p, r) in parsed.iter().zip(&finished) {
            assert_eq!(p.name, r.name);
            assert_eq!(p.id, r.id);
            assert_eq!(p.parent, r.parent);
            assert_eq!(p.start, r.start);
            assert_eq!(p.end, r.end);
        }
        // Nesting is unambiguous: both children name the outer span.
        let outer = parsed
            .iter()
            .find(|p| p.name == "name with spaces")
            .unwrap();
        assert_eq!(
            parsed.iter().filter(|p| p.parent == Some(outer.id)).count(),
            2
        );
    }

    #[test]
    fn parse_dump_rejects_malformed_lines() {
        assert!(parse_dump("compute 0 - 0 1\n").is_err()); // pre-escape format
        assert!(parse_dump("\"unterminated 0 - 0 1\n").is_err());
        assert!(parse_dump("\"a\" 0 - 0\n").is_err()); // missing field
        assert!(parse_dump("\"a\" 0 x 0 1\n").is_err()); // bad parent
        assert!(parse_dump("").unwrap().is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let t = Tracer::new(16);
            t.in_span("a", || {
                t.in_span("b", || {});
                t.in_span("c", || {});
            });
            t.dump()
        };
        assert_eq!(run(), run());
    }
}
