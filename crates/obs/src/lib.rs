//! Observability substrate for the dynamic platform (§3.4).
//!
//! The paper makes runtime monitoring of "the key parameters of
//! deterministic applications, such as period, deadline, jitter, memory
//! usage" a platform duty, and the ROADMAP's north star — "as fast as the
//! hardware allows" — is unverifiable without a measurement substrate.
//! This crate is that substrate, dependency-free by construction:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of counters, gauges and
//!   fixed-bucket histograms keyed by static names. Registration locks
//!   briefly once per call site; every update afterwards is a single
//!   relaxed atomic, cheap enough for the fabric's delivery loop;
//! * [`span`] — structured tracing spans with a deterministic logical
//!   clock (no wall time ⇒ chaos runs stay hermetic), per-thread
//!   parent/child nesting and a ring-buffer exporter;
//! * [`snapshot`] — point-in-time copies of a registry with two encoders:
//!   Prometheus text exposition and the machine-readable `BENCH_*.json`
//!   shape the CI perf gate diffs against a checked-in baseline;
//! * [`json`] — the minimal JSON reader backing snapshot round-trips;
//! * [`mod@sketch`] — mergeable log-linear quantile sketches whose merge is
//!   associative and commutative, so fleet-wide aggregates are
//!   byte-identical no matter how vehicles were sharded;
//! * [`timeseries`] — fixed-capacity delta-encoded rings of periodic
//!   registry snapshots (`dynplat.telemetry.v1`);
//! * [`slo`] — declarative objectives with multi-window burn-rate
//!   tracking that arms the flight recorder before a trip decision;
//! * [`exemplar`] — top-K worst-value [`TraceCtx`] exemplars linking
//!   tail latencies back to concrete traces.
//!
//! Instrumented crates (`comm`, `sched`, `core`, `faults`, `monitor`,
//! `bench`) emit into the process-wide [`global`] registry through the
//! [`counter!`], [`gauge!`], [`histogram!`] and [`sketch!`] macros,
//! which cache the resolved handle in a per-call-site `OnceLock`:
//!
//! ```
//! dynplat_obs::counter!("doc.example.events").inc();
//! dynplat_obs::histogram!("doc.example.latency_ns").record(1_250);
//! assert!(dynplat_obs::global().snapshot().counters["doc.example.events"] >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod exemplar;
pub mod json;
pub mod metrics;
pub mod sketch;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use exemplar::{Exemplar, ExemplarSet, LocalExemplars, DEFAULT_EXEMPLARS};
pub use metrics::{
    bucket_bounds, Counter, Gauge, Histogram, LocalHistogram, MetricsRegistry, BUCKET_COUNT,
    COUNTER_STRIPES,
};
pub use sketch::{
    sketch_bucket_index, sketch_bucket_lower, sketch_bucket_upper, Sketch, SketchCell,
    SketchSnapshot, SKETCH_MAX_INDEX, SKETCH_SUB, SKETCH_SUBBITS,
};
pub use slo::{BurnObservation, BurnTracker, SloKind, SloSpec};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SNAPSHOT_SCHEMA};
pub use span::{parse_dump, ParsedSpan, SpanGuard, SpanRecord, Tracer};
pub use timeseries::{SeriesPoint, TelemetryRing, TELEMETRY_SCHEMA};
pub use trace::{FlightDump, FlightRecorder, TraceCtx, TraceEvent, FLIGHT_SCHEMA};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();
static GLOBAL_FLIGHT: OnceLock<Arc<FlightRecorder>> = OnceLock::new();

/// The process-wide registry every instrumented crate emits into.
pub fn global() -> &'static MetricsRegistry {
    global_arc()
}

/// The process-wide registry as a shareable handle (e.g. to back a
/// `monitor::FaultRecorder`).
pub fn global_arc() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// The process-wide tracer (ring capacity 4096).
pub fn tracer() -> &'static Tracer {
    GLOBAL_TRACER.get_or_init(|| Tracer::new(4096))
}

/// The process-wide flight recorder (ring capacity 4096, snapshots the
/// [`global`] registry). Disabled until [`FlightRecorder::arm`] is
/// called, so instrumented hot paths pay one atomic load by default.
pub fn flight_recorder() -> &'static Arc<FlightRecorder> {
    GLOBAL_FLIGHT
        .get_or_init(|| Arc::new(FlightRecorder::with_registry(4096, global_arc().clone())))
}

/// Resolves a counter in the [`global`] registry, caching the handle in a
/// per-call-site static.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Resolves a gauge in the [`global`] registry, caching the handle in a
/// per-call-site static.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Resolves a histogram in the [`global`] registry, caching the handle in
/// a per-call-site static.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Resolves a quantile sketch in the [`global`] registry, caching the
/// handle in a per-call-site static.
#[macro_export]
macro_rules! sketch {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::SketchCell>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().sketch($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_hit_the_global_registry() {
        counter!("obs.test.counter").add(2);
        gauge!("obs.test.gauge").set(9);
        histogram!("obs.test.hist").record(123);
        let snap = crate::global().snapshot();
        assert!(snap.counters["obs.test.counter"] >= 2);
        assert_eq!(snap.gauges["obs.test.gauge"], 9);
        assert!(snap.histograms["obs.test.hist"].count >= 1);
    }

    #[test]
    fn global_tracer_is_usable() {
        crate::tracer().in_span("obs.test.span", || {});
        assert!(crate::tracer().total_finished() >= 1);
    }
}
