//! Declarative service-level objectives and multi-window burn-rate
//! tracking.
//!
//! A bare threshold ("this batch's failure fraction crossed 5 %") pages
//! on sampling noise and says nothing about budget consumption. An SLO
//! reframes the same signal as an **error budget**: the objective allows
//! a `budget` fraction of bad events, and the *burn rate* is how fast
//! that budget is being spent (`burn = bad_fraction / budget`; 1.0 =
//! exactly on budget). Following the multi-window pattern of SRE
//! practice, a [`BurnTracker`] evaluates the burn over a **fast** window
//! (arms quickly, recovers quickly) and a **slow** window (the sustained
//! picture), and arms an attached [`FlightRecorder`] the moment the fast
//! burn crosses the arming level — so by the time a trip fires, the
//! causal window leading up to it is already on tape.
//!
//! The tracker deliberately stops short of *deciding* trips: deciding
//! needs the distribution-aware machinery of
//! `monitor::uncertainty::BoundaryEstimator` (which sits above this
//! crate). `monitor::slo::SloBurnGate` couples the two; consumers such
//! as `fleet::UpdateMaster` gate on that.

use std::sync::Arc;

use crate::sketch::Sketch;
use crate::trace::FlightRecorder;

/// What a latency objective counts as "bad": observations at or above
/// the target are budget spend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloKind {
    /// Bad events / total events must stay under the budget.
    ErrorFraction,
    /// Observations at or above `target` (e.g. latency in nanoseconds)
    /// must stay under the budget fraction.
    LatencyOver {
        /// The latency target; values at or above it spend budget.
        target: u64,
    },
}

/// One declarative objective: at most `budget` of events may be bad.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Objective name, used in flight-recorder events and summaries.
    pub name: &'static str,
    /// What counts as a bad event.
    pub kind: SloKind,
    /// Error budget as a fraction of events in `(0, 1)`.
    pub budget: f64,
    /// Fast-window length in observation batches.
    pub fast_window: usize,
    /// Slow-window length in observation batches.
    pub slow_window: usize,
    /// Fast burn at or above which the flight recorder arms.
    pub arm_burn: f64,
    /// Confidence at which the uncertainty gate trips (consumed by
    /// `monitor::slo::SloBurnGate`).
    pub trip_confidence: f64,
}

impl SloSpec {
    /// An error-fraction objective with the standard windows (fast 4,
    /// slow 16 batches), arming at burn 1.0 and tripping at 95 %
    /// confidence.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < budget < 1`.
    pub fn error_fraction(name: &'static str, budget: f64) -> Self {
        assert!(
            budget > 0.0 && budget < 1.0,
            "error budget must be a fraction in (0, 1)"
        );
        SloSpec {
            name,
            kind: SloKind::ErrorFraction,
            budget,
            fast_window: 4,
            slow_window: 16,
            arm_burn: 1.0,
            trip_confidence: 0.95,
        }
    }

    /// A latency objective: at most `budget` of observations may sit at
    /// or above `target` (same windows and gates as
    /// [`SloSpec::error_fraction`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < budget < 1`.
    pub fn latency(name: &'static str, target: u64, budget: f64) -> Self {
        SloSpec {
            kind: SloKind::LatencyOver { target },
            ..SloSpec::error_fraction(name, budget)
        }
    }

    /// Derives `(good, bad)` counts for one observation batch captured
    /// as a latency sketch (only meaningful for latency objectives; an
    /// error-fraction objective counts its own events).
    pub fn classify_sketch(&self, sketch: &Sketch) -> (u64, u64) {
        match self.kind {
            SloKind::ErrorFraction => (sketch.count(), 0),
            SloKind::LatencyOver { target } => {
                let bad = sketch.count_over(target);
                (sketch.count() - bad, bad)
            }
        }
    }
}

/// One evaluated observation batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnObservation {
    /// Burn rate of this batch alone (`fraction / budget`).
    pub batch_burn: f64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Whether the attached flight recorder is armed after this batch.
    pub armed: bool,
}

/// Multi-window burn-rate tracker over batched `(good, bad)` counts.
///
/// # Examples
///
/// ```
/// use dynplat_obs::slo::{BurnTracker, SloSpec};
///
/// let mut t = BurnTracker::new(SloSpec::error_fraction("doc.slo", 0.05));
/// let quiet = t.observe(31, 1); // 1/32 bad = 0.625x budget
/// assert!(quiet.batch_burn < 1.0);
/// let burning = t.observe(16, 16); // 50% bad = 10x budget
/// assert!(burning.batch_burn > 5.0);
/// assert!(burning.fast_burn > 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct BurnTracker {
    spec: SloSpec,
    /// `(good, bad)` per batch, newest last; bounded by `slow_window`
    /// (which must not be shorter than `fast_window`).
    ring: Vec<(u64, u64)>,
    armed: bool,
    flight: Option<Arc<FlightRecorder>>,
}

impl BurnTracker {
    /// A tracker for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if either window is empty or the fast window is longer
    /// than the slow one.
    pub fn new(spec: SloSpec) -> Self {
        assert!(spec.fast_window > 0, "fast window must be non-empty");
        assert!(
            spec.fast_window <= spec.slow_window,
            "fast window must not exceed the slow window"
        );
        BurnTracker {
            ring: Vec::with_capacity(spec.slow_window),
            armed: false,
            flight: None,
            spec,
        }
    }

    /// The objective in force.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Attaches a flight recorder: the tracker arms it when the fast
    /// burn crosses [`SloSpec::arm_burn`] and records the crossing.
    pub fn attach_flight_recorder(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// Whether the fast burn has the recorder armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Ingests one observation batch and returns the burn rates.
    /// `at_ns` stamps flight-recorder arming events.
    pub fn observe_at(&mut self, at_ns: u64, good: u64, bad: u64) -> BurnObservation {
        if self.ring.len() == self.spec.slow_window {
            self.ring.remove(0);
        }
        self.ring.push((good, bad));
        let batch_burn = self.burn_over(1);
        let fast_burn = self.burn_over(self.spec.fast_window);
        let slow_burn = self.burn_over(self.spec.slow_window);
        // Arm on the fast window (react fast), clear on it too (recover
        // fast): hysteresis at half the arming level prevents flapping.
        if !self.armed && fast_burn >= self.spec.arm_burn {
            self.armed = true;
            if let Some(fr) = &self.flight {
                fr.arm();
                fr.record(
                    at_ns,
                    crate::trace::TraceCtx::NONE,
                    "obs.slo.burn",
                    format!(
                        "slo {} armed: fast burn {:.3} >= {:.3}",
                        self.spec.name, fast_burn, self.spec.arm_burn
                    ),
                );
            }
        } else if self.armed && fast_burn < self.spec.arm_burn * 0.5 {
            self.armed = false;
        }
        BurnObservation {
            batch_burn,
            fast_burn,
            slow_burn,
            armed: self.armed,
        }
    }

    /// [`BurnTracker::observe_at`] without a flight timestamp.
    pub fn observe(&mut self, good: u64, bad: u64) -> BurnObservation {
        self.observe_at(0, good, bad)
    }

    /// Discards ring state and disarms, for gating a fresh episode.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.armed = false;
    }

    /// Burn rate over the newest `window` batches (all batches when
    /// fewer have been observed); 0.0 before any events.
    fn burn_over(&self, window: usize) -> f64 {
        let start = self.ring.len().saturating_sub(window);
        let (mut good, mut bad) = (0u64, 0u64);
        for &(g, b) in &self.ring[start..] {
            good += g;
            bad += b;
        }
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.spec.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_is_fraction_over_budget() {
        let mut t = BurnTracker::new(SloSpec::error_fraction("t", 0.10));
        let o = t.observe(90, 10); // fraction 0.10 == budget
        assert!((o.batch_burn - 1.0).abs() < 1e-12);
        assert!((o.fast_burn - 1.0).abs() < 1e-12);
        let o = t.observe(50, 50);
        assert!((o.batch_burn - 5.0).abs() < 1e-12);
        // Fast window (4) now spans both batches: 60/200 bad over 0.10.
        assert!((o.fast_burn - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fast_and_slow_windows_diverge() {
        let mut t = BurnTracker::new(SloSpec::error_fraction("t", 0.10));
        for _ in 0..16 {
            t.observe(100, 0);
        }
        let mut last = t.observe(0, 100);
        for _ in 0..3 {
            last = t.observe(0, 100);
        }
        assert!(
            (last.fast_burn - 10.0).abs() < 1e-12,
            "fast window is all-bad: {last:?}"
        );
        assert!(
            last.slow_burn < 3.0,
            "slow window still mostly clean: {last:?}"
        );
    }

    #[test]
    fn arming_follows_fast_burn_with_hysteresis() {
        let flight = Arc::new(FlightRecorder::new(16));
        let mut t = BurnTracker::new(SloSpec::error_fraction("arm.test", 0.10));
        t.attach_flight_recorder(flight.clone());
        t.observe_at(10, 100, 0);
        assert!(!t.is_armed());
        let o = t.observe_at(20, 50, 50);
        assert!(o.armed, "fast burn {} should arm", o.fast_burn);
        assert!(flight.is_armed(), "recorder armed with the tracker");
        assert!(flight
            .events()
            .iter()
            .any(|e| e.stage == "obs.slo.burn" && e.detail.contains("arm.test")));
        // A long quiet run clears the fast window below half the level.
        let mut o = t.observe_at(30, 1_000, 0);
        for k in 0..4 {
            o = t.observe_at(40 + k, 1_000, 0);
        }
        assert!(!o.armed, "quiet fast window must disarm: {o:?}");
    }

    #[test]
    fn latency_spec_classifies_sketches() {
        let spec = SloSpec::latency("lat", 1_000, 0.05);
        let mut sk = Sketch::new();
        for v in [10u64, 20, 512, 2_000, 4_000] {
            sk.record(v);
        }
        let (good, bad) = spec.classify_sketch(&sk);
        assert_eq!(good + bad, 5);
        assert_eq!(bad, 2, "two observations in buckets above the target");
        let ef = SloSpec::error_fraction("ef", 0.05);
        assert_eq!(ef.classify_sketch(&sk), (5, 0));
    }

    #[test]
    fn reset_clears_windows_and_arming() {
        let mut t = BurnTracker::new(SloSpec::error_fraction("t", 0.05));
        t.observe(0, 100);
        assert!(t.is_armed());
        t.reset();
        assert!(!t.is_armed());
        let o = t.observe(100, 0);
        assert_eq!(o.slow_burn, 0.0);
    }

    #[test]
    #[should_panic(expected = "error budget must be a fraction")]
    fn whole_budget_panics() {
        SloSpec::error_fraction("bad", 1.0);
    }
}
