//! Fixed-capacity time series of registry snapshots
//! (`dynplat.telemetry.v1`).
//!
//! A [`crate::MetricsSnapshot`] is one instant; fleet operations need the
//! *trajectory* — error fractions per wave, queue depths per window —
//! without shipping a full snapshot per sample. A [`TelemetryRing`] keeps
//! the last `capacity` periodic samples of counters and gauges and
//! exports them delta-encoded: the first point is absolute, every later
//! point carries only the names whose values changed, counters as
//! wrapping `u64` deltas (lossless even across resets, since
//! `prev.wrapping_add(delta)` inverts `cur.wrapping_sub(prev)` exactly)
//! and gauges as absolute values.
//!
//! Encoding is deterministic (sorted names, fixed layout), so the merged
//! fleet telemetry of a seeded campaign is byte-identical across shard
//! counts and reruns — the same invariant CI pins for E15 results.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, JsonValue};
use crate::snapshot::MetricsSnapshot;

/// Schema tag stamped into every telemetry JSON document.
pub const TELEMETRY_SCHEMA: &str = "dynplat.telemetry.v1";

/// One absolute sample: every counter and gauge value at `t_ns`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sample time in simulated nanoseconds.
    pub t_ns: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
}

/// A bounded ring of periodic snapshot samples.
///
/// # Examples
///
/// ```
/// use dynplat_obs::{MetricsRegistry, TelemetryRing};
///
/// let registry = MetricsRegistry::new();
/// let mut ring = TelemetryRing::new(16);
/// registry.counter("doc.events").add(3);
/// ring.sample(1_000, &registry.snapshot());
/// registry.counter("doc.events").add(2);
/// ring.sample(2_000, &registry.snapshot());
/// let encoded = ring.to_json();
/// let decoded = TelemetryRing::from_json(&encoded).unwrap();
/// assert_eq!(decoded.points(), ring.points());
/// assert_eq!(decoded.to_json(), encoded);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryRing {
    capacity: usize,
    points: Vec<SeriesPoint>,
}

impl TelemetryRing {
    /// A ring retaining the `capacity` most recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "telemetry ring capacity must be non-zero");
        TelemetryRing {
            capacity,
            points: Vec::new(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one sample of `snapshot` at `t_ns`, evicting the oldest
    /// sample when full. Histogram and sketch aggregates are not carried
    /// per point — flush the quantiles you need into gauges first (that
    /// is the sanctioned sketch/timeseries path; see the
    /// `no-snapshot-in-hot-path` lint).
    pub fn sample(&mut self, t_ns: u64, snapshot: &MetricsSnapshot) {
        self.push(SeriesPoint {
            t_ns,
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
        });
    }

    /// Appends a pre-built point, evicting the oldest when full.
    pub fn push(&mut self, point: SeriesPoint) {
        if self.points.len() == self.capacity {
            self.points.remove(0);
        }
        self.points.push(point);
    }

    /// The retained samples, oldest first (absolute values).
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The delta-encoded JSON document (schema [`TELEMETRY_SCHEMA`]).
    ///
    /// Layout: the first point is absolute (`counters`/`gauges`); every
    /// later point lists only changed names — counters under `dc` as
    /// wrapping deltas, gauges under `dg` as absolute values. Names never
    /// seen before delta against 0; names omitted carry forward.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{TELEMETRY_SCHEMA}\",");
        let _ = writeln!(out, "  \"capacity\": {},", self.capacity);
        out.push_str("  \"points\": [");
        let mut prev: Option<&SeriesPoint> = None;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"t_ns\": {}", p.t_ns);
            match prev {
                None => {
                    write_map(&mut out, "counters", p.counters.iter());
                    write_map(&mut out, "gauges", p.gauges.iter());
                }
                Some(base) => {
                    let dc: Vec<(&String, u64)> = p
                        .counters
                        .iter()
                        .filter(|(k, v)| base.counters.get(*k) != Some(v))
                        .map(|(k, v)| {
                            (
                                k,
                                v.wrapping_sub(base.counters.get(k).copied().unwrap_or(0)),
                            )
                        })
                        .collect();
                    let dg: Vec<(&String, i64)> = p
                        .gauges
                        .iter()
                        .filter(|(k, v)| base.gauges.get(*k) != Some(v))
                        .map(|(k, v)| (k, *v))
                        .collect();
                    write_map(&mut out, "dc", dc.iter().map(|(k, v)| (*k, v)));
                    write_map(&mut out, "dg", dg.iter().map(|(k, v)| (*k, v)));
                }
            }
            out.push('}');
            prev = Some(p);
        }
        out.push_str(if self.points.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a telemetry document back into absolute points.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed element.
    pub fn from_json(input: &str) -> Result<TelemetryRing, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let obj = doc.as_object().ok_or("telemetry must be a JSON object")?;
        let schema = obj
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("telemetry missing schema")?;
        if schema != TELEMETRY_SCHEMA {
            return Err(format!("unknown telemetry schema {schema:?}"));
        }
        let capacity = obj
            .get("capacity")
            .and_then(JsonValue::as_u64)
            .ok_or("telemetry missing capacity")? as usize;
        if capacity == 0 {
            return Err("telemetry capacity must be non-zero".to_owned());
        }
        let mut ring = TelemetryRing::new(capacity);
        let points = obj
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("telemetry missing points")?;
        let mut prev: Option<SeriesPoint> = None;
        for (i, pt) in points.iter().enumerate() {
            let t_ns = pt
                .get("t_ns")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("point {i} missing t_ns"))?;
            let mut point = match &prev {
                None => SeriesPoint {
                    t_ns,
                    counters: read_u64_map(pt, "counters", i)?,
                    gauges: read_i64_map(pt, "gauges", i)?,
                },
                Some(base) => {
                    let mut point = SeriesPoint {
                        t_ns,
                        counters: base.counters.clone(),
                        gauges: base.gauges.clone(),
                    };
                    for (k, d) in read_u64_map(pt, "dc", i)? {
                        let cur = point.counters.get(&k).copied().unwrap_or(0);
                        point.counters.insert(k, cur.wrapping_add(d));
                    }
                    for (k, v) in read_i64_map(pt, "dg", i)? {
                        point.gauges.insert(k, v);
                    }
                    point
                }
            };
            point.t_ns = t_ns;
            prev = Some(point.clone());
            ring.push(point);
        }
        Ok(ring)
    }
}

fn write_map<'a, V: std::fmt::Display + 'a>(
    out: &mut String,
    key: &str,
    entries: impl Iterator<Item = (&'a String, V)>,
) {
    let _ = write!(out, ", \"{key}\": {{");
    for (i, (name, value)) in entries.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", json::escape(name), value);
    }
    out.push('}');
}

fn read_u64_map(pt: &JsonValue, key: &str, i: usize) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    if let Some(m) = pt.get(key) {
        let m = m
            .as_object()
            .ok_or_else(|| format!("point {i} {key} must be an object"))?;
        for (k, v) in m {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("point {i} {key} {k} not u64"))?;
            out.insert(k.clone(), v);
        }
    }
    Ok(out)
}

fn read_i64_map(pt: &JsonValue, key: &str, i: usize) -> Result<BTreeMap<String, i64>, String> {
    let mut out = BTreeMap::new();
    if let Some(m) = pt.get(key) {
        let m = m
            .as_object()
            .ok_or_else(|| format!("point {i} {key} must be an object"))?;
        for (k, v) in m {
            let v = v
                .as_i64()
                .ok_or_else(|| format!("point {i} {key} {k} not i64"))?;
            out.insert(k.clone(), v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn ring_of(registry: &MetricsRegistry, steps: &[(u64, u64)]) -> TelemetryRing {
        let mut ring = TelemetryRing::new(8);
        let c = registry.counter("ts.test.events");
        let g = registry.gauge("ts.test.level");
        for &(t, add) in steps {
            c.add(add);
            g.set(add as i64 - 1);
            ring.sample(t, &registry.snapshot());
        }
        ring
    }

    #[test]
    fn round_trip_is_lossless_and_byte_stable() {
        let registry = MetricsRegistry::new();
        let ring = ring_of(&registry, &[(100, 3), (200, 0), (300, 7)]);
        let encoded = ring.to_json();
        let decoded = TelemetryRing::from_json(&encoded).expect("parse");
        assert_eq!(decoded.points(), ring.points());
        assert_eq!(decoded.capacity(), ring.capacity());
        assert_eq!(decoded.to_json(), encoded, "re-encoding is byte-identical");
    }

    #[test]
    fn unchanged_values_are_omitted_from_deltas() {
        let registry = MetricsRegistry::new();
        let ring = ring_of(&registry, &[(100, 3), (200, 0)]);
        let encoded = ring.to_json();
        // The second point changed the gauge (3-1=2 -> -1) but not the
        // counter, so `dc` must be empty while `dg` carries the gauge.
        let second = encoded
            .split("{\"t_ns\": 200")
            .nth(1)
            .expect("second point");
        assert!(second.starts_with(", \"dc\": {}"), "got {second}");
        assert!(second.contains("\"dg\": {\"ts.test.level\": -1}"));
    }

    #[test]
    fn counter_reset_survives_via_wrapping_deltas() {
        let mut ring = TelemetryRing::new(4);
        let mut p1 = SeriesPoint {
            t_ns: 1,
            ..Default::default()
        };
        p1.counters.insert("c".into(), 10);
        let mut p2 = SeriesPoint {
            t_ns: 2,
            ..Default::default()
        };
        p2.counters.insert("c".into(), 3); // registry was reset mid-series
        ring.push(p1);
        ring.push(p2);
        let decoded = TelemetryRing::from_json(&ring.to_json()).expect("parse");
        assert_eq!(decoded.points()[1].counters["c"], 3);
    }

    #[test]
    fn ring_evicts_oldest() {
        let registry = MetricsRegistry::new();
        let mut ring = TelemetryRing::new(2);
        for t in 1..=5u64 {
            registry.counter("ts.evict").inc();
            ring.sample(t, &registry.snapshot());
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.points()[0].t_ns, 4);
        assert_eq!(ring.points()[1].counters["ts.evict"], 5);
    }

    #[test]
    fn late_appearing_names_delta_against_zero() {
        let mut ring = TelemetryRing::new(4);
        ring.push(SeriesPoint {
            t_ns: 1,
            ..Default::default()
        });
        let mut p2 = SeriesPoint {
            t_ns: 2,
            ..Default::default()
        };
        p2.counters.insert("born.late".into(), 9);
        ring.push(p2);
        let decoded = TelemetryRing::from_json(&ring.to_json()).expect("parse");
        assert_eq!(decoded.points()[1].counters["born.late"], 9);
        assert!(decoded.points()[0].counters.is_empty());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(TelemetryRing::from_json("[]").is_err());
        assert!(TelemetryRing::from_json("{\"schema\": \"other.v1\"}").is_err());
        assert!(TelemetryRing::from_json(
            "{\"schema\": \"dynplat.telemetry.v1\", \"capacity\": 0, \"points\": []}"
        )
        .is_err());
        assert!(TelemetryRing::from_json(
            "{\"schema\": \"dynplat.telemetry.v1\", \"capacity\": 2, \"points\": [{\"t_ns\": 1, \"counters\": {\"a\": -4}}]}"
        )
        .is_err());
    }

    #[test]
    fn empty_ring_round_trips() {
        let ring = TelemetryRing::new(3);
        let decoded = TelemetryRing::from_json(&ring.to_json()).expect("parse");
        assert_eq!(decoded, ring);
    }
}
