//! Mergeable log-bucketed quantile sketches (DDSketch-style, integer-only).
//!
//! The fixed 1–2–5 [`crate::Histogram`] answers "what is p99 on *this*
//! process", but a fleet campaign needs quantiles over 10⁵–10⁶ vehicles
//! whose observations were aggregated per shard and merged afterwards.
//! That demands a sketch whose merge is **associative and commutative** —
//! any shard count, any merge order, byte-identical aggregate — and whose
//! bucket mapping is exact integer arithmetic, because a `log()` call is
//! exactly the kind of libm dispersion the workspace bans from
//! deterministic paths (see [`crate::span`] on wall time and
//! `monitor::uncertainty::normal_cdf` on erf).
//!
//! The mapping is HDR-style log-linear: values below 32 are exact, and
//! every power-of-two range above is split into 32 linear sub-buckets, so
//! the relative quantile error is bounded by 1/32 ≈ 3.1 % over the whole
//! `u64` range. Buckets are kept sparse (sorted `(index, count)` pairs):
//! an empty sketch is 5 words, and a latency distribution typically
//! occupies a few dozen buckets, cheap enough to embed one per pipeline
//! stage in every `fleet::ShardMetrics`.

use std::sync::Mutex;

/// Number of linear sub-buckets per power-of-two range, as a bit count.
pub const SKETCH_SUBBITS: u32 = 5;

/// Number of linear sub-buckets per power-of-two range (32).
pub const SKETCH_SUB: u64 = 1 << SKETCH_SUBBITS;

/// Exclusive upper bound on sketch bucket indices: values 0–31 map to
/// exact buckets 0–31, and each of the 59 covered exponent ranges above
/// contributes [`SKETCH_SUB`] sub-buckets (`32 + 59·32 = 1920`).
pub const SKETCH_MAX_INDEX: u16 = (SKETCH_SUB + (64 - SKETCH_SUBBITS as u64) * SKETCH_SUB) as u16;

/// Bucket index of `value`: exact below [`SKETCH_SUB`], log-linear above.
/// Pure integer arithmetic — no floats, no libm, no platform dispersion.
#[inline]
pub fn sketch_bucket_index(value: u64) -> u16 {
    if value < SKETCH_SUB {
        return value as u16;
    }
    let exp = 63 - value.leading_zeros(); // >= SKETCH_SUBBITS here
    let sub = (value >> (exp - SKETCH_SUBBITS)) - SKETCH_SUB;
    (SKETCH_SUB + (exp - SKETCH_SUBBITS) as u64 * SKETCH_SUB + sub) as u16
}

/// Smallest value mapping to bucket `index`.
#[inline]
pub fn sketch_bucket_lower(index: u16) -> u64 {
    let i = index as u64;
    if i < SKETCH_SUB {
        return i;
    }
    let exp = (i - SKETCH_SUB) / SKETCH_SUB;
    let sub = (i - SKETCH_SUB) % SKETCH_SUB;
    (SKETCH_SUB + sub) << exp
}

/// Largest value mapping to bucket `index` (inclusive).
#[inline]
pub fn sketch_bucket_upper(index: u16) -> u64 {
    if index as u32 + 1 >= SKETCH_MAX_INDEX as u32 {
        return u64::MAX;
    }
    sketch_bucket_lower(index + 1) - 1
}

/// A mergeable quantile sketch over `u64` observations.
///
/// Count, sum, min and max are exact; quantiles are bucketed with relative
/// error ≤ 1/32. [`Sketch::merge`] is associative and commutative, and two
/// sketches built from the same multiset of observations — regardless of
/// recording order or merge tree — compare equal, which is what keeps
/// fleet aggregates byte-identical across shard counts.
///
/// # Examples
///
/// ```
/// use dynplat_obs::Sketch;
///
/// let mut a = Sketch::new();
/// let mut b = Sketch::new();
/// for v in 1..=600u64 {
///     if v % 2 == 0 { a.record(v) } else { b.record(v) }
/// }
/// let mut merged = a.clone();
/// merged.merge(&b);
/// assert_eq!(merged.count(), 600);
/// let p50 = merged.quantile(0.5);
/// assert!((270..=330).contains(&p50), "p50 {p50} within 1/32 of 300");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sketch {
    /// Sparse non-empty buckets, sorted by index.
    buckets: Vec<(u16, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Sketch {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Sketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Sketch::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations in one shot (the pre-aggregated
    /// merge primitive, mirroring [`crate::Histogram::record_n`]).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = sketch_bucket_index(value);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (idx, n)),
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Associative and commutative: any merge
    /// tree over the same sketches yields the identical result.
    pub fn merge(&mut self, other: &Sketch) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    merged.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    merged.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (nearest rank, `q` in `[0, 1]`), clamped to the exact observed
    /// min/max; 0 when empty. Relative error ≤ 1/32.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(idx, n) in &self.buckets {
            acc += n;
            if acc >= target {
                return sketch_bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Observations in buckets that lie entirely at or above `threshold`
    /// — the "slow request" counter behind latency SLOs. Boundary-bucket
    /// observations are excluded, so the count can undershoot by at most
    /// the one bucket straddling `threshold` (≤ 1/32 relative error in the
    /// threshold itself).
    pub fn count_over(&self, threshold: u64) -> u64 {
        let first = sketch_bucket_index(threshold);
        // Buckets strictly above `first` lie entirely >= threshold;
        // `first` itself qualifies only when the threshold sits on its
        // lower edge.
        let exact = sketch_bucket_lower(first) == threshold;
        self.buckets
            .iter()
            .filter(|&&(i, _)| i > first || (exact && i == first))
            .map(|&(_, n)| n)
            .sum()
    }

    /// Sparse non-empty `(bucket_index, count)` pairs, sorted by index.
    pub fn nonzero_buckets(&self) -> &[(u16, u64)] {
        &self.buckets
    }

    /// A serializable point-in-time copy.
    pub fn to_snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self.buckets.clone(),
        }
    }
}

/// Aggregate state of one [`Sketch`] at snapshot time. The derived
/// quantiles (`p50`/`p95`/`p99`) are recomputed on merge, so a merged
/// snapshot equals the snapshot of the merged sketch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate (bucket upper bound, clamped to `[min, max]`).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Sparse non-empty `(bucket_index, count)` pairs, sorted by index.
    pub buckets: Vec<(u16, u64)>,
}

impl SketchSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate recomputed from the stored buckets (nearest
    /// rank), clamped to `[min, max]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(idx, n) in &self.buckets {
            acc += n;
            if acc >= target {
                return sketch_bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`, recomputing the derived quantiles.
    /// Associative and commutative like [`Sketch::merge`].
    pub fn merge(&mut self, other: &SketchSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut sk = Sketch {
            buckets: std::mem::take(&mut self.buckets),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { u64::MAX } else { self.min },
            max: self.max,
        };
        let rhs = Sketch {
            buckets: other.buckets.clone(),
            count: other.count,
            sum: other.sum,
            min: other.min,
            max: other.max,
        };
        sk.merge(&rhs);
        *self = sk.to_snapshot();
    }
}

/// A shared, thread-safe sketch handle for the
/// [`crate::MetricsRegistry`]. Sketches are coarse-grained (a short
/// mutex-guarded update, not a hot-path atomic): the sanctioned pattern is
/// to accumulate into an owned [`Sketch`] per worker and merge once per
/// batch, exactly like [`crate::LocalHistogram`] flushes.
#[derive(Debug, Default)]
pub struct SketchCell {
    inner: Mutex<Sketch>,
}

impl SketchCell {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.inner.lock().expect("sketch lock").record(value);
    }

    /// Records `n` identical observations.
    pub fn record_n(&self, value: u64, n: u64) {
        self.inner.lock().expect("sketch lock").record_n(value, n);
    }

    /// Folds a pre-aggregated sketch into the shared cell — the flush
    /// primitive for per-worker accumulators.
    pub fn merge(&self, other: &Sketch) {
        self.inner.lock().expect("sketch lock").merge(other);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.lock().expect("sketch lock").count()
    }

    /// Quantile estimate (see [`Sketch::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.lock().expect("sketch lock").quantile(q)
    }

    /// A serializable point-in-time copy.
    pub fn snapshot(&self) -> SketchSnapshot {
        self.inner.lock().expect("sketch lock").to_snapshot()
    }

    pub(crate) fn reset(&self) {
        *self.inner.lock().expect("sketch lock") = Sketch::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SKETCH_SUB {
            assert_eq!(sketch_bucket_index(v) as u64, v);
            assert_eq!(sketch_bucket_lower(v as u16), v);
            if v + 1 < SKETCH_SUB {
                assert_eq!(sketch_bucket_upper(v as u16), v);
            }
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_self_consistent() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1_000,
            1_000_000,
            u32::MAX as u64,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0u16;
        for (k, &v) in probes.iter().enumerate() {
            let idx = sketch_bucket_index(v);
            assert!(
                sketch_bucket_lower(idx) <= v && v <= sketch_bucket_upper(idx),
                "value {v} outside its bucket {idx}"
            );
            if k > 0 {
                assert!(idx >= last, "index not monotone at {v}");
            }
            last = idx;
        }
        assert!(sketch_bucket_index(u64::MAX) < SKETCH_MAX_INDEX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Every bucket above the exact range spans < 1/32 of its lower
        // bound, so the quantile's relative error stays under ~3.1 %.
        for idx in SKETCH_SUB as u16..SKETCH_MAX_INDEX - 1 {
            let lo = sketch_bucket_lower(idx);
            let hi = sketch_bucket_upper(idx);
            assert!(hi - lo < lo / (SKETCH_SUB - 1) + 1, "bucket {idx} too wide");
        }
    }

    #[test]
    fn quantiles_track_a_uniform_stream() {
        let mut s = Sketch::new();
        for v in 1..=10_000u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.sum(), 50_005_000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 10_000);
        for (q, truth) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = s.quantile(q);
            let err = est.abs_diff(truth) as f64 / truth as f64;
            assert!(err <= 1.0 / 31.0, "q{q}: {est} vs {truth} (err {err})");
        }
    }

    #[test]
    fn merge_is_order_invariant_and_conserving() {
        let mut parts: Vec<Sketch> = (0..4).map(|_| Sketch::new()).collect();
        let mut whole = Sketch::new();
        for v in 0..1_000u64 {
            let x = v * v % 7_919 + 1;
            parts[(v % 4) as usize].record(x);
            whole.record(x);
        }
        let mut fwd = Sketch::new();
        for p in &parts {
            fwd.merge(&p.clone());
        }
        let mut rev = Sketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev, "merge must be commutative");
        assert_eq!(fwd, whole, "merge must equal direct recording");
        assert_eq!(fwd.count(), 1_000);
        assert_eq!(fwd.sum(), whole.sum());
    }

    #[test]
    fn empty_sketch_is_all_zero_and_merge_identity() {
        let empty = Sketch::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.min(), 0);
        let mut s = Sketch::new();
        s.record(42);
        let before = s.clone();
        s.merge(&empty);
        assert_eq!(s, before, "merging an empty sketch is the identity");
    }

    #[test]
    fn count_over_splits_at_bucket_edges() {
        let mut s = Sketch::new();
        for v in [10u64, 20, 30, 40, 100, 1_000] {
            s.record(v);
        }
        assert_eq!(s.count_over(0), 6);
        assert_eq!(s.count_over(30), 4, "exact edge includes its bucket");
        assert_eq!(s.count_over(1_001), 0);
        assert_eq!(Sketch::new().count_over(5), 0);
    }

    #[test]
    fn snapshot_merge_matches_sketch_merge() {
        let mut a = Sketch::new();
        let mut b = Sketch::new();
        for v in 0..500u64 {
            if v % 3 == 0 {
                a.record(v * 17 + 1);
            } else {
                b.record(v * 13 + 5);
            }
        }
        let mut via_snapshot = a.to_snapshot();
        via_snapshot.merge(&b.to_snapshot());
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(via_snapshot, direct.to_snapshot());
        assert_eq!(via_snapshot.quantile(0.95), via_snapshot.p95);
    }

    #[test]
    fn cell_roundtrips_and_resets() {
        let cell = SketchCell::default();
        cell.record(5);
        cell.record_n(50, 3);
        let mut local = Sketch::new();
        local.record(500);
        cell.merge(&local);
        assert_eq!(cell.count(), 5);
        let snap = cell.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.max, 500);
        cell.reset();
        assert_eq!(cell.count(), 0);
    }
}
