//! Causal trace contexts and the black-box flight recorder.
//!
//! [`TraceCtx`] is the unit of cross-crate causality: a `(trace_id, span)`
//! pair stamped on a message when it enters the platform and inherited by
//! everything that message causes — fabric hops, RPC responses, stream
//! chunks, scheduler dispatch, degradation transitions. One trace id then
//! reconstructs the full cross-ECU chain from any event log.
//!
//! [`FlightRecorder`] is the aircraft-style black box: a bounded ring of
//! trace-stamped [`TraceEvent`]s that keeps recording in steady state and,
//! when a trigger fires (fault detection, deadline miss, degradation
//! ladder transition), freezes a [`FlightDump`] — the last-N events plus a
//! point-in-time metrics snapshot — so the window *around* an incident
//! survives even though the ring itself keeps rolling.
//!
//! Everything is deterministic: timestamps are simulated nanoseconds
//! supplied by the caller, never wall time.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;
use crate::metrics::MetricsRegistry;
use crate::snapshot::MetricsSnapshot;

/// Schema tag stamped into every flight-dump JSON document.
pub const FLIGHT_SCHEMA: &str = "dynplat.flight.v1";

/// A causal trace context: trace id plus the id of the span (or message
/// leg) that produced the current work item.
///
/// `trace_id == 0` is reserved for "untraced" ([`TraceCtx::NONE`]); the
/// wire codec and the fabric skip all trace work for such messages, which
/// keeps the PR 3 fast path at a single branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// Identifies the causal chain; stable across hops, responses and
    /// chunks. Zero means "no trace".
    pub trace_id: u64,
    /// Parent span (or message-leg) id within the trace.
    pub span: u64,
}

impl TraceCtx {
    /// The untraced context: carried for free, recorded nowhere.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span: 0,
    };

    /// A context with an explicit trace id and span.
    pub const fn new(trace_id: u64, span: u64) -> Self {
        TraceCtx { trace_id, span }
    }

    /// The root context of a new trace (span 0).
    pub const fn root(trace_id: u64) -> Self {
        TraceCtx { trace_id, span: 0 }
    }

    /// Whether this context belongs to a real trace.
    pub const fn is_active(self) -> bool {
        self.trace_id != 0
    }

    /// The same trace continued under a new span id — e.g. an RPC
    /// response inheriting the request's trace, or a stream chunk index.
    pub const fn child(self, span: u64) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            span,
        }
    }
}

/// One trace-stamped platform event in the flight-recorder ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time in nanoseconds.
    pub time_ns: u64,
    /// Causal context of the event ([`TraceCtx::NONE`] for platform-level
    /// events such as fault injections).
    pub trace: TraceCtx,
    /// Which pipeline stage emitted the event (e.g. `"comm.fabric.send"`).
    pub stage: &'static str,
    /// Free-form detail ("src=1 dst=2 class=Critical").
    pub detail: String,
}

/// A frozen incident window: the events that led up to a trigger plus the
/// metric state at that instant.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightDump {
    /// Dump sequence number within the recorder (0 = first incident).
    pub seq: u64,
    /// Trigger time in simulated nanoseconds.
    pub time_ns: u64,
    /// Why the dump was frozen ("deadline miss", "ladder transition", …).
    pub reason: String,
    /// The ring contents at trigger time, oldest first.
    pub events: Vec<TraceEvent>,
    /// Point-in-time metrics (empty when the recorder has no registry).
    pub metrics: MetricsSnapshot,
}

impl FlightDump {
    /// Serializes the dump as a JSON document (schema
    /// [`FLIGHT_SCHEMA`]), parseable by [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{FLIGHT_SCHEMA}\",");
        let _ = writeln!(out, "  \"seq\": {},", self.seq);
        let _ = writeln!(out, "  \"time_ns\": {},", self.time_ns);
        let _ = writeln!(out, "  \"reason\": \"{}\",", json::escape(&self.reason));
        out.push_str("  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"time_ns\": {}, \"trace_id\": {}, \"span\": {}, \
                 \"stage\": \"{}\", \"detail\": \"{}\"}}",
                e.time_ns,
                e.trace.trace_id,
                e.trace.span,
                json::escape(e.stage),
                json::escape(&e.detail)
            );
        }
        out.push_str(if self.events.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        // Embed the snapshot document, re-indented to nest cleanly.
        out.push_str("  \"metrics\": ");
        let snap = self.metrics.to_json();
        for (i, line) in snap.trim_end().lines().enumerate() {
            if i > 0 {
                out.push_str("\n  ");
            }
            out.push_str(line);
        }
        out.push_str("\n}\n");
        out
    }
}

#[derive(Debug)]
struct FlightInner {
    events: VecDeque<TraceEvent>,
    total_events: u64,
    dumps: Vec<FlightDump>,
    dumps_suppressed: u64,
}

/// A bounded, trigger-freezing event recorder.
///
/// Disabled by default so idle instrumentation costs one atomic load;
/// [`FlightRecorder::arm`] enables recording *and* allows triggers to
/// freeze dumps. The first [`FlightRecorder::max_dumps`] incidents are
/// kept (a black box preserves the *first* failure; later triggers are
/// usually consequences) and counted thereafter.
///
/// # Examples
///
/// ```
/// use dynplat_obs::{FlightRecorder, TraceCtx};
///
/// let fr = FlightRecorder::new(64);
/// fr.arm();
/// fr.record(10, TraceCtx::root(7), "comm.fabric.send", "dst=2");
/// fr.record(25, TraceCtx::root(7), "comm.fabric.deliver", "hops=1");
/// assert!(fr.trigger(30, "deadline miss").is_some());
/// let dumps = fr.dumps();
/// assert_eq!(dumps.len(), 1);
/// assert_eq!(dumps[0].events.len(), 2);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    armed: AtomicBool,
    capacity: usize,
    max_dumps: usize,
    registry: Option<Arc<MetricsRegistry>>,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder retaining the `capacity` most recent events, with no
    /// metrics registry (dumps carry an empty snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder::build(capacity, None)
    }

    /// A recorder whose dumps snapshot `registry` at trigger time.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_registry(capacity: usize, registry: Arc<MetricsRegistry>) -> Self {
        FlightRecorder::build(capacity, Some(registry))
    }

    fn build(capacity: usize, registry: Option<Arc<MetricsRegistry>>) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        FlightRecorder {
            enabled: AtomicBool::new(false),
            armed: AtomicBool::new(false),
            capacity,
            max_dumps: 8,
            registry,
            inner: Mutex::new(FlightInner {
                events: VecDeque::with_capacity(capacity.min(1024)),
                total_events: 0,
                dumps: Vec::new(),
                dumps_suppressed: 0,
            }),
        }
    }

    /// Enables recording and arms triggers.
    pub fn arm(&self) {
        self.enabled.store(true, Ordering::Release);
        self.armed.store(true, Ordering::Release);
    }

    /// Disables recording and disarms triggers (events are retained).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether [`FlightRecorder::record`] currently stores events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Whether triggers currently freeze dumps.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Maximum number of dumps retained (first-come).
    pub fn max_dumps(&self) -> usize {
        self.max_dumps
    }

    /// Records one event; a no-op unless the recorder is enabled.
    pub fn record(
        &self,
        time_ns: u64,
        trace: TraceCtx,
        stage: &'static str,
        detail: impl Into<String>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("flight lock");
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(TraceEvent {
            time_ns,
            trace,
            stage,
            detail: detail.into(),
        });
        inner.total_events += 1;
    }

    /// Freezes a dump of the current ring (plus a metrics snapshot) no
    /// matter the armed state; `None` when disabled or the dump quota is
    /// exhausted.
    pub fn trigger(&self, time_ns: u64, reason: &str) -> Option<FlightDump> {
        if !self.is_enabled() {
            return None;
        }
        let mut inner = self.inner.lock().expect("flight lock");
        if inner.dumps.len() >= self.max_dumps {
            inner.dumps_suppressed += 1;
            return None;
        }
        let dump = FlightDump {
            seq: inner.dumps.len() as u64,
            time_ns,
            reason: reason.to_owned(),
            events: inner.events.iter().cloned().collect(),
            metrics: self
                .registry
                .as_deref()
                .map(MetricsRegistry::snapshot)
                .unwrap_or_default(),
        };
        inner.dumps.push(dump.clone());
        Some(dump)
    }

    /// [`FlightRecorder::trigger`], but only when armed — the hook
    /// instrumented code calls at incident sites.
    pub fn trigger_if_armed(&self, time_ns: u64, reason: &str) -> Option<FlightDump> {
        if self.is_armed() {
            self.trigger(time_ns, reason)
        } else {
            None
        }
    }

    /// The frozen dumps, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner.lock().expect("flight lock").dumps.clone()
    }

    /// Triggers suppressed after the dump quota filled.
    pub fn dumps_suppressed(&self) -> u64 {
        self.inner.lock().expect("flight lock").dumps_suppressed
    }

    /// Current ring contents, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("flight lock");
        inner.events.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_events(&self) -> u64 {
        self.inner.lock().expect("flight lock").total_events
    }

    /// Clears events and dumps; enabled/armed state is unchanged.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("flight lock");
        inner.events.clear();
        inner.total_events = 0;
        inner.dumps.clear();
        inner.dumps_suppressed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_children_share_trace_id() {
        assert!(!TraceCtx::NONE.is_active());
        let root = TraceCtx::root(9);
        assert!(root.is_active());
        let child = root.child(4);
        assert_eq!(child.trace_id, 9);
        assert_eq!(child.span, 4);
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let fr = FlightRecorder::new(8);
        fr.record(1, TraceCtx::root(1), "stage", "detail");
        assert_eq!(fr.total_events(), 0);
        assert!(fr.trigger(2, "incident").is_none());
        assert!(fr.trigger_if_armed(2, "incident").is_none());
    }

    #[test]
    fn ring_evicts_oldest_and_dump_freezes_window() {
        let fr = FlightRecorder::new(3);
        fr.arm();
        for i in 0..5u64 {
            fr.record(i, TraceCtx::root(1).child(i), "s", format!("e{i}"));
        }
        assert_eq!(fr.total_events(), 5);
        let dump = fr.trigger_if_armed(9, "overflow").expect("dump");
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].detail, "e2");
        assert_eq!(dump.events[2].detail, "e4");
        // The ring keeps rolling after the freeze.
        fr.record(6, TraceCtx::NONE, "s", "e5");
        assert_eq!(fr.events().last().unwrap().detail, "e5");
        assert_eq!(fr.dumps().len(), 1);
    }

    #[test]
    fn dump_quota_keeps_first_incidents() {
        let fr = FlightRecorder::new(4);
        fr.arm();
        for i in 0..20u64 {
            fr.trigger(i, "t");
        }
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), fr.max_dumps());
        assert_eq!(dumps[0].time_ns, 0);
        assert_eq!(dumps.last().unwrap().time_ns, fr.max_dumps() as u64 - 1);
        assert_eq!(fr.dumps_suppressed(), 20 - fr.max_dumps() as u64);
    }

    #[test]
    fn dump_json_parses_and_carries_metrics() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("flight.test.counter").add(7);
        let fr = FlightRecorder::with_registry(8, registry);
        fr.arm();
        fr.record(5, TraceCtx::new(3, 1), "comm.send", "needs \"escaping\"\n");
        let dump = fr.trigger(6, "why: \"quoted\"").expect("dump");
        let doc = json::parse(&dump.to_json()).expect("valid json");
        let obj = doc.as_object().expect("object");
        assert_eq!(
            obj.get("schema").and_then(|v| v.as_str()),
            Some(FLIGHT_SCHEMA)
        );
        assert_eq!(obj.get("time_ns").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(
            obj.get("reason").and_then(|v| v.as_str()),
            Some("why: \"quoted\"")
        );
        let events = obj
            .get("events")
            .and_then(|v| v.as_array())
            .expect("events");
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("detail").and_then(|v| v.as_str()),
            Some("needs \"escaping\"\n")
        );
        let metrics = obj.get("metrics").expect("metrics");
        let counters = metrics.get("counters").and_then(|v| v.as_object()).unwrap();
        assert_eq!(
            counters.get("flight.test.counter").and_then(|v| v.as_u64()),
            Some(7)
        );
    }

    #[test]
    fn clear_resets_but_keeps_armed_state() {
        let fr = FlightRecorder::new(4);
        fr.arm();
        fr.record(1, TraceCtx::root(2), "s", "d");
        fr.trigger(2, "t");
        fr.clear();
        assert_eq!(fr.total_events(), 0);
        assert!(fr.dumps().is_empty());
        assert!(fr.is_armed());
    }
}
