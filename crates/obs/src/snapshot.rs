//! Point-in-time metric snapshots and their encoders.
//!
//! Two output shapes, one source of truth:
//!
//! * **Prometheus exposition** ([`MetricsSnapshot::to_prometheus`]) for
//!   humans and scrapers — names are sanitized (`.` → `_`), histograms
//!   are emitted with cumulative `_bucket{le=…}` rows;
//! * **`BENCH_*.json`** ([`MetricsSnapshot::to_json`] /
//!   [`MetricsSnapshot::from_json`]) — the machine-readable benchmark
//!   artifact CI uploads and the perf gate diffs. The JSON round-trips
//!   losslessly (see tests), so a checked-in baseline can be compared
//!   field by field.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, JsonValue};
use crate::sketch::SketchSnapshot;

/// Schema tag stamped into every JSON snapshot.
pub const SNAPSHOT_SCHEMA: &str = "dynplat.bench.v1";

/// Aggregate state of one histogram at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 95th percentile (bucket upper bound, clamped to `max`).
    pub p95: u64,
    /// 99th percentile (bucket upper bound, clamped to `max`).
    pub p99: u64,
    /// Non-empty `(upper_bound, count)` buckets; `u64::MAX` = overflow.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile recomputed from the stored buckets, clamped
    /// to `max`; 0 when empty. On a snapshot taken by
    /// [`crate::Histogram::snapshot`] this reproduces the stored
    /// `p50`/`p95`/`p99` exactly (both derive from the same bucket read).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(bound, n) in &self.buckets {
            acc += n;
            if acc >= target {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`, summing counts bucket-wise and
    /// recomputing the derived quantiles. Associative and commutative
    /// (order-invariant), so per-shard histogram snapshots can be merged
    /// in any tree without changing the aggregate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(bound, n) in &other.buckets {
            *merged.entry(bound).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.p50 = self.quantile(0.50);
        self.p95 = self.quantile(0.95);
        self.p99 = self.quantile(0.99);
    }
}

/// A point-in-time copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch aggregates by name.
    pub sketches: BTreeMap<String, SketchSnapshot>,
}

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` (Prometheus
/// metric-name charset).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// Prometheus text exposition of the snapshot.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n}_total counter");
            let _ = writeln!(out, "{n}_total {value}");
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut acc = 0u64;
            for (bound, count) in &h.buckets {
                acc += count;
                if *bound == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {acc}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        // Sketches expose as Prometheus summaries: pre-computed quantiles
        // plus sum/count (the sparse log-linear buckets have no faithful
        // `le=`-histogram shape, and a summary is what a scraper expects
        // of a quantile sketch).
        for (name, s) in &self.sketches {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{n}_sum {}", s.sum);
            let _ = writeln!(out, "{n}_count {}", s.count);
        }
        out
    }

    /// The `BENCH_*.json` encoding (deterministic key order, 2-space
    /// indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SNAPSHOT_SCHEMA}\",");
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json::escape(name), value);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        let mut first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json::escape(name), value);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json::escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
            for (i, (bound, count)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bound}, {count}]");
            }
            out.push_str("]}");
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"sketches\": {");
        let mut first = true;
        for (name, s) in &self.sketches {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json::escape(name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50,
                s.p95,
                s.p99
            );
            for (i, (idx, count)) in s.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{idx}, {count}]");
            }
            out.push_str("]}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Parses a snapshot back from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed element.
    pub fn from_json(input: &str) -> Result<MetricsSnapshot, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let obj = doc.as_object().ok_or("snapshot must be a JSON object")?;
        if let Some(schema) = obj.get("schema") {
            let s = schema.as_str().ok_or("schema must be a string")?;
            if s != SNAPSHOT_SCHEMA {
                return Err(format!("unknown snapshot schema {s:?}"));
            }
        }
        let mut snap = MetricsSnapshot::default();
        if let Some(counters) = obj.get("counters") {
            let m = counters.as_object().ok_or("counters must be an object")?;
            for (k, v) in m {
                let v = v.as_u64().ok_or_else(|| format!("counter {k} not u64"))?;
                snap.counters.insert(k.clone(), v);
            }
        }
        if let Some(gauges) = obj.get("gauges") {
            let m = gauges.as_object().ok_or("gauges must be an object")?;
            for (k, v) in m {
                let v = v.as_i64().ok_or_else(|| format!("gauge {k} not i64"))?;
                snap.gauges.insert(k.clone(), v);
            }
        }
        if let Some(histograms) = obj.get("histograms") {
            let m = histograms
                .as_object()
                .ok_or("histograms must be an object")?;
            for (k, v) in m {
                let field = |name: &str| -> Result<u64, String> {
                    v.get(name)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("histogram {k} missing {name}"))
                };
                let mut h = HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p95: field("p95")?,
                    p99: field("p99")?,
                    buckets: Vec::new(),
                };
                if let Some(buckets) = v.get("buckets") {
                    for pair in buckets
                        .as_array()
                        .ok_or_else(|| format!("histogram {k} buckets must be an array"))?
                    {
                        let pair = pair
                            .as_array()
                            .ok_or_else(|| format!("histogram {k} bucket must be a pair"))?;
                        if pair.len() != 2 {
                            return Err(format!("histogram {k} bucket must be a pair"));
                        }
                        let bound = pair[0]
                            .as_u64()
                            .ok_or_else(|| format!("histogram {k} bucket bound not u64"))?;
                        let count = pair[1]
                            .as_u64()
                            .ok_or_else(|| format!("histogram {k} bucket count not u64"))?;
                        h.buckets.push((bound, count));
                    }
                }
                snap.histograms.insert(k.clone(), h);
            }
        }
        if let Some(sketches) = obj.get("sketches") {
            let m = sketches.as_object().ok_or("sketches must be an object")?;
            for (k, v) in m {
                let field = |name: &str| -> Result<u64, String> {
                    v.get(name)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("sketch {k} missing {name}"))
                };
                let mut s = SketchSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p95: field("p95")?,
                    p99: field("p99")?,
                    buckets: Vec::new(),
                };
                if let Some(buckets) = v.get("buckets") {
                    for pair in buckets
                        .as_array()
                        .ok_or_else(|| format!("sketch {k} buckets must be an array"))?
                    {
                        let pair = pair
                            .as_array()
                            .ok_or_else(|| format!("sketch {k} bucket must be a pair"))?;
                        if pair.len() != 2 {
                            return Err(format!("sketch {k} bucket must be a pair"));
                        }
                        let idx = pair[0]
                            .as_u64()
                            .and_then(|i| u16::try_from(i).ok())
                            .ok_or_else(|| format!("sketch {k} bucket index not u16"))?;
                        let count = pair[1]
                            .as_u64()
                            .ok_or_else(|| format!("sketch {k} bucket count not u64"))?;
                        s.buckets.push((idx, count));
                    }
                }
                snap.sketches.insert(k.clone(), s);
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("comm.fabric.sends".into(), 120);
        snap.counters.insert("sched.dispatch.jobs".into(), 40);
        snap.gauges.insert("bench.ops_per_sec".into(), -5);
        snap.histograms.insert(
            "comm.fabric.latency_ns".into(),
            HistogramSnapshot {
                count: 3,
                sum: 60,
                min: 10,
                max: 30,
                p50: 20,
                p95: 30,
                p99: 30,
                buckets: vec![(10, 1), (20, 1), (50, 1)],
            },
        );
        let mut sk = crate::Sketch::new();
        for v in [100u64, 200, 900] {
            sk.record(v);
        }
        snap.sketches
            .insert("fleet.stage.download_ms".into(), sk.to_snapshot());
        snap
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let encoded = snap.to_json();
        let decoded = MetricsSnapshot::from_json(&encoded).unwrap();
        assert_eq!(decoded, snap);
        // And the re-encoding is byte-identical (deterministic order).
        assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        let decoded = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("comm_fabric_sends_total 120"));
        assert!(text.contains("# TYPE bench_ops_per_sec gauge"));
        assert!(text.contains("bench_ops_per_sec -5"));
        // Cumulative buckets.
        assert!(text.contains("comm_fabric_latency_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("comm_fabric_latency_ns_bucket{le=\"20\"} 2"));
        assert!(text.contains("comm_fabric_latency_ns_bucket{le=\"50\"} 3"));
        assert!(text.contains("comm_fabric_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("comm_fabric_latency_ns_sum 60"));
        assert!(text.contains("comm_fabric_latency_ns_count 3"));
        // Sketches come out as summaries.
        assert!(text.contains("# TYPE fleet_stage_download_ms summary"));
        assert!(text.contains("fleet_stage_download_ms{quantile=\"0.5\"}"));
        assert!(text.contains("fleet_stage_download_ms_count 3"));
    }

    #[test]
    fn histogram_snapshot_merge_is_order_invariant_and_conserving() {
        let h = |values: &[u64]| {
            let hist = crate::Histogram::default();
            for &v in values {
                hist.record(v);
            }
            hist.snapshot()
        };
        let parts = [
            h(&[1, 2, 3]),
            h(&[500, 900]),
            h(&[]),
            h(&[7, 7, 7, 1_000_000]),
        ];
        let mut fwd = HistogramSnapshot::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = HistogramSnapshot::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        let direct = h(&[1, 2, 3, 500, 900, 7, 7, 7, 1_000_000]);
        assert_eq!(fwd, direct, "merged snapshot equals direct recording");
        assert_eq!(fwd.count, 9);
        assert_eq!(fwd.quantile(0.95), fwd.p95);
    }

    #[test]
    fn wrong_schema_rejected() {
        let bad = r#"{"schema": "other.v9", "counters": {}}"#;
        assert!(MetricsSnapshot::from_json(bad).is_err());
    }

    #[test]
    fn malformed_fields_rejected() {
        assert!(MetricsSnapshot::from_json(r#"{"counters": {"a": "x"}}"#).is_err());
        assert!(MetricsSnapshot::from_json(r#"{"histograms": {"h": {"count": 1}}}"#).is_err());
        assert!(MetricsSnapshot::from_json("[]").is_err());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
        let h = HistogramSnapshot {
            count: 4,
            sum: 10,
            ..Default::default()
        };
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }
}
