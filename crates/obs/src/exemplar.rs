//! Top-K worst-value exemplars linking metrics back to traces.
//!
//! A histogram tells you p99 regressed; it cannot tell you *which
//! message* sat in the tail. An [`ExemplarSet`] keeps the K largest
//! observed values together with the [`TraceCtx`] that produced each, so
//! the worst latencies in a run are one trace-id lookup away from their
//! full causal chain (flight-recorder events, Chrome trace spans).
//!
//! Hot-path discipline: keeping top-K is a *max* operation —
//! commutative and order-insensitive — so shards and threads can offer
//! concurrently and the final set is deterministic (ties broken by trace
//! context). The shared set screens offers against a relaxed atomic
//! floor (one load + compare once the set is full), and the fabric's
//! steady-state loop uses the lock-free [`LocalExemplars`] accumulator
//! flushed once per run, mirroring [`crate::LocalHistogram`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::TraceCtx;

/// Default number of exemplars a set retains.
pub const DEFAULT_EXEMPLARS: usize = 8;

/// One exemplar: an observed value and the trace that produced it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Exemplar {
    /// The observation (typically latency in nanoseconds).
    pub value: u64,
    /// Causal context of the observation.
    pub trace: TraceCtx,
}

impl Exemplar {
    /// Descending by value, then ascending by trace context — the one
    /// deterministic order every set and snapshot uses.
    fn rank(&self) -> (std::cmp::Reverse<u64>, u64, u64) {
        (
            std::cmp::Reverse(self.value),
            self.trace.trace_id,
            self.trace.span,
        )
    }
}

/// Inserts `e` into the descending-sorted `buf`, truncating to `k`.
/// Returns the new floor (smallest retained value once full, else 0).
fn offer_sorted(buf: &mut Vec<Exemplar>, k: usize, e: Exemplar) -> u64 {
    let pos = buf.partition_point(|x| x.rank() <= e.rank());
    if pos < k {
        buf.insert(pos, e);
        buf.truncate(k);
    }
    if buf.len() == k {
        buf[k - 1].value
    } else {
        0
    }
}

/// A shared top-K exemplar set (registry handle).
#[derive(Debug)]
pub struct ExemplarSet {
    k: usize,
    /// Values strictly below this floor cannot enter a full set (ties at
    /// the floor go to the slow path so rank order stays deterministic);
    /// stale reads only cost a slow-path lock, never a lost exemplar.
    floor: AtomicU64,
    inner: Mutex<Vec<Exemplar>>,
}

impl Default for ExemplarSet {
    fn default() -> Self {
        ExemplarSet::new(DEFAULT_EXEMPLARS)
    }
}

impl ExemplarSet {
    /// A set retaining the `k` largest offers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "exemplar capacity must be non-zero");
        ExemplarSet {
            k,
            floor: AtomicU64::new(0),
            inner: Mutex::new(Vec::with_capacity(k + 1)),
        }
    }

    /// Capacity of the set.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offers one observation. Untraced contexts are ignored (an exemplar
    /// without a trace links to nothing). Once the set is full, offers
    /// strictly below the current floor return after one relaxed load.
    pub fn offer(&self, value: u64, trace: TraceCtx) {
        if !trace.is_active() {
            return;
        }
        // relaxed: the floor is an admission hint, monotone under the
        // lock below; a stale read admits a loser to the slow path where
        // the sorted insert rejects it exactly. Strict `<` so floor ties
        // are ranked by trace context, keeping results order-invariant.
        if value < self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock().expect("exemplar lock");
        let floor = offer_sorted(&mut inner, self.k, Exemplar { value, trace });
        // relaxed: see above — published under the same mutex.
        self.floor.store(floor, Ordering::Relaxed);
    }

    /// Folds a local accumulator into the set and clears it.
    pub fn merge_local(&self, local: &mut LocalExemplars) {
        let mut inner = self.inner.lock().expect("exemplar lock");
        let mut floor = 0;
        for &e in &local.buf {
            floor = offer_sorted(&mut inner, self.k, e);
        }
        if inner.len() == self.k {
            // relaxed: admission hint, published under the mutex.
            self.floor
                .store(floor.max(inner[self.k - 1].value), Ordering::Relaxed);
        }
        local.clear();
    }

    /// The retained exemplars, largest value first (deterministic
    /// tie-break by trace context).
    pub fn snapshot(&self) -> Vec<Exemplar> {
        self.inner.lock().expect("exemplar lock").clone()
    }

    pub(crate) fn reset(&self) {
        let mut inner = self.inner.lock().expect("exemplar lock");
        inner.clear();
        // relaxed: quiescent-only, like every registry reset.
        self.floor.store(0, Ordering::Relaxed);
    }
}

/// A single-owner top-K accumulator: no atomics, no locks, no
/// allocation after construction — safe inside the fabric's
/// zero-allocation delivery loop. Flush with [`ExemplarSet::merge_local`]
/// once per run.
#[derive(Clone, Debug)]
pub struct LocalExemplars {
    k: usize,
    buf: Vec<Exemplar>,
}

impl Default for LocalExemplars {
    fn default() -> Self {
        LocalExemplars::new(DEFAULT_EXEMPLARS)
    }
}

impl LocalExemplars {
    /// An accumulator retaining the `k` largest offers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "exemplar capacity must be non-zero");
        LocalExemplars {
            k,
            buf: Vec::with_capacity(k + 1),
        }
    }

    /// Offers one observation (untraced contexts ignored).
    #[inline]
    pub fn offer(&mut self, value: u64, trace: TraceCtx) {
        if !trace.is_active() {
            return;
        }
        // Strict `<` so ties at the floor rank by trace, matching
        // `ExemplarSet::offer` exactly.
        if self.buf.len() == self.k && value < self.buf[self.k - 1].value {
            return;
        }
        offer_sorted(&mut self.buf, self.k, Exemplar { value, trace });
    }

    /// The retained exemplars, largest first.
    pub fn as_slice(&self) -> &[Exemplar] {
        &self.buf
    }

    /// Number of retained exemplars.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first traced offer.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Empties the accumulator.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> TraceCtx {
        TraceCtx::new(id, id)
    }

    #[test]
    fn keeps_the_k_largest_in_order() {
        let set = ExemplarSet::new(3);
        for v in [5u64, 1, 9, 3, 7, 2, 8] {
            set.offer(v, t(v));
        }
        let snap = set.snapshot();
        let values: Vec<u64> = snap.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![9, 8, 7]);
        assert_eq!(snap[0].trace.trace_id, 9);
    }

    #[test]
    fn untraced_offers_are_ignored() {
        let set = ExemplarSet::new(2);
        set.offer(100, TraceCtx::NONE);
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn result_is_offer_order_invariant() {
        let offers: Vec<(u64, TraceCtx)> = (0..64u64).map(|i| (i * 37 % 50, t(i + 1))).collect();
        let fwd = ExemplarSet::new(5);
        let rev = ExemplarSet::new(5);
        for &(v, tr) in &offers {
            fwd.offer(v, tr);
        }
        for &(v, tr) in offers.iter().rev() {
            rev.offer(v, tr);
        }
        assert_eq!(fwd.snapshot(), rev.snapshot());
    }

    #[test]
    fn ties_break_deterministically_by_trace() {
        let set = ExemplarSet::new(2);
        set.offer(7, t(30));
        set.offer(7, t(10));
        set.offer(7, t(20));
        let snap = set.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace.trace_id, 10, "smallest trace id wins ties");
        assert_eq!(snap[1].trace.trace_id, 20);
    }

    #[test]
    fn local_flush_matches_direct_offers() {
        let direct = ExemplarSet::new(4);
        let via_local = ExemplarSet::new(4);
        let mut local = LocalExemplars::new(4);
        for v in [10u64, 40, 20, 50, 30, 60, 5] {
            direct.offer(v, t(v));
            local.offer(v, t(v));
        }
        via_local.merge_local(&mut local);
        assert!(local.is_empty(), "flush clears the local side");
        assert_eq!(direct.snapshot(), via_local.snapshot());
    }

    #[test]
    fn reset_empties_and_reopens_the_floor() {
        let set = ExemplarSet::new(1);
        set.offer(100, t(1));
        set.reset();
        assert!(set.snapshot().is_empty());
        set.offer(5, t(2));
        assert_eq!(set.snapshot()[0].value, 5, "floor must reopen after reset");
    }
}
