//! Client-side robustness: retry with capped exponential backoff and a
//! per-service circuit breaker.
//!
//! The dynamic platform promises to keep services usable while the network
//! underneath misbehaves (§3.3/§3.4). This module supplies the client half
//! of that promise: a [`RetryPolicy`] turns one logical request into a
//! bounded, deterministically jittered attempt schedule, and a
//! [`CircuitBreaker`] stops a client from hammering a provider that has
//! demonstrably failed, converting repeated timeouts into an immediate
//! local error until a cool-down elapses.
//!
//! Everything is seed-driven: the same `(policy, seed)` pair always yields
//! the same backoff schedule, so chaos campaigns replay bit-identically.

use dynplat_common::rng::{seeded_rng, split_seed, Rng};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::UncertaintyEstimate;

/// Retry configuration for one logical request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Per-attempt response timeout.
    pub timeout: SimDuration,
    /// Total attempts, the first transmission included. `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff interval.
    pub max_backoff: SimDuration,
    /// Fraction of the (capped) backoff added as deterministic jitter in
    /// `[0, jitter_frac)`, de-synchronizing clients that fail together.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on first timeout.
    pub fn none() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(10),
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter_frac: 0.0,
        }
    }

    /// Sensible middle ground: three attempts, 5 ms base backoff capped at
    /// 40 ms, 25 % jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(10),
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(5),
            max_backoff: SimDuration::from_millis(40),
            jitter_frac: 0.25,
        }
    }

    /// Fast, persistent retries for short-deadline traffic: five attempts,
    /// 2 ms base backoff capped at 16 ms.
    pub fn aggressive() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(5),
            max_attempts: 5,
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(16),
            jitter_frac: 0.25,
        }
    }

    /// Backoff to wait before retry number `retry` (1-based), including
    /// the deterministic jitter derived from `seed`.
    pub fn backoff_before(&self, retry: u32, seed: u64) -> SimDuration {
        let exp = retry.saturating_sub(1).min(20);
        let uncapped = self.base_backoff * (1u64 << exp);
        let capped = uncapped.min(self.max_backoff);
        if self.jitter_frac <= 0.0 || capped.is_zero() {
            return capped;
        }
        let mut rng = seeded_rng(split_seed(seed, u64::from(retry)));
        let jitter = capped.as_secs_f64() * self.jitter_frac * rng.gen::<f64>();
        capped + SimDuration::from_secs_f64(jitter)
    }

    /// The full deterministic attempt schedule for one request sent at
    /// `t0`: when each attempt is transmitted and when it times out.
    pub fn schedule(&self, t0: SimTime, seed: u64) -> Vec<Attempt> {
        let mut attempts = Vec::with_capacity(self.max_attempts.max(1) as usize);
        let mut at = t0;
        for retry in 0..self.max_attempts.max(1) {
            if retry > 0 {
                at += self.backoff_before(retry, seed);
            }
            attempts.push(Attempt {
                number: retry + 1,
                send_at: at,
                deadline: at + self.timeout,
            });
            at += self.timeout;
        }
        attempts
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// One planned transmission of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Attempt number, 1-based.
    pub number: u32,
    /// Transmission time.
    pub send_at: SimTime,
    /// Latest useful response arrival; after this the attempt counts as
    /// timed out.
    pub deadline: SimTime,
}

/// Circuit-breaker states, after the classic pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are counted.
    #[default]
    Closed,
    /// Requests are rejected locally until the cool-down elapses.
    Open,
    /// One probe request is allowed through; its outcome decides.
    HalfOpen,
}

/// Failure-counting circuit breaker for one (client, service) edge.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown: SimDuration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    trips: u64,
    confidence_gate: Option<f64>,
    half_open_probes: u64,
}

impl CircuitBreaker {
    /// Opens after `failure_threshold` consecutive failures; probes again
    /// after `cooldown`.
    ///
    /// # Panics
    ///
    /// Panics if `failure_threshold` is zero.
    pub fn new(failure_threshold: u32, cooldown: SimDuration) -> Self {
        assert!(failure_threshold > 0, "failure threshold must be non-zero");
        CircuitBreaker {
            failure_threshold,
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            trips: 0,
            confidence_gate: None,
            half_open_probes: 0,
        }
    }

    /// Arms the confidence-gated trip path: a failure reported through
    /// [`CircuitBreaker::on_failure_assessed`] together with a converged
    /// estimate whose boundary-exceedance probability clears `gate` opens
    /// the circuit immediately, without waiting out the fixed failure
    /// count — the breaker analogue of the ladder's probability-space
    /// descent.
    ///
    /// # Panics
    ///
    /// Panics unless `gate` is in `(0, 1]`.
    pub fn with_confidence_gate(mut self, gate: f64) -> Self {
        assert!(gate > 0.0 && gate <= 1.0, "confidence gate in (0, 1]");
        self.confidence_gate = Some(gate);
        self
    }

    /// Current state, advancing Open → HalfOpen when the cool-down has
    /// elapsed at `now`. Each such advance admits exactly one probe and is
    /// counted (`comm.breaker.half_open_probes`).
    pub fn state(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.opened_at + self.cooldown {
            self.state = BreakerState::HalfOpen;
            self.half_open_probes += 1;
            dynplat_obs::counter!("comm.breaker.half_open_probes").inc();
        }
        self.state
    }

    /// `true` if a request may be sent at `now`. In half-open state this
    /// admits the probe (further calls stay admitted until an outcome is
    /// reported).
    pub fn allows(&mut self, now: SimTime) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Reports a successful round trip: the circuit closes.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Reports a failed round trip (all retries exhausted). Returns `true`
    /// if this report tripped the circuit open.
    pub fn on_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open.
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.trips += 1;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    self.trips += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    /// Reports a failed round trip together with the link-health
    /// distribution behind it. With a configured confidence gate
    /// ([`CircuitBreaker::with_confidence_gate`]), a converged estimate
    /// confidently past its operational boundary trips the circuit on this
    /// very failure — the fixed count is how long a breaker must guess,
    /// not how long it must wait once the monitor already *knows*. Without
    /// a gate (or with an unconverged / unconvinced estimate) this is
    /// exactly [`CircuitBreaker::on_failure`].
    pub fn on_failure_assessed(&mut self, now: SimTime, est: &UncertaintyEstimate) -> bool {
        if self.state == BreakerState::Closed {
            if let Some(gate) = self.confidence_gate {
                if est.exceeds_with_confidence(gate) {
                    self.consecutive_failures += 1;
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    self.trips += 1;
                    dynplat_obs::counter!("comm.breaker.confident_trips").inc();
                    return true;
                }
            }
        }
        self.on_failure(now)
    }

    /// How often the circuit has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open probes admitted so far (one per Open → HalfOpen advance).
    pub fn probes(&self) -> u64 {
        self.half_open_probes
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(3, SimDuration::from_millis(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let policy = RetryPolicy::standard();
        let a = policy.schedule(SimTime::ZERO, 42);
        let b = policy.schedule(SimTime::ZERO, 42);
        assert_eq!(a, b);
        let c = policy.schedule(SimTime::ZERO, 43);
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            timeout: ms(10),
            max_attempts: 6,
            base_backoff: ms(5),
            max_backoff: ms(20),
            jitter_frac: 0.0,
        };
        assert_eq!(policy.backoff_before(1, 0), ms(5));
        assert_eq!(policy.backoff_before(2, 0), ms(10));
        assert_eq!(policy.backoff_before(3, 0), ms(20));
        assert_eq!(policy.backoff_before(4, 0), ms(20), "capped");
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let policy = RetryPolicy::standard();
        for seed in 0..50u64 {
            let b = policy.backoff_before(1, seed);
            assert!(b >= policy.base_backoff);
            let limit = policy.base_backoff.as_secs_f64() * (1.0 + policy.jitter_frac);
            assert!(b.as_secs_f64() < limit + 1e-12, "jitter out of range: {b}");
        }
    }

    #[test]
    fn none_policy_is_a_single_attempt() {
        let attempts = RetryPolicy::none().schedule(SimTime::from_millis(3), 7);
        assert_eq!(attempts.len(), 1);
        assert_eq!(attempts[0].send_at, SimTime::from_millis(3));
    }

    #[test]
    fn attempts_are_ordered_and_timeout_spaced() {
        let policy = RetryPolicy::aggressive();
        let attempts = policy.schedule(SimTime::ZERO, 9);
        assert_eq!(attempts.len(), 5);
        for pair in attempts.windows(2) {
            assert!(
                pair[1].send_at >= pair[0].deadline,
                "retry before prior timeout"
            );
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let mut b = CircuitBreaker::new(3, ms(100));
        let t = SimTime::ZERO;
        assert!(b.allows(t));
        assert!(!b.on_failure(t));
        assert!(!b.on_failure(t));
        assert!(b.on_failure(t), "third failure trips");
        assert!(!b.allows(t + ms(50)), "open rejects");
        assert!(b.allows(t + ms(100)), "half-open admits a probe");
        assert_eq!(b.state(t + ms(100)), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(t + ms(100)), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    fn link_estimate(exceed: f64, converged: bool) -> UncertaintyEstimate {
        UncertaintyEstimate {
            at: SimTime::ZERO,
            mean: 0.2,
            sigma: 0.02,
            band: 0.04,
            exceed,
            samples: if converged { 40 } else { 2 },
            converged,
        }
    }

    #[test]
    fn confident_exceedance_trips_ahead_of_the_count() {
        let mut b = CircuitBreaker::new(3, ms(100)).with_confidence_gate(0.95);
        // First failure, but the monitor is already sure: trip now.
        assert!(b.on_failure_assessed(SimTime::ZERO, &link_estimate(0.99, true)));
        assert!(!b.allows(SimTime::from_millis(50)));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn unconvinced_or_unconverged_estimates_keep_the_fixed_count() {
        let mut b = CircuitBreaker::new(3, ms(100)).with_confidence_gate(0.95);
        let t = SimTime::ZERO;
        // Ambiguous belief: behaves exactly like on_failure.
        assert!(!b.on_failure_assessed(t, &link_estimate(0.6, true)));
        // Certain-looking but unconverged: still no early trip.
        assert!(!b.on_failure_assessed(t, &link_estimate(1.0, false)));
        assert!(
            b.on_failure_assessed(t, &link_estimate(0.6, true)),
            "third failure"
        );
    }

    #[test]
    fn ungated_breaker_ignores_the_estimate() {
        let mut b = CircuitBreaker::new(3, ms(100));
        assert!(!b.on_failure_assessed(SimTime::ZERO, &link_estimate(1.0, true)));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn half_open_probes_are_counted_per_recovery_cycle() {
        let mut b = CircuitBreaker::new(1, ms(100));
        assert_eq!(b.probes(), 0);
        b.on_failure(SimTime::ZERO);
        assert!(b.allows(SimTime::from_millis(100)), "probe 1 admitted");
        // Repeated state reads in half-open do not inflate the counter.
        assert!(b.allows(SimTime::from_millis(101)));
        assert_eq!(b.probes(), 1);
        assert!(b.on_failure(SimTime::from_millis(101)), "probe 1 fails");
        assert!(b.allows(SimTime::from_millis(201)), "probe 2 admitted");
        assert_eq!(b.probes(), 2);
        b.on_success();
        assert_eq!(b.state(SimTime::from_millis(202)), BreakerState::Closed);
        assert_eq!(b.probes(), 2, "closing does not probe");
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(1, ms(100));
        b.on_failure(SimTime::ZERO);
        assert!(b.allows(SimTime::from_millis(100)));
        assert!(b.on_failure(SimTime::from_millis(100)));
        assert!(!b.allows(SimTime::from_millis(150)));
        assert!(b.allows(SimTime::from_millis(200)));
        assert_eq!(b.trips(), 2);
    }
}
