//! SOME/IP-inspired wire format.
//!
//! Field layout follows the SOME/IP on-wire header (16 bytes):
//!
//! ```text
//! [service id: u16][method id: u16][length: u32]
//! [client id: u16][session id: u16][protocol: u8][interface: u8][type: u8][return: u8]
//! ```
//!
//! `length` counts the bytes after the length field (8 header bytes plus
//! any trace extension plus payload), exactly as in SOME/IP.
//!
//! Traced messages (SOME/IP-TP-style extension): setting the
//! [`TRACE_FLAG`] bit on the message-type byte inserts a 16-byte trace
//! block — `[trace id: u64][span id: u64]` — between the header and the
//! payload, so a causal [`TraceCtx`] survives serialization across ECUs.
//! Untraced frames are byte-identical to plain SOME/IP.

use dynplat_common::codec::{ByteReader, ByteWriter, CodecError};
use dynplat_common::{MethodId, ServiceId};
use dynplat_obs::TraceCtx;

/// Protocol version this implementation speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Header length on the wire.
pub const HEADER_LEN: usize = 16;
/// Message-type flag marking a trace extension block after the header.
/// Disjoint from every [`MessageType`] wire value (the SOME/IP pattern of
/// flagging extensions on the type byte, as TP does with 0x20).
pub const TRACE_FLAG: u8 = 0x10;
/// On-wire size of the trace extension block.
pub const TRACE_EXT_LEN: usize = 16;

/// SOME/IP message types (subset plus a stream-data extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// RPC request expecting a response.
    Request,
    /// Fire-and-forget request.
    RequestNoReturn,
    /// Event notification (publish/subscribe).
    Notification,
    /// RPC response.
    Response,
    /// RPC error response.
    Error,
    /// Stream frame (extension; carries a sequence number in the payload).
    StreamData,
}

impl MessageType {
    fn to_wire(self) -> u8 {
        match self {
            MessageType::Request => 0x00,
            MessageType::RequestNoReturn => 0x01,
            MessageType::Notification => 0x02,
            MessageType::Response => 0x80,
            MessageType::Error => 0x81,
            MessageType::StreamData => 0x42,
        }
    }

    fn from_wire(raw: u8) -> Option<Self> {
        Some(match raw {
            0x00 => MessageType::Request,
            0x01 => MessageType::RequestNoReturn,
            0x02 => MessageType::Notification,
            0x80 => MessageType::Response,
            0x81 => MessageType::Error,
            0x42 => MessageType::StreamData,
            _ => return None,
        })
    }
}

/// SOME/IP return codes (subset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReturnCode {
    /// Success.
    #[default]
    Ok,
    /// Generic failure.
    NotOk,
    /// The service id is unknown at the receiver.
    UnknownService,
    /// The method id is unknown on the service.
    UnknownMethod,
    /// The client is not authorized for this call (§4.2).
    NotReachable,
}

impl ReturnCode {
    fn to_wire(self) -> u8 {
        match self {
            ReturnCode::Ok => 0x00,
            ReturnCode::NotOk => 0x01,
            ReturnCode::UnknownService => 0x02,
            ReturnCode::UnknownMethod => 0x03,
            ReturnCode::NotReachable => 0x05,
        }
    }

    fn from_wire(raw: u8) -> Option<Self> {
        Some(match raw {
            0x00 => ReturnCode::Ok,
            0x01 => ReturnCode::NotOk,
            0x02 => ReturnCode::UnknownService,
            0x03 => ReturnCode::UnknownMethod,
            0x05 => ReturnCode::NotReachable,
            _ => return None,
        })
    }
}

/// The 16-byte message header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SomeIpHeader {
    /// Target service.
    pub service: ServiceId,
    /// Method / event id within the service.
    pub method: MethodId,
    /// Payload length in bytes (the wire `length` field is derived).
    pub payload_len: u32,
    /// Requesting client id.
    pub client: u16,
    /// Session counter for request/response matching.
    pub session: u16,
    /// Interface (major) version of the service contract.
    pub interface_version: u8,
    /// Message type.
    pub message_type: MessageType,
    /// Return code (requests carry [`ReturnCode::Ok`]).
    pub return_code: ReturnCode,
    /// Causal trace context; [`TraceCtx::NONE`] encodes with no extension
    /// block, anything active sets [`TRACE_FLAG`] and ships 16 extra
    /// bytes.
    pub trace: TraceCtx,
}

impl SomeIpHeader {
    /// Creates a request header.
    pub fn request(service: ServiceId, method: MethodId, client: u16, session: u16) -> Self {
        SomeIpHeader {
            service,
            method,
            payload_len: 0,
            client,
            session,
            interface_version: 1,
            message_type: MessageType::Request,
            return_code: ReturnCode::Ok,
            trace: TraceCtx::NONE,
        }
    }

    /// Creates a notification header.
    pub fn notification(service: ServiceId, event: MethodId) -> Self {
        SomeIpHeader {
            service,
            method: event,
            payload_len: 0,
            client: 0,
            session: 0,
            interface_version: 1,
            message_type: MessageType::Notification,
            return_code: ReturnCode::Ok,
            trace: TraceCtx::NONE,
        }
    }

    /// Stamps a causal trace context onto the header.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// Derives the matching response header. The request's trace context
    /// is preserved, so the response stays on the caller's causal chain.
    pub fn to_response(mut self, code: ReturnCode) -> Self {
        self.message_type = if code == ReturnCode::Ok {
            MessageType::Response
        } else {
            MessageType::Error
        };
        self.return_code = code;
        self
    }

    /// Encodes header (plus trace extension when active) plus payload
    /// into one datagram.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let traced = self.trace.is_active();
        let ext = if traced { TRACE_EXT_LEN } else { 0 };
        let mut out = Vec::with_capacity(HEADER_LEN + ext + payload.len());
        self.encode_into(payload, &mut out);
        out
    }

    /// Encodes into a caller-owned buffer (cleared first, capacity kept):
    /// the zero-copy wire path stages one datagram per *publication* into
    /// a reused scratch buffer instead of allocating one per subscriber
    /// leg. A warmed buffer makes repeated encodes allocation-free.
    pub fn encode_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        let traced = self.trace.is_active();
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u16(self.service.raw());
        w.put_u16(self.method.raw());
        w.put_u32(8 + if traced { TRACE_EXT_LEN as u32 } else { 0 } + payload.len() as u32);
        w.put_u16(self.client);
        w.put_u16(self.session);
        w.put_u8(PROTOCOL_VERSION);
        w.put_u8(self.interface_version);
        w.put_u8(self.message_type.to_wire() | if traced { TRACE_FLAG } else { 0 });
        w.put_u8(self.return_code.to_wire());
        if traced {
            w.put_u64(self.trace.trace_id);
            w.put_u64(self.trace.span);
        }
        w.put_bytes(payload);
        *out = w.into_vec();
    }

    /// Decodes a datagram into header and payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated input, a wrong protocol
    /// version, unknown type/return codes, or a length field that does not
    /// match the actual datagram size.
    pub fn decode(datagram: &[u8]) -> Result<(SomeIpHeader, &[u8]), CodecError> {
        let mut r = ByteReader::new(datagram);
        let service = ServiceId(r.take_u16()?);
        let method = MethodId(r.take_u16()?);
        let length = r.take_u32()?;
        let client = r.take_u16()?;
        let session = r.take_u16()?;
        let protocol = r.take_u8()?;
        if protocol != PROTOCOL_VERSION {
            return Err(CodecError::InvalidValue {
                field: "protocol version",
                value: u64::from(protocol),
            });
        }
        let interface_version = r.take_u8()?;
        let raw_type = r.take_u8()?;
        let traced = raw_type & TRACE_FLAG != 0;
        let message_type =
            MessageType::from_wire(raw_type & !TRACE_FLAG).ok_or(CodecError::InvalidValue {
                field: "message type",
                value: u64::from(raw_type),
            })?;
        let raw_code = r.take_u8()?;
        let return_code = ReturnCode::from_wire(raw_code).ok_or(CodecError::InvalidValue {
            field: "return code",
            value: u64::from(raw_code),
        })?;
        let trace = if traced {
            TraceCtx::new(r.take_u64()?, r.take_u64()?)
        } else {
            TraceCtx::NONE
        };
        let ext = if traced { TRACE_EXT_LEN } else { 0 };
        let payload = r.peek_rest();
        if length as usize != 8 + ext + payload.len() {
            return Err(CodecError::LengthOutOfRange {
                len: length as usize,
                max: 8 + ext + payload.len(),
            });
        }
        let header = SomeIpHeader {
            service,
            method,
            payload_len: payload.len() as u32,
            client,
            session,
            interface_version,
            message_type,
            return_code,
            trace,
        };
        Ok((header, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request() {
        let h = SomeIpHeader::request(ServiceId(0x1234), MethodId(0x0421), 7, 99);
        let payload = b"set_speed(80)";
        let wire = h.encode(payload);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let (decoded, p) = SomeIpHeader::decode(&wire).expect("well-formed datagram must decode");
        assert_eq!(p, payload);
        assert_eq!(decoded.service, ServiceId(0x1234));
        assert_eq!(decoded.method, MethodId(0x0421));
        assert_eq!(decoded.client, 7);
        assert_eq!(decoded.session, 99);
        assert_eq!(decoded.message_type, MessageType::Request);
        assert_eq!(decoded.payload_len, payload.len() as u32);
    }

    #[test]
    fn roundtrip_all_types_and_codes() {
        for ty in [
            MessageType::Request,
            MessageType::RequestNoReturn,
            MessageType::Notification,
            MessageType::Response,
            MessageType::Error,
            MessageType::StreamData,
        ] {
            for code in [
                ReturnCode::Ok,
                ReturnCode::NotOk,
                ReturnCode::UnknownService,
                ReturnCode::UnknownMethod,
                ReturnCode::NotReachable,
            ] {
                let mut h = SomeIpHeader::notification(ServiceId(1), MethodId(2));
                h.message_type = ty;
                h.return_code = code;
                let wire = h.encode(&[]);
                let (d, _) = SomeIpHeader::decode(&wire).expect("well-formed datagram must decode");
                assert_eq!(d.message_type, ty);
                assert_eq!(d.return_code, code);
            }
        }
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let h = SomeIpHeader::request(ServiceId(0x10), MethodId(0x20), 1, 2)
            .with_trace(TraceCtx::new(0xF00D, 3));
        let mut buf = Vec::new();
        h.encode_into(b"first", &mut buf);
        assert_eq!(buf, h.encode(b"first"));
        let cap = buf.capacity();
        // Re-encoding a same-size payload reuses the warmed buffer.
        h.encode_into(b"again", &mut buf);
        assert_eq!(buf, h.encode(b"again"));
        assert_eq!(buf.capacity(), cap, "warmed buffer must be reused");
        let (decoded, p) = SomeIpHeader::decode(&buf).expect("well-formed datagram must decode");
        assert_eq!(p, b"again");
        assert_eq!(decoded.trace, TraceCtx::new(0xF00D, 3));
    }

    #[test]
    fn response_derivation() {
        let req = SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4);
        let ok = req.to_response(ReturnCode::Ok);
        assert_eq!(ok.message_type, MessageType::Response);
        assert_eq!(ok.session, 4, "session is preserved for matching");
        let err = req.to_response(ReturnCode::UnknownMethod);
        assert_eq!(err.message_type, MessageType::Error);
    }

    #[test]
    fn rejects_wrong_protocol_version() {
        let h = SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4);
        let mut wire = h.encode(&[]);
        wire[12] = 9; // protocol version byte
        assert!(matches!(
            SomeIpHeader::decode(&wire),
            Err(CodecError::InvalidValue {
                field: "protocol version",
                ..
            })
        ));
    }

    #[test]
    fn rejects_unknown_type_and_code() {
        let h = SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4);
        let mut wire = h.encode(&[]);
        wire[14] = 0x77;
        assert!(SomeIpHeader::decode(&wire).is_err());
        let mut wire2 = h.encode(&[]);
        wire2[15] = 0x99;
        assert!(SomeIpHeader::decode(&wire2).is_err());
    }

    #[test]
    fn traced_frame_round_trips_and_untraced_is_unchanged() {
        let plain = SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4);
        let traced = plain.with_trace(TraceCtx::new(0xDEAD_BEEF, 42));
        let payload = b"ctx";
        let wire = traced.encode(payload);
        assert_eq!(wire.len(), HEADER_LEN + TRACE_EXT_LEN + payload.len());
        assert_eq!(wire[14] & TRACE_FLAG, TRACE_FLAG);
        let (decoded, p) = SomeIpHeader::decode(&wire).expect("well-formed datagram must decode");
        assert_eq!(p, payload);
        assert_eq!(decoded.trace, TraceCtx::new(0xDEAD_BEEF, 42));
        assert_eq!(decoded.message_type, MessageType::Request);
        // An untraced header encodes byte-identically to the pre-extension
        // format: no flag, no extra bytes.
        let wire = plain.encode(payload);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        assert_eq!(wire[14] & TRACE_FLAG, 0);
        let (decoded, _) = SomeIpHeader::decode(&wire).expect("well-formed datagram must decode");
        assert_eq!(decoded.trace, TraceCtx::NONE);
    }

    #[test]
    fn response_inherits_request_trace() {
        let req =
            SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4).with_trace(TraceCtx::root(77));
        let resp = req.to_response(ReturnCode::Ok);
        assert_eq!(resp.trace, req.trace);
        let (decoded, _) =
            SomeIpHeader::decode(&resp.encode(&[])).expect("response datagram must decode");
        assert_eq!(decoded.trace, req.trace);
    }

    #[test]
    fn rejects_truncated_trace_extension() {
        let h =
            SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4).with_trace(TraceCtx::new(9, 9));
        let mut wire = h.encode(&[]);
        wire.truncate(HEADER_LEN + TRACE_EXT_LEN - 1);
        assert!(SomeIpHeader::decode(&wire).is_err());
    }

    #[test]
    fn rejects_inconsistent_length() {
        let h = SomeIpHeader::request(ServiceId(1), MethodId(2), 3, 4);
        let mut wire = h.encode(b"abc");
        wire.truncate(wire.len() - 1);
        assert!(SomeIpHeader::decode(&wire).is_err());
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(SomeIpHeader::decode(&[0u8; 10]).is_err());
    }
}
