//! Per-fabric payload arena for zero-copy wire frames.
//!
//! The middleware used to build an owned `Vec<u8>` datagram *per
//! subscriber leg*: a publication with `n` subscribers encoded the same
//! SOME/IP notification `n` times and allocated `n` buffers. The
//! [`PayloadArena`] inverts that: the frame is encoded **once** into a
//! byte range of a fabric-owned arena, and every leg carries only the
//! range's [`PayloadRef`] — a recycled `u32` handle anchored the same way
//! the PR-3 frame-id slab anchors message slots. Steady-state staging
//! performs zero heap allocations: released ranges are recycled through
//! per-size-class free lists, so a periodic workload (the bench phases,
//! a platoon publishing at 50 Hz) reuses the same bytes forever.
//!
//! Handles are plain indices. Releasing a handle returns its block to the
//! free list of its size class; staging a payload of a similar size pops
//! it back off. The arena never shrinks — like the message slab, its
//! capacity is the high-water mark of concurrently staged bytes, which is
//! exactly what the `bench.comm.arena_*` gauges report.

/// Handle to one staged payload range. Valid until passed to
/// [`PayloadArena::release`]; the arena recycles released handles, so a
/// stale copy of a released ref may observe a *later* payload (never out
/// of bounds) — the same aliasing contract as slab frame ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PayloadRef(u32);

impl PayloadRef {
    /// The raw handle value (stable over the staged lifetime).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// One block of arena storage. `cap` is the size-class-rounded capacity,
/// `len` the currently staged length within it.
#[derive(Clone, Copy, Debug)]
struct Block {
    off: u32,
    cap: u32,
    len: u32,
}

/// Occupancy of a [`PayloadArena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Ranges currently staged (not yet released).
    pub live: usize,
    /// Recycled blocks available for reuse.
    pub free: usize,
    /// Total backing bytes ever reserved (high-water mark).
    pub bytes: usize,
}

/// Smallest size class in bytes; every block holds at least this much.
const MIN_CLASS: u32 = 16;

/// A size-class recycled byte arena keyed by reusable `u32` handles.
#[derive(Debug, Default)]
pub struct PayloadArena {
    data: Vec<u8>,
    blocks: Vec<Block>,
    /// Free block ids bucketed by size class (`log2(cap) - log2(MIN_CLASS)`).
    free_by_class: Vec<Vec<u32>>,
    live: usize,
}

impl PayloadArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PayloadArena::default()
    }

    fn class_of(cap: u32) -> usize {
        (cap.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize
    }

    fn rounded_cap(len: usize) -> u32 {
        (len.max(1) as u32).next_power_of_two().max(MIN_CLASS)
    }

    /// Stages a copy of `bytes`, reusing a recycled block of the matching
    /// size class when one exists (the steady-state path: no allocation).
    pub fn stage(&mut self, bytes: &[u8]) -> PayloadRef {
        let cap = Self::rounded_cap(bytes.len());
        let class = Self::class_of(cap);
        self.live += 1;
        if let Some(id) = self.free_by_class.get_mut(class).and_then(Vec::pop) {
            let block = &mut self.blocks[id as usize];
            block.len = bytes.len() as u32;
            let off = block.off as usize;
            self.data[off..off + bytes.len()].copy_from_slice(bytes);
            return PayloadRef(id);
        }
        // Growth path: reserve a fresh block at the end of the backing.
        let off = self.data.len() as u32;
        self.data.resize(off as usize + cap as usize, 0);
        self.data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        let id = self.blocks.len() as u32;
        self.blocks.push(Block {
            off,
            cap,
            len: bytes.len() as u32,
        });
        PayloadRef(id)
    }

    /// The staged bytes behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` was never issued by this arena.
    pub fn get(&self, r: PayloadRef) -> &[u8] {
        let block = &self.blocks[r.0 as usize];
        &self.data[block.off as usize..(block.off + block.len) as usize]
    }

    /// Releases a staged range, returning its block to the size-class free
    /// list for reuse. Releasing the same ref twice corrupts occupancy
    /// accounting (like a slab double-free); callers own the lifecycle.
    pub fn release(&mut self, r: PayloadRef) {
        let class = Self::class_of(self.blocks[r.0 as usize].cap);
        if self.free_by_class.len() <= class {
            self.free_by_class.resize_with(class + 1, Vec::new);
        }
        self.free_by_class[class].push(r.0);
        self.live -= 1;
    }

    /// Current occupancy.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            live: self.live,
            free: self.free_by_class.iter().map(Vec::len).sum(),
            bytes: self.data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_get_release_roundtrip() {
        let mut arena = PayloadArena::new();
        let a = arena.stage(b"hello");
        let b = arena.stage(&[7u8; 100]);
        assert_eq!(arena.get(a), b"hello");
        assert_eq!(arena.get(b), &[7u8; 100][..]);
        assert_eq!(arena.stats().live, 2);
        arena.release(a);
        arena.release(b);
        let s = arena.stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.free, 2);
    }

    #[test]
    fn steady_state_recycles_without_growth() {
        let mut arena = PayloadArena::new();
        // Warm up one block per class used by the workload…
        let warm = arena.stage(&[1u8; 300]);
        arena.release(warm);
        let bytes_after_warmup = arena.stats().bytes;
        // …then a long periodic workload of same-class payloads must not
        // grow the backing at all.
        for round in 0..1_000u32 {
            let r = arena.stage(&[round as u8; 280]);
            assert_eq!(arena.get(r).len(), 280);
            arena.release(r);
        }
        let s = arena.stats();
        assert_eq!(s.bytes, bytes_after_warmup, "steady state must not grow");
        assert_eq!(s.live, 0);
        assert_eq!(s.free, 1);
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        let mut arena = PayloadArena::new();
        let small = arena.stage(b"ab");
        let big = arena.stage(&[9u8; 64]);
        arena.release(small);
        // A 64-byte stage must reuse the 64-byte class block, not the
        // released 16-byte one.
        let big2 = arena.stage(&[8u8; 33]);
        assert_eq!(arena.get(big2).len(), 33);
        assert_eq!(arena.get(big), &[9u8; 64][..]);
        // The small class block is still free for small payloads.
        let small2 = arena.stage(b"xy");
        assert_eq!(small2.raw(), 0, "16-byte class block is recycled");
        assert_eq!(arena.get(small2), b"xy");
    }

    #[test]
    fn empty_payloads_are_representable() {
        let mut arena = PayloadArena::new();
        let r = arena.stage(&[]);
        assert_eq!(arena.get(r), &[] as &[u8]);
        arena.release(r);
        assert_eq!(arena.stats().live, 0);
    }
}
