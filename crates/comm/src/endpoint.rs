//! Typed service endpoints — the runtime face of the middleware.
//!
//! §5.2 of the paper points at the AUTOSAR Adaptive Platform, "where the
//! RTE can link services and clients dynamically during runtime". This
//! module is that runtime layer: a provider registers a [`ServiceSkeleton`]
//! with typed methods and events; a consumer uses a [`ClientProxy`] to
//! build authenticated-by-policy, typed requests. Everything crosses the
//! boundary as SOME/IP datagrams ([`crate::wire`]) carrying canonical
//! [`Value`] payloads, and every dispatch is gated by the deny-by-default
//! [`AccessControlMatrix`] (§4.2).

use crate::wire::{MessageType, ReturnCode, SomeIpHeader};
use dynplat_common::codec::CodecError;
use dynplat_common::ids::ServiceInstance;
use dynplat_common::value::{DataType, Value};
use dynplat_common::{AppId, EventGroupId, MethodId, ServiceId};
use dynplat_security::authz::{AccessControlMatrix, Permission};
use std::collections::BTreeMap;
use std::fmt;

/// A method handler: takes the decoded request value, returns the response
/// value (which must conform to the declared response type).
pub type MethodHandler = Box<dyn FnMut(Value) -> Value>;

struct MethodEntry {
    request: DataType,
    response: DataType,
    handler: MethodHandler,
}

/// Errors raised when *building* endpoint traffic (wire-level failures are
/// answered with SOME/IP error datagrams instead).
#[derive(Clone, Debug, PartialEq)]
pub enum EndpointError {
    /// The proxy tried to encode a value that does not conform to the
    /// declared type.
    TypeMismatch {
        /// The declared schema.
        expected: String,
    },
    /// A datagram could not be decoded at all.
    Malformed(CodecError),
    /// The peer answered with an error return code.
    Remote(ReturnCode),
}

impl fmt::Display for EndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointError::TypeMismatch { expected } => {
                write!(f, "value does not conform to {expected}")
            }
            EndpointError::Malformed(e) => write!(f, "malformed datagram: {e}"),
            EndpointError::Remote(code) => write!(f, "remote error: {code:?}"),
        }
    }
}

impl std::error::Error for EndpointError {}

impl From<CodecError> for EndpointError {
    fn from(e: CodecError) -> Self {
        EndpointError::Malformed(e)
    }
}

/// Provider-side endpoint: typed methods and events of one service
/// instance, dispatching incoming request datagrams under access control.
pub struct ServiceSkeleton {
    instance: ServiceInstance,
    interface_version: u8,
    methods: BTreeMap<MethodId, MethodEntry>,
    events: BTreeMap<EventGroupId, DataType>,
    served: u64,
    denied: u64,
}

impl fmt::Debug for ServiceSkeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceSkeleton")
            .field("instance", &self.instance)
            .field("methods", &self.methods.len())
            .field("events", &self.events.len())
            .field("served", &self.served)
            .field("denied", &self.denied)
            .finish()
    }
}

impl ServiceSkeleton {
    /// Creates an empty skeleton for `instance`.
    pub fn new(instance: ServiceInstance, interface_version: u8) -> Self {
        ServiceSkeleton {
            instance,
            interface_version,
            methods: BTreeMap::new(),
            events: BTreeMap::new(),
            served: 0,
            denied: 0,
        }
    }

    /// The served instance.
    pub fn instance(&self) -> ServiceInstance {
        self.instance
    }

    /// Registers a typed method with its handler (builder style).
    pub fn method<F>(
        mut self,
        id: MethodId,
        request: DataType,
        response: DataType,
        handler: F,
    ) -> Self
    where
        F: FnMut(Value) -> Value + 'static,
    {
        self.methods.insert(
            id,
            MethodEntry {
                request,
                response,
                handler: Box::new(handler),
            },
        );
        self
    }

    /// Registers a typed event group (builder style).
    pub fn event(mut self, id: EventGroupId, payload: DataType) -> Self {
        self.events.insert(id, payload);
        self
    }

    /// Requests served successfully so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests denied by access control so far (audit counter).
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Handles one incoming datagram from `client`, returning the response
    /// datagram. Every failure mode maps to a SOME/IP error response:
    ///
    /// * wrong service id → `UnknownService`;
    /// * unknown method → `UnknownMethod`;
    /// * access denied (§4.2) → `NotReachable`;
    /// * non-conforming payload or non-request type → `NotOk`.
    ///
    /// # Errors
    ///
    /// Only if the datagram is too corrupt to extract a header (no
    /// addressable requester to answer).
    pub fn handle(
        &mut self,
        client: AppId,
        datagram: &[u8],
        matrix: &AccessControlMatrix,
    ) -> Result<Vec<u8>, EndpointError> {
        let mut out = Vec::new();
        self.handle_into(client, datagram, matrix, &mut out)?;
        Ok(out)
    }

    /// [`ServiceSkeleton::handle`] into a caller-owned response buffer
    /// (cleared first, capacity kept): the buffer-reuse variant for
    /// dispatch loops, where a warmed buffer makes the header encode
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServiceSkeleton::handle`].
    pub fn handle_into(
        &mut self,
        client: AppId,
        datagram: &[u8],
        matrix: &AccessControlMatrix,
        out: &mut Vec<u8>,
    ) -> Result<(), EndpointError> {
        let (header, payload) = SomeIpHeader::decode(datagram)?;
        let respond = |code: ReturnCode, body: &[u8], out: &mut Vec<u8>| {
            let mut h = header.to_response(code);
            h.payload_len = body.len() as u32;
            h.encode_into(body, out);
        };
        if header.service != self.instance.service {
            respond(ReturnCode::UnknownService, &[], out);
            return Ok(());
        }
        if header.message_type != MessageType::Request {
            respond(ReturnCode::NotOk, &[], out);
            return Ok(());
        }
        let Some(entry) = self.methods.get_mut(&header.method) else {
            respond(ReturnCode::UnknownMethod, &[], out);
            return Ok(());
        };
        if !matrix
            .check(
                client,
                self.instance.service,
                Permission::Call(header.method),
            )
            .is_granted()
        {
            self.denied += 1;
            respond(ReturnCode::NotReachable, &[], out);
            return Ok(());
        }
        let Ok(request) = Value::decode(payload, &entry.request) else {
            respond(ReturnCode::NotOk, &[], out);
            return Ok(());
        };
        let response = (entry.handler)(request);
        if !response.conforms_to(&entry.response) {
            // Provider bug: surface as NotOk rather than shipping garbage.
            respond(ReturnCode::NotOk, &[], out);
            return Ok(());
        }
        self.served += 1;
        let body = response.encode();
        respond(ReturnCode::Ok, &body, out);
        Ok(())
    }

    /// Builds a typed notification datagram for `event`.
    ///
    /// # Errors
    ///
    /// [`EndpointError::TypeMismatch`] if the payload does not conform, or
    /// an error naming the unknown event.
    pub fn notify(&self, event: EventGroupId, payload: &Value) -> Result<Vec<u8>, EndpointError> {
        let mut out = Vec::new();
        self.notify_into(event, payload, &mut out)?;
        Ok(out)
    }

    /// [`ServiceSkeleton::notify`] into a caller-owned buffer (cleared
    /// first, capacity kept) — the buffer-reuse variant for periodic
    /// publishers.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServiceSkeleton::notify`]; `out` is left cleared
    /// on error.
    pub fn notify_into(
        &self,
        event: EventGroupId,
        payload: &Value,
        out: &mut Vec<u8>,
    ) -> Result<(), EndpointError> {
        out.clear();
        let Some(ty) = self.events.get(&event) else {
            return Err(EndpointError::TypeMismatch {
                expected: format!("unknown event {event}"),
            });
        };
        if !payload.conforms_to(ty) {
            return Err(EndpointError::TypeMismatch {
                expected: ty.to_string(),
            });
        }
        let mut header = SomeIpHeader::notification(self.instance.service, MethodId(event.raw()));
        header.interface_version = self.interface_version;
        let body = payload.encode();
        header.payload_len = body.len() as u32;
        header.encode_into(&body, out);
        Ok(())
    }
}

/// Consumer-side endpoint: builds typed requests and decodes typed
/// responses/notifications.
#[derive(Debug)]
pub struct ClientProxy {
    app: AppId,
    client_wire_id: u16,
    session: u16,
}

impl ClientProxy {
    /// Creates a proxy for application `app` using `client_wire_id` on the
    /// wire.
    pub fn new(app: AppId, client_wire_id: u16) -> Self {
        ClientProxy {
            app,
            client_wire_id,
            session: 0,
        }
    }

    /// The application this proxy acts for.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// Builds a typed request datagram.
    ///
    /// # Errors
    ///
    /// [`EndpointError::TypeMismatch`] if `args` does not conform to
    /// `request_type`.
    pub fn request(
        &mut self,
        service: ServiceId,
        method: MethodId,
        request_type: &DataType,
        args: &Value,
    ) -> Result<Vec<u8>, EndpointError> {
        let mut out = Vec::new();
        self.request_into(service, method, request_type, args, &mut out)?;
        Ok(out)
    }

    /// [`ClientProxy::request`] into a caller-owned buffer (cleared first,
    /// capacity kept) — the buffer-reuse variant for request loops. The
    /// session counter advances only when the arguments conform.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientProxy::request`]; `out` is left cleared on
    /// error.
    pub fn request_into(
        &mut self,
        service: ServiceId,
        method: MethodId,
        request_type: &DataType,
        args: &Value,
        out: &mut Vec<u8>,
    ) -> Result<(), EndpointError> {
        out.clear();
        if !args.conforms_to(request_type) {
            return Err(EndpointError::TypeMismatch {
                expected: request_type.to_string(),
            });
        }
        self.session = self.session.wrapping_add(1);
        let mut header = SomeIpHeader::request(service, method, self.client_wire_id, self.session);
        let body = args.encode();
        header.payload_len = body.len() as u32;
        header.encode_into(&body, out);
        Ok(())
    }

    /// Decodes a typed response for the last request.
    ///
    /// # Errors
    ///
    /// [`EndpointError::Remote`] with the peer's return code on error
    /// responses, [`EndpointError::Malformed`] on undecodable payloads.
    pub fn parse_response(
        &self,
        datagram: &[u8],
        response_type: &DataType,
    ) -> Result<Value, EndpointError> {
        let (header, payload) = SomeIpHeader::decode(datagram)?;
        if header.return_code != ReturnCode::Ok || header.message_type != MessageType::Response {
            return Err(EndpointError::Remote(header.return_code));
        }
        Ok(Value::decode(payload, response_type)?)
    }

    /// Decodes a typed notification.
    ///
    /// # Errors
    ///
    /// [`EndpointError::Malformed`] on type or codec mismatch.
    pub fn parse_notification(
        datagram: &[u8],
        payload_type: &DataType,
    ) -> Result<(EventGroupId, Value), EndpointError> {
        let (header, payload) = SomeIpHeader::decode(datagram)?;
        let value = Value::decode(payload, payload_type)?;
        Ok((EventGroupId(header.method.raw()), value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_request_type() -> DataType {
        DataType::record([("limit_kmh", DataType::U32)])
    }

    fn skeleton() -> ServiceSkeleton {
        ServiceSkeleton::new(ServiceInstance::new(ServiceId(10), 0), 1)
            .method(MethodId(1), speed_request_type(), DataType::Bool, |req| {
                let ok = req
                    .field("limit_kmh")
                    .and_then(Value::as_f64)
                    .is_some_and(|v| v <= 250.0);
                Value::Bool(ok)
            })
            .event(
                EventGroupId(1),
                DataType::record([("speed_kmh", DataType::F64)]),
            )
    }

    fn allowing_matrix() -> AccessControlMatrix {
        let mut m = AccessControlMatrix::new();
        m.grant(AppId(2), ServiceId(10), Permission::Call(MethodId(1)));
        m
    }

    #[test]
    fn typed_round_trip_through_the_skeleton() {
        let mut skel = skeleton();
        let matrix = allowing_matrix();
        let mut proxy = ClientProxy::new(AppId(2), 7);
        let args = Value::record([("limit_kmh", Value::U32(130))]);
        let request = proxy
            .request(ServiceId(10), MethodId(1), &speed_request_type(), &args)
            .expect("conforms");
        let response = skel.handle(AppId(2), &request, &matrix).expect("handled");
        let value = proxy
            .parse_response(&response, &DataType::Bool)
            .expect("ok");
        assert_eq!(value, Value::Bool(true));
        assert_eq!(skel.served(), 1);
        assert_eq!(skel.denied(), 0);
    }

    #[test]
    fn handler_logic_is_exercised() {
        let mut skel = skeleton();
        let matrix = allowing_matrix();
        let mut proxy = ClientProxy::new(AppId(2), 7);
        let args = Value::record([("limit_kmh", Value::U32(900))]); // > 250: refused
        let request = proxy
            .request(ServiceId(10), MethodId(1), &speed_request_type(), &args)
            .expect("conforms");
        let response = skel.handle(AppId(2), &request, &matrix).expect("handled");
        let value = proxy
            .parse_response(&response, &DataType::Bool)
            .expect("ok");
        assert_eq!(value, Value::Bool(false));
    }

    #[test]
    fn unauthorized_client_gets_not_reachable() {
        let mut skel = skeleton();
        let matrix = allowing_matrix();
        let mut intruder = ClientProxy::new(AppId(66), 9);
        let args = Value::record([("limit_kmh", Value::U32(50))]);
        let request = intruder
            .request(ServiceId(10), MethodId(1), &speed_request_type(), &args)
            .expect("conforms");
        let response = skel.handle(AppId(66), &request, &matrix).expect("handled");
        let err = intruder
            .parse_response(&response, &DataType::Bool)
            .unwrap_err();
        assert_eq!(err, EndpointError::Remote(ReturnCode::NotReachable));
        assert_eq!(skel.denied(), 1);
        assert_eq!(skel.served(), 0);
    }

    #[test]
    fn wrong_service_method_and_payload_map_to_codes() {
        let mut skel = skeleton();
        let matrix = allowing_matrix();
        let mut proxy = ClientProxy::new(AppId(2), 7);

        // Unknown service.
        let req = proxy
            .request(
                ServiceId(99),
                MethodId(1),
                &speed_request_type(),
                &Value::record([("limit_kmh", Value::U32(1))]),
            )
            .expect("conforms");
        let resp = skel.handle(AppId(2), &req, &matrix).expect("handled");
        assert_eq!(
            proxy.parse_response(&resp, &DataType::Bool).unwrap_err(),
            EndpointError::Remote(ReturnCode::UnknownService)
        );

        // Unknown method.
        let req = proxy
            .request(
                ServiceId(10),
                MethodId(42),
                &speed_request_type(),
                &Value::record([("limit_kmh", Value::U32(1))]),
            )
            .expect("conforms");
        let resp = skel.handle(AppId(2), &req, &matrix).expect("handled");
        assert_eq!(
            proxy.parse_response(&resp, &DataType::Bool).unwrap_err(),
            EndpointError::Remote(ReturnCode::UnknownMethod)
        );

        // Malformed payload: hand-craft a request with a bad body.
        let mut header = SomeIpHeader::request(ServiceId(10), MethodId(1), 7, 3);
        header.payload_len = 1;
        let bad = header.encode(&[0xFF]);
        let resp = skel.handle(AppId(2), &bad, &matrix).expect("handled");
        assert_eq!(
            proxy.parse_response(&resp, &DataType::Bool).unwrap_err(),
            EndpointError::Remote(ReturnCode::NotOk)
        );
    }

    #[test]
    fn proxy_rejects_non_conforming_arguments_locally() {
        let mut proxy = ClientProxy::new(AppId(2), 7);
        let err = proxy
            .request(
                ServiceId(10),
                MethodId(1),
                &speed_request_type(),
                &Value::U8(1),
            )
            .unwrap_err();
        assert!(matches!(err, EndpointError::TypeMismatch { .. }));
    }

    #[test]
    fn typed_notifications_roundtrip() {
        let skel = skeleton();
        let payload = Value::record([("speed_kmh", Value::F64(88.0))]);
        let datagram = skel.notify(EventGroupId(1), &payload).expect("conforms");
        let (group, value) = ClientProxy::parse_notification(
            &datagram,
            &DataType::record([("speed_kmh", DataType::F64)]),
        )
        .expect("decodes");
        assert_eq!(group, EventGroupId(1));
        assert_eq!(value, payload);
    }

    #[test]
    fn notify_rejects_bad_payloads_and_unknown_events() {
        let skel = skeleton();
        assert!(skel.notify(EventGroupId(1), &Value::U8(1)).is_err());
        assert!(skel
            .notify(
                EventGroupId(9),
                &Value::record([("speed_kmh", Value::F64(1.0))])
            )
            .is_err());
    }

    #[test]
    fn buggy_handler_response_is_contained() {
        let mut skel = ServiceSkeleton::new(ServiceInstance::new(ServiceId(10), 0), 1).method(
            MethodId(1),
            DataType::Bool,
            DataType::Bool,
            |_| Value::U64(999),
        );
        let mut matrix = AccessControlMatrix::new();
        matrix.grant(AppId(2), ServiceId(10), Permission::Call(MethodId(1)));
        let mut proxy = ClientProxy::new(AppId(2), 1);
        let req = proxy
            .request(
                ServiceId(10),
                MethodId(1),
                &DataType::Bool,
                &Value::Bool(true),
            )
            .expect("conforms");
        let resp = skel.handle(AppId(2), &req, &matrix).expect("handled");
        assert_eq!(
            proxy.parse_response(&resp, &DataType::Bool).unwrap_err(),
            EndpointError::Remote(ReturnCode::NotOk)
        );
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_owned_apis() {
        let mut skel = skeleton();
        let matrix = allowing_matrix();
        let mut proxy = ClientProxy::new(AppId(2), 7);
        let args = Value::record([("limit_kmh", Value::U32(130))]);
        let mut req_buf = Vec::new();
        let mut resp_buf = Vec::new();
        let mut notif_buf = Vec::new();
        for round in 0..3 {
            proxy
                .request_into(
                    ServiceId(10),
                    MethodId(1),
                    &speed_request_type(),
                    &args,
                    &mut req_buf,
                )
                .expect("conforming request must encode");
            skel.handle_into(AppId(2), &req_buf, &matrix, &mut resp_buf)
                .expect("request with readable header must be answered");
            let value = proxy
                .parse_response(&resp_buf, &DataType::Bool)
                .expect("ok response must parse");
            assert_eq!(value, Value::Bool(true), "round {round}");
            skel.notify_into(
                EventGroupId(1),
                &Value::record([("speed_kmh", Value::F64(88.0))]),
                &mut notif_buf,
            )
            .expect("conforming notification must encode");
        }
        assert_eq!(skel.served(), 3);
        // The buffers match the owned-API datagrams (session advances, so
        // compare against a proxy at the same session counter).
        let mut twin = ClientProxy::new(AppId(2), 7);
        for _ in 0..3 {
            let owned = twin
                .request(ServiceId(10), MethodId(1), &speed_request_type(), &args)
                .expect("conforms");
            let last = owned;
            if twin.session == proxy.session {
                assert_eq!(req_buf, last);
            }
        }
        assert_eq!(
            notif_buf,
            skel.notify(
                EventGroupId(1),
                &Value::record([("speed_kmh", Value::F64(88.0))])
            )
            .expect("conforms")
        );
    }

    #[test]
    fn sessions_increment_per_request() {
        let mut proxy = ClientProxy::new(AppId(2), 7);
        let r1 = proxy
            .request(
                ServiceId(10),
                MethodId(1),
                &DataType::Bool,
                &Value::Bool(true),
            )
            .expect("ok");
        let r2 = proxy
            .request(
                ServiceId(10),
                MethodId(1),
                &DataType::Bool,
                &Value::Bool(true),
            )
            .expect("ok");
        let (h1, _) = SomeIpHeader::decode(&r1).expect("decodes");
        let (h2, _) = SomeIpHeader::decode(&r2).expect("decodes");
        assert_eq!(h2.session, h1.session + 1);
    }
}
