//! Quality-of-service requirement attributes.
//!
//! §2.2: interface requirements "might consist of multiple attributes, such
//! as latency and jitter for real-time applications or bandwidth for
//! streaming applications". A [`QosSpec`] travels with each interface
//! definition; the verification engine checks deployments against it and
//! the fabric maps it onto a traffic class.

use dynplat_common::time::SimDuration;
use dynplat_net::TrafficClass;

/// Requirements a communication relation must satisfy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QosSpec {
    /// Maximum end-to-end latency, if bounded.
    pub max_latency: Option<SimDuration>,
    /// Maximum delivery jitter, if bounded.
    pub max_jitter: Option<SimDuration>,
    /// Minimum sustained bandwidth in bit/s, if required.
    pub min_bandwidth: Option<u64>,
    /// Whether the relation is safety-critical.
    pub critical: bool,
}

impl QosSpec {
    /// No requirements (best effort).
    pub fn best_effort() -> Self {
        QosSpec::default()
    }

    /// A hard-latency control relation (critical traffic class).
    pub fn control(max_latency: SimDuration) -> Self {
        QosSpec {
            max_latency: Some(max_latency),
            max_jitter: Some(max_latency / 2),
            min_bandwidth: None,
            critical: true,
        }
    }

    /// A bandwidth-bound streaming relation.
    pub fn streaming(min_bandwidth: u64) -> Self {
        QosSpec {
            max_latency: None,
            max_jitter: None,
            min_bandwidth: Some(min_bandwidth),
            critical: false,
        }
    }

    /// The traffic class the fabric should use for this relation.
    pub fn traffic_class(&self) -> TrafficClass {
        if self.critical {
            TrafficClass::Critical
        } else if self.min_bandwidth.is_some() {
            TrafficClass::Stream
        } else {
            TrafficClass::BestEffort
        }
    }

    /// Checks an observed (latency, jitter) pair against the bounds.
    pub fn is_met(&self, latency: SimDuration, jitter: SimDuration) -> bool {
        self.max_latency.is_none_or(|b| latency <= b) && self.max_jitter.is_none_or(|b| jitter <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn class_mapping() {
        assert_eq!(
            QosSpec::best_effort().traffic_class(),
            TrafficClass::BestEffort
        );
        assert_eq!(
            QosSpec::control(ms(5)).traffic_class(),
            TrafficClass::Critical
        );
        assert_eq!(
            QosSpec::streaming(2_000_000).traffic_class(),
            TrafficClass::Stream
        );
    }

    #[test]
    fn bounds_check() {
        let q = QosSpec::control(ms(10)); // jitter bound 5 ms
        assert!(q.is_met(ms(10), ms(5)));
        assert!(!q.is_met(ms(11), ms(1)));
        assert!(!q.is_met(ms(1), ms(6)));
        assert!(QosSpec::best_effort().is_met(ms(999), ms(999)));
    }
}
