//! The three communication paradigms of §2.1 (Fig. 3).
//!
//! * **Event** — one-way publish/subscribe: a producer owns the interface,
//!   consumers subscribe to a topic, every publication fans out to all
//!   current subscribers;
//! * **Message** — two-way request/response (RPC): the consumer of the
//!   message owns the interface ("offering the service"); essential for
//!   command & control;
//! * **Stream** — one-way continuous data where frame *n* depends on its
//!   predecessors; a frame is *decodable* only once every earlier frame has
//!   arrived, so the decodable latency is the running maximum of arrival
//!   latencies.
//!
//! All three run over the same [`Fabric`], which is how E3 compares their
//! behavior across CAN, Ethernet and TSN.

use crate::arena::PayloadRef;
use crate::fabric::{Fabric, MessageDelivery, MessageSend};
use crate::sd::ServiceDirectory;
use crate::wire::SomeIpHeader;
use dynplat_common::ids::ServiceInstance;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{EcuId, EventGroupId, MethodId};
use dynplat_net::TrafficClass;
use dynplat_obs::{LocalHistogram, TraceCtx};

/// A single publication request.
#[derive(Clone, Debug)]
pub struct Publication {
    /// Publish time.
    pub time: SimTime,
    /// Publishing service instance.
    pub instance: ServiceInstance,
    /// Event group.
    pub group: EventGroupId,
    /// Host ECU of the producer.
    pub src: EcuId,
    /// Payload size (bytes).
    pub payload: usize,
    /// Traffic class.
    pub class: TrafficClass,
    /// Frame priority.
    pub priority: u32,
    /// Causal trace context; every fanout leg carries it.
    pub trace: TraceCtx,
}

/// Reusable scratch state for [`EventBus::publish_all_into`]. One warmed
/// instance makes repeated publish batches allocation-free: send/metadata
/// buffers, the per-publication wire-frame encode buffer and the staged
/// payload refs all persist between calls.
#[derive(Debug, Default)]
pub struct EventScratch {
    sends: Vec<MessageSend>,
    /// `send id -> (publication index, subscriber host)`.
    meta: Vec<(u32, EcuId)>,
    deliveries: Vec<MessageDelivery>,
    /// Encode buffer for the one wire frame per publication.
    frame: Vec<u8>,
    /// Synthetic payload bytes (publications carry sizes, not contents).
    payload_buf: Vec<u8>,
    /// Arena refs staged by the previous call, released on the next one.
    staged: Vec<PayloadRef>,
    /// Per-batch latency accumulator, flushed to the registry once per
    /// call (five atomic RMWs per *batch* instead of per delivery).
    lat: LocalHistogram,
    /// `(host, expires)` of the subscribers resolved for `memo_key` —
    /// publications arrive in per-topic bursts, so consecutive ones reuse
    /// the directory lookup and only re-check expiry.
    sub_memo: Vec<(EcuId, SimTime)>,
    memo_key: Option<(ServiceInstance, EventGroupId)>,
}

impl EventScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        EventScratch::default()
    }

    /// Wire frames staged by the most recent
    /// [`EventBus::publish_all_into`], one per publication, in input
    /// order. The refs stay valid (decodable via [`Fabric::payload`])
    /// until the next call on this scratch, which recycles them.
    pub fn staged_frames(&self) -> &[PayloadRef] {
        &self.staged
    }

    /// Fabric sends issued by the most recent
    /// [`EventBus::publish_all_into`] — one per subscriber leg, i.e. the
    /// publish-side work at the fabric level.
    pub fn fanout_sends(&self) -> usize {
        self.sends.len()
    }
}

/// Event-paradigm driver: fans publications out to the directory's live
/// subscribers and reports per-delivery latency.
#[derive(Debug)]
pub struct EventBus<'a> {
    fabric: &'a mut Fabric,
    directory: &'a ServiceDirectory,
}

impl<'a> EventBus<'a> {
    /// Creates a driver over a fabric and a (pre-populated) directory.
    pub fn new(fabric: &'a mut Fabric, directory: &'a ServiceDirectory) -> Self {
        EventBus { fabric, directory }
    }

    /// Runs a batch of publications; returns `(publication index,
    /// subscriber host, delivery)` triples.
    ///
    /// Allocating convenience wrapper over
    /// [`EventBus::publish_all_into`].
    pub fn publish_all(
        &mut self,
        publications: &[Publication],
    ) -> Vec<(usize, EcuId, MessageDelivery)> {
        let mut scratch = EventScratch::new();
        let mut out = Vec::new();
        self.publish_all_into(publications, &mut scratch, &mut out);
        // The wrapper's scratch dies here: hand its staged refs back so
        // the fabric arena does not leak one block per publication.
        for r in scratch.staged.drain(..) {
            self.fabric.release_payload(r);
        }
        out
    }

    /// The batched zero-copy fanout path. For each publication the route
    /// row is prefetched once, the SOME/IP notification frame is encoded
    /// **once** into `scratch.frame` ([`SomeIpHeader::encode_into`], no
    /// per-leg encode) and staged **once** in the fabric's payload arena;
    /// every subscriber leg shares that staged frame and carries the
    /// publication's [`TraceCtx`]. `out` is cleared and refilled.
    ///
    /// Simulation semantics are identical to [`EventBus::publish_all`]:
    /// each leg's simulated size is the publication's `payload` field (the
    /// staged frame is the wire representation, header included, available
    /// through [`EventScratch::staged_frames`] until the next call).
    pub fn publish_all_into(
        &mut self,
        publications: &[Publication],
        scratch: &mut EventScratch,
        out: &mut Vec<(usize, EcuId, MessageDelivery)>,
    ) {
        dynplat_obs::counter!("comm.event.publications").add(publications.len() as u64);
        // Recycle the previous batch's staged frames first: steady state
        // then reuses the same arena blocks forever.
        for r in scratch.staged.drain(..) {
            self.fabric.release_payload(r);
        }
        scratch.sends.clear();
        scratch.meta.clear();
        // The memo is only sound against this call's directory borrow;
        // the scratch may be reused against another directory later.
        scratch.memo_key = None;
        for (idx, p) in publications.iter().enumerate() {
            // One route BFS per publication source (almost always a no-op
            // on a warmed cache), then each leg is a table lookup.
            let _ = self.fabric.prefetch_routes(p.src);
            // One wire frame per publication, shared by all legs.
            let header = SomeIpHeader::notification(p.instance.service, MethodId(p.group.raw()))
                .with_trace(p.trace);
            // Synthetic payload: always zeros, so only the length ever
            // changes — no per-publication refill.
            if scratch.payload_buf.len() != p.payload {
                scratch.payload_buf.clear();
                scratch.payload_buf.resize(p.payload, 0);
            }
            header.encode_into(&scratch.payload_buf, &mut scratch.frame);
            scratch
                .staged
                .push(self.fabric.stage_payload(&scratch.frame));
            // Publications come in per-topic bursts: resolve the
            // subscriber list once per (instance, group) run and re-check
            // only expiry per publication.
            if scratch.memo_key != Some((p.instance, p.group)) {
                scratch.sub_memo.clear();
                let memo = &mut scratch.sub_memo;
                self.directory
                    .for_each_subscriber(SimTime::ZERO, p.instance, p.group, |sub| {
                        memo.push((sub.host, sub.expires));
                    });
                scratch.memo_key = Some((p.instance, p.group));
            }
            for &(host, expires) in &scratch.sub_memo {
                if expires <= p.time {
                    continue;
                }
                let id = scratch.meta.len() as u64;
                scratch.meta.push((idx as u32, host));
                scratch.sends.push(MessageSend {
                    id,
                    time: p.time,
                    src: p.src,
                    dst: host,
                    payload: p.payload,
                    class: p.class,
                    priority: p.priority,
                    trace: p.trace,
                });
            }
        }
        dynplat_obs::counter!("comm.event.fanout_sends").add(scratch.sends.len() as u64);
        scratch.deliveries.clear();
        self.fabric
            .run_batch(&scratch.sends, &mut scratch.deliveries, |_, _| {});
        out.clear();
        out.reserve(scratch.deliveries.len());
        for d in scratch.deliveries.drain(..) {
            if let Some(&(idx, host)) = scratch.meta.get(d.id as usize) {
                scratch.lat.record(d.latency().as_nanos());
                out.push((idx as usize, host, d));
            }
        }
        dynplat_obs::counter!("comm.event.delivered").add(out.len() as u64);
        scratch
            .lat
            .flush_into(dynplat_obs::histogram!("comm.event.latency_ns"));
    }
}

/// One RPC invocation.
#[derive(Clone, Debug)]
pub struct RpcCall {
    /// Invocation time.
    pub time: SimTime,
    /// Client host.
    pub client: EcuId,
    /// Server host (the interface owner).
    pub server: EcuId,
    /// Request payload bytes.
    pub request_payload: usize,
    /// Response payload bytes.
    pub response_payload: usize,
    /// Server-side processing time.
    pub processing: SimDuration,
    /// Traffic class.
    pub class: TrafficClass,
    /// Frame priority.
    pub priority: u32,
    /// Causal trace context; the response inherits it from the request.
    pub trace: TraceCtx,
}

/// Result of one RPC: request latency, processing, response latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcStats {
    /// Index of the call in the input batch.
    pub call: usize,
    /// Client-observed round-trip time.
    pub round_trip: SimDuration,
    /// One-way request latency.
    pub request_latency: SimDuration,
    /// One-way response latency.
    pub response_latency: SimDuration,
}

/// Reusable scratch state for [`run_rpc_into`].
#[derive(Debug, Default)]
pub struct RpcScratch {
    sends: Vec<MessageSend>,
    deliveries: Vec<MessageDelivery>,
    /// `message id -> (sent, delivered)`; ids are dense in `0..2*calls`.
    by_id: Vec<Option<(SimTime, SimTime)>>,
    /// Per-batch round-trip accumulator, flushed once per call.
    rtt: LocalHistogram,
}

impl RpcScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        RpcScratch::default()
    }
}

/// Runs a batch of RPC calls over the fabric (request delivery triggers the
/// response injection) and reports round-trip statistics.
///
/// Allocating convenience wrapper over [`run_rpc_into`].
pub fn run_rpc(fabric: &mut Fabric, calls: &[RpcCall]) -> Vec<RpcStats> {
    let mut scratch = RpcScratch::new();
    let mut out = Vec::new();
    run_rpc_into(fabric, calls, &mut scratch, &mut out);
    out
}

/// The zero-allocation RPC driver: `scratch` buffers are reused across
/// batches and the response-injection closure borrows `calls` directly
/// (the old path cloned the whole batch per run). `out` is cleared and
/// refilled with one [`RpcStats`] per completed round-trip.
pub fn run_rpc_into(
    fabric: &mut Fabric,
    calls: &[RpcCall],
    scratch: &mut RpcScratch,
    out: &mut Vec<RpcStats>,
) {
    dynplat_obs::counter!("comm.rpc.calls").add(calls.len() as u64);
    // ids: request = 2k, response = 2k+1.
    scratch.sends.clear();
    scratch
        .sends
        .extend(calls.iter().enumerate().map(|(k, c)| MessageSend {
            id: 2 * k as u64,
            time: c.time,
            src: c.client,
            dst: c.server,
            payload: c.request_payload,
            class: c.class,
            priority: c.priority,
            trace: c.trace,
        }));
    scratch.deliveries.clear();
    fabric.run_batch(&scratch.sends, &mut scratch.deliveries, |d, inject| {
        if d.id % 2 == 0 {
            let c = &calls[(d.id / 2) as usize];
            inject.push(MessageSend {
                id: d.id + 1,
                time: d.delivered + c.processing,
                src: c.server,
                dst: c.client,
                payload: c.response_payload,
                class: c.class,
                priority: c.priority,
                // The response rides the request's causal chain.
                trace: d.trace,
            });
        }
    });
    scratch.by_id.clear();
    scratch.by_id.resize(calls.len() * 2, None);
    for d in &scratch.deliveries {
        if let Some(slot) = scratch.by_id.get_mut(d.id as usize) {
            *slot = Some((d.sent, d.delivered));
        }
    }
    out.clear();
    for k in 0..calls.len() {
        let (Some((req_sent, req_delivered)), Some((resp_sent, resp_delivered))) =
            (scratch.by_id[2 * k], scratch.by_id[2 * k + 1])
        else {
            continue; // lost request or response: no round-trip
        };
        let stats = RpcStats {
            call: k,
            round_trip: resp_delivered.saturating_since(req_sent),
            request_latency: req_delivered.saturating_since(req_sent),
            response_latency: resp_delivered.saturating_since(resp_sent),
        };
        scratch.rtt.record(stats.round_trip.as_nanos());
        out.push(stats);
    }
    dynplat_obs::counter!("comm.rpc.completed").add(out.len() as u64);
    scratch
        .rtt
        .flush_into(dynplat_obs::histogram!("comm.rpc.round_trip_ns"));
}

/// A continuous stream specification.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// First frame emission time.
    pub start: SimTime,
    /// Frames to send.
    pub frames: usize,
    /// Inter-frame interval at the source.
    pub interval: SimDuration,
    /// Bytes per frame.
    pub frame_payload: usize,
    /// Source ECU.
    pub src: EcuId,
    /// Sink ECU.
    pub dst: EcuId,
    /// Traffic class.
    pub class: TrafficClass,
    /// Frame priority.
    pub priority: u32,
    /// Causal trace context; chunk *n* inherits it with span id *n*.
    pub trace: TraceCtx,
}

/// Aggregated stream results, honoring inter-frame dependencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames delivered.
    pub delivered: usize,
    /// Frames sent.
    pub sent: usize,
    /// Mean raw arrival latency.
    pub mean_latency: SimDuration,
    /// Maximum *decodable* latency: frame n is decodable only when frames
    /// 0..=n have all arrived.
    pub max_decodable_latency: SimDuration,
    /// Arrival jitter (max − min raw latency).
    pub jitter: SimDuration,
}

/// Reusable scratch state for [`run_stream_into`].
#[derive(Debug, Default)]
pub struct StreamScratch {
    sends: Vec<MessageSend>,
    deliveries: Vec<MessageDelivery>,
    /// `frame id -> (sent, delivered)`; ids are dense in `0..frames`.
    arrival: Vec<Option<(SimTime, SimTime)>>,
    /// Per-run latency accumulator, flushed once per call.
    lat: LocalHistogram,
}

impl StreamScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        StreamScratch::default()
    }
}

/// Runs one stream over the fabric and aggregates dependency-aware
/// statistics.
///
/// Allocating convenience wrapper over [`run_stream_into`].
pub fn run_stream(fabric: &mut Fabric, spec: &StreamSpec) -> StreamStats {
    run_stream_into(fabric, spec, &mut StreamScratch::new())
}

/// The zero-allocation stream driver: `scratch` buffers are reused across
/// runs, so a warmed scratch makes repeated streams allocation-free.
pub fn run_stream_into(
    fabric: &mut Fabric,
    spec: &StreamSpec,
    scratch: &mut StreamScratch,
) -> StreamStats {
    scratch.sends.clear();
    scratch.sends.extend((0..spec.frames).map(|n| MessageSend {
        id: n as u64,
        time: spec.start + spec.interval * n as u64,
        src: spec.src,
        dst: spec.dst,
        payload: spec.frame_payload,
        class: spec.class,
        priority: spec.priority,
        trace: if spec.trace.is_active() {
            spec.trace.child(n as u64)
        } else {
            TraceCtx::NONE
        },
    }));
    dynplat_obs::counter!("comm.stream.frames_sent").add(spec.frames as u64);
    scratch.deliveries.clear();
    fabric.run_batch(&scratch.sends, &mut scratch.deliveries, |_, _| {});
    // Frame ids are dense in 0..frames: index arrivals by id in a Vec.
    scratch.arrival.clear();
    scratch.arrival.resize(spec.frames, None);
    for d in &scratch.deliveries {
        if let Some(slot) = scratch.arrival.get_mut(d.id as usize) {
            *slot = Some((d.sent, d.delivered));
        }
    }
    let mut lat_min = SimDuration::MAX;
    let mut lat_max = SimDuration::ZERO;
    let mut lat_sum = SimDuration::ZERO;
    let mut delivered = 0usize;
    let mut decodable_at = SimTime::ZERO;
    let mut max_decodable = SimDuration::ZERO;
    for slot in &scratch.arrival {
        let Some((sent, arrived)) = *slot else {
            break; // dependency chain broken: later frames undecodable
        };
        delivered += 1;
        let lat = arrived.saturating_since(sent);
        scratch.lat.record(lat.as_nanos());
        lat_min = lat_min.min(lat);
        lat_max = lat_max.max(lat);
        lat_sum += lat;
        decodable_at = decodable_at.max(arrived);
        max_decodable = max_decodable.max(decodable_at.saturating_since(sent));
    }
    dynplat_obs::counter!("comm.stream.frames_delivered").add(delivered as u64);
    scratch
        .lat
        .flush_into(dynplat_obs::histogram!("comm.stream.latency_ns"));
    StreamStats {
        delivered,
        sent: spec.frames,
        mean_latency: if delivered > 0 {
            lat_sum / delivered as u64
        } else {
            SimDuration::ZERO
        },
        max_decodable_latency: max_decodable,
        jitter: if delivered > 0 {
            lat_max.saturating_sub(lat_min)
        } else {
            SimDuration::ZERO
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sd::SdEntry;
    use dynplat_common::{AppId, BusId, ServiceId};
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};

    fn topo() -> HwTopology {
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
                EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "c", EcuClass::HighPerformance),
            ],
            [BusSpec::new(
                BusId(0),
                "eth0",
                BusKind::ethernet_100m(),
                [EcuId(0), EcuId(1), EcuId(2)],
            )],
        )
        .expect("test topology is well-formed")
    }

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn event_fans_out_to_all_subscribers() {
        let mut fabric = Fabric::new(topo());
        let mut dir = ServiceDirectory::new();
        let instance = ServiceInstance::new(ServiceId(1), 0);
        for (app, host) in [(10u32, 1u16), (11, 2)] {
            dir.apply(
                SimTime::ZERO,
                &SdEntry::Subscribe {
                    instance,
                    group: EventGroupId(1),
                    subscriber: AppId(app),
                    host: EcuId(host),
                    ttl: SimDuration::from_secs(10),
                },
            );
        }
        let mut bus = EventBus::new(&mut fabric, &dir);
        let pubs = vec![Publication {
            time: SimTime::ZERO,
            instance,
            group: EventGroupId(1),
            src: EcuId(0),
            payload: 100,
            class: TrafficClass::BestEffort,
            priority: 3,
            trace: TraceCtx::NONE,
        }];
        let results = bus.publish_all(&pubs);
        assert_eq!(results.len(), 2);
        let hosts: Vec<EcuId> = results.iter().map(|(_, h, _)| *h).collect();
        assert!(hosts.contains(&EcuId(1)) && hosts.contains(&EcuId(2)));
    }

    #[test]
    fn publish_all_into_matches_wrapper_and_recycles_arena() {
        let mut dir = ServiceDirectory::new();
        let instance = ServiceInstance::new(ServiceId(1), 0);
        for (app, host) in [(10u32, 1u16), (11, 2)] {
            dir.apply(
                SimTime::ZERO,
                &SdEntry::Subscribe {
                    instance,
                    group: EventGroupId(1),
                    subscriber: AppId(app),
                    host: EcuId(host),
                    ttl: SimDuration::from_secs(10),
                },
            );
        }
        let pubs: Vec<Publication> = (0..8)
            .map(|k| Publication {
                time: SimTime::from_micros(k * 300),
                instance,
                group: EventGroupId(1),
                src: EcuId(0),
                payload: 100,
                class: TrafficClass::BestEffort,
                priority: 3,
                trace: TraceCtx::NONE,
            })
            .collect();
        let mut f1 = Fabric::new(topo());
        let baseline = EventBus::new(&mut f1, &dir).publish_all(&pubs);

        let mut f2 = Fabric::new(topo());
        let mut scratch = EventScratch::new();
        let mut out = Vec::new();
        let mut bytes_after_warmup = 0;
        for round in 0..3 {
            let mut bus = EventBus::new(&mut f2, &dir);
            bus.publish_all_into(&pubs, &mut scratch, &mut out);
            assert_eq!(out, baseline, "round {round} must match the wrapper");
            // One staged wire frame per publication, decodable until the
            // next call, carrying the notification header.
            assert_eq!(scratch.staged_frames().len(), pubs.len());
            let frame = f2.payload(scratch.staged_frames()[0]);
            let (h, body) = SomeIpHeader::decode(frame).expect("staged frame must decode");
            assert_eq!(h.service, ServiceId(1));
            assert_eq!(h.method, MethodId(1));
            assert_eq!(body.len(), 100);
            let stats = f2.arena_stats();
            assert_eq!(stats.live, pubs.len());
            if round == 0 {
                bytes_after_warmup = stats.bytes;
            } else {
                assert_eq!(
                    stats.bytes, bytes_after_warmup,
                    "steady-state staging must recycle, not grow"
                );
            }
        }
    }

    #[test]
    fn rpc_and_stream_into_match_wrappers() {
        let calls: Vec<RpcCall> = (0..6)
            .map(|k| RpcCall {
                time: SimTime::from_micros(k * 80),
                client: EcuId(0),
                server: EcuId(1),
                request_payload: 64,
                response_payload: 128,
                processing: us(100),
                class: TrafficClass::BestEffort,
                priority: 1,
                trace: TraceCtx::NONE,
            })
            .collect();
        let mut f1 = Fabric::new(topo());
        let baseline = run_rpc(&mut f1, &calls);
        let mut f2 = Fabric::new(topo());
        let mut scratch = RpcScratch::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            run_rpc_into(&mut f2, &calls, &mut scratch, &mut out);
            assert_eq!(out, baseline);
        }

        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 20,
            interval: us(250),
            frame_payload: 1200,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::NONE,
        };
        let mut f3 = Fabric::new(topo());
        let baseline = run_stream(&mut f3, &spec);
        let mut f4 = Fabric::new(topo());
        let mut scratch = StreamScratch::new();
        for _ in 0..3 {
            assert_eq!(run_stream_into(&mut f4, &spec, &mut scratch), baseline);
        }
    }

    #[test]
    fn no_subscribers_means_no_traffic() {
        let mut fabric = Fabric::new(topo());
        let dir = ServiceDirectory::new();
        let mut bus = EventBus::new(&mut fabric, &dir);
        let pubs = vec![Publication {
            time: SimTime::ZERO,
            instance: ServiceInstance::new(ServiceId(1), 0),
            group: EventGroupId(1),
            src: EcuId(0),
            payload: 100,
            class: TrafficClass::BestEffort,
            priority: 3,
            trace: TraceCtx::NONE,
        }];
        assert!(bus.publish_all(&pubs).is_empty());
    }

    #[test]
    fn rpc_round_trip_includes_processing() {
        let mut fabric = Fabric::new(topo());
        let calls = vec![RpcCall {
            time: SimTime::ZERO,
            client: EcuId(0),
            server: EcuId(2),
            request_payload: 64,
            response_payload: 256,
            processing: us(500),
            class: TrafficClass::BestEffort,
            priority: 1,
            trace: TraceCtx::NONE,
        }];
        let stats = run_rpc(&mut fabric, &calls);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert!(s.round_trip >= s.request_latency + us(500) + s.response_latency);
        assert!(s.round_trip < us(1000), "got {}", s.round_trip);
    }

    #[test]
    fn rpc_batch_keeps_call_identity() {
        let mut fabric = Fabric::new(topo());
        let calls: Vec<RpcCall> = (0..5)
            .map(|k| RpcCall {
                time: SimTime::from_micros(k * 50),
                client: EcuId(0),
                server: EcuId(1),
                request_payload: 64,
                response_payload: 64,
                processing: us(100),
                class: TrafficClass::BestEffort,
                priority: 1,
                trace: TraceCtx::NONE,
            })
            .collect();
        let stats = run_rpc(&mut fabric, &calls);
        assert_eq!(stats.len(), 5);
        for (k, s) in stats.iter().enumerate() {
            assert_eq!(s.call, k);
        }
    }

    #[test]
    fn rpc_response_and_stream_chunks_inherit_trace() {
        use dynplat_obs::FlightRecorder;
        use std::sync::Arc;

        let mut fabric = Fabric::new(topo());
        let fr = Arc::new(FlightRecorder::new(256));
        fr.arm();
        fabric.attach_flight_recorder(fr.clone());

        let calls = vec![RpcCall {
            time: SimTime::ZERO,
            client: EcuId(0),
            server: EcuId(2),
            request_payload: 64,
            response_payload: 64,
            processing: us(100),
            class: TrafficClass::BestEffort,
            priority: 1,
            trace: TraceCtx::new(0xA1, 5),
        }];
        assert_eq!(run_rpc(&mut fabric, &calls).len(), 1);
        // Request and response both recorded under the caller's trace id:
        // two sends and two deliveries on chain 0xA1.
        let events = fr.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.trace == TraceCtx::new(0xA1, 5)));

        fr.clear();
        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 3,
            interval: us(200),
            frame_payload: 100,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::root(0xB2),
        };
        let stats = run_stream(&mut fabric, &spec);
        assert_eq!(stats.delivered, 3);
        let events = fr.events();
        assert!(events.iter().all(|e| e.trace.trace_id == 0xB2));
        // Chunk n is span n of the stream's trace.
        let spans: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == "comm.fabric.send")
            .map(|e| e.trace.span)
            .collect();
        assert_eq!(spans, vec![0, 1, 2]);
    }

    #[test]
    fn stream_decodable_latency_dominates_raw() {
        let mut fabric = Fabric::new(topo());
        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 50,
            interval: us(200),
            frame_payload: 1400,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::NONE,
        };
        let stats = run_stream(&mut fabric, &spec);
        assert_eq!(stats.delivered, 50);
        assert!(stats.max_decodable_latency >= stats.mean_latency);
        assert!(stats.jitter <= stats.max_decodable_latency);
    }

    #[test]
    fn congested_stream_has_higher_jitter_than_idle() {
        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 100,
            interval: us(150),
            frame_payload: 1400,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::NONE,
        };
        let mut idle_fabric = Fabric::new(topo());
        let idle = run_stream(&mut idle_fabric, &spec);

        // Saturating cross traffic with *higher* priority than the stream.
        let mut busy_fabric = Fabric::new(topo());
        let cross: Vec<MessageSend> = (0..300)
            .map(|i| MessageSend {
                id: 10_000 + i,
                time: SimTime::from_micros(i * 40),
                src: EcuId(1),
                dst: EcuId(2),
                payload: 1500,
                class: TrafficClass::BestEffort,
                priority: 0,
                trace: TraceCtx::NONE,
            })
            .collect();
        // Run cross traffic and stream together: merge by injecting cross
        // traffic through the callback of a dummy first message is clumsy;
        // instead send cross traffic as part of one batch with the stream.
        let mut sends: Vec<MessageSend> = (0..spec.frames)
            .map(|n| MessageSend {
                id: n as u64,
                time: spec.start + spec.interval * n as u64,
                src: spec.src,
                dst: spec.dst,
                payload: spec.frame_payload,
                class: spec.class,
                priority: spec.priority,
                trace: TraceCtx::NONE,
            })
            .collect();
        sends.extend(cross);
        let deliveries = busy_fabric.run(sends, |_| vec![]);
        let stream_lats: Vec<SimDuration> = (0..spec.frames as u64)
            .filter_map(|n| deliveries.iter().find(|d| d.id == n).map(|d| d.latency()))
            .collect();
        let busy_max = stream_lats
            .iter()
            .copied()
            .max()
            .expect("stream frames must deliver under congestion");
        let busy_min = stream_lats
            .iter()
            .copied()
            .min()
            .expect("stream frames must deliver under congestion");
        assert!(
            busy_max - busy_min > idle.jitter,
            "congestion should add jitter"
        );
    }
}
