//! The three communication paradigms of §2.1 (Fig. 3).
//!
//! * **Event** — one-way publish/subscribe: a producer owns the interface,
//!   consumers subscribe to a topic, every publication fans out to all
//!   current subscribers;
//! * **Message** — two-way request/response (RPC): the consumer of the
//!   message owns the interface ("offering the service"); essential for
//!   command & control;
//! * **Stream** — one-way continuous data where frame *n* depends on its
//!   predecessors; a frame is *decodable* only once every earlier frame has
//!   arrived, so the decodable latency is the running maximum of arrival
//!   latencies.
//!
//! All three run over the same [`Fabric`], which is how E3 compares their
//! behavior across CAN, Ethernet and TSN.

use crate::fabric::{Fabric, MessageDelivery, MessageSend};
use crate::sd::ServiceDirectory;
use dynplat_common::ids::ServiceInstance;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{EcuId, EventGroupId};
use dynplat_net::TrafficClass;
use dynplat_obs::TraceCtx;

/// A single publication request.
#[derive(Clone, Debug)]
pub struct Publication {
    /// Publish time.
    pub time: SimTime,
    /// Publishing service instance.
    pub instance: ServiceInstance,
    /// Event group.
    pub group: EventGroupId,
    /// Host ECU of the producer.
    pub src: EcuId,
    /// Payload size (bytes).
    pub payload: usize,
    /// Traffic class.
    pub class: TrafficClass,
    /// Frame priority.
    pub priority: u32,
    /// Causal trace context; every fanout leg carries it.
    pub trace: TraceCtx,
}

/// Event-paradigm driver: fans publications out to the directory's live
/// subscribers and reports per-delivery latency.
#[derive(Debug)]
pub struct EventBus<'a> {
    fabric: &'a mut Fabric,
    directory: &'a ServiceDirectory,
}

impl<'a> EventBus<'a> {
    /// Creates a driver over a fabric and a (pre-populated) directory.
    pub fn new(fabric: &'a mut Fabric, directory: &'a ServiceDirectory) -> Self {
        EventBus { fabric, directory }
    }

    /// Runs a batch of publications; returns `(publication index,
    /// subscriber host, delivery)` triples.
    pub fn publish_all(
        &mut self,
        publications: &[Publication],
    ) -> Vec<(usize, EcuId, MessageDelivery)> {
        dynplat_obs::counter!("comm.event.publications").add(publications.len() as u64);
        let mut sends = Vec::new();
        // Message ids are dense (0..fanout), so the per-send metadata lives
        // in a Vec indexed by id instead of a BTreeMap.
        let mut meta: Vec<(usize, EcuId)> = Vec::new();
        for (idx, p) in publications.iter().enumerate() {
            for sub in self.directory.subscribers(p.time, p.instance, p.group) {
                let id = meta.len() as u64;
                meta.push((idx, sub.host));
                sends.push(MessageSend {
                    id,
                    time: p.time,
                    src: p.src,
                    dst: sub.host,
                    payload: p.payload,
                    class: p.class,
                    priority: p.priority,
                    trace: p.trace,
                });
            }
        }
        dynplat_obs::counter!("comm.event.fanout_sends").add(sends.len() as u64);
        let deliveries = self.fabric.run(sends, |_| vec![]);
        let obs_delivered = dynplat_obs::counter!("comm.event.delivered");
        let obs_latency = dynplat_obs::histogram!("comm.event.latency_ns");
        deliveries
            .into_iter()
            .filter_map(|d| meta.get(d.id as usize).map(|&(idx, host)| (idx, host, d)))
            .inspect(|(_, _, d)| {
                obs_delivered.inc();
                obs_latency.record(d.latency().as_nanos());
            })
            .collect()
    }
}

/// One RPC invocation.
#[derive(Clone, Debug)]
pub struct RpcCall {
    /// Invocation time.
    pub time: SimTime,
    /// Client host.
    pub client: EcuId,
    /// Server host (the interface owner).
    pub server: EcuId,
    /// Request payload bytes.
    pub request_payload: usize,
    /// Response payload bytes.
    pub response_payload: usize,
    /// Server-side processing time.
    pub processing: SimDuration,
    /// Traffic class.
    pub class: TrafficClass,
    /// Frame priority.
    pub priority: u32,
    /// Causal trace context; the response inherits it from the request.
    pub trace: TraceCtx,
}

/// Result of one RPC: request latency, processing, response latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcStats {
    /// Index of the call in the input batch.
    pub call: usize,
    /// Client-observed round-trip time.
    pub round_trip: SimDuration,
    /// One-way request latency.
    pub request_latency: SimDuration,
    /// One-way response latency.
    pub response_latency: SimDuration,
}

/// Runs a batch of RPC calls over the fabric (request delivery triggers the
/// response injection) and reports round-trip statistics.
pub fn run_rpc(fabric: &mut Fabric, calls: &[RpcCall]) -> Vec<RpcStats> {
    dynplat_obs::counter!("comm.rpc.calls").add(calls.len() as u64);
    // ids: request = 2k, response = 2k+1.
    let sends: Vec<MessageSend> = calls
        .iter()
        .enumerate()
        .map(|(k, c)| MessageSend {
            id: 2 * k as u64,
            time: c.time,
            src: c.client,
            dst: c.server,
            payload: c.request_payload,
            class: c.class,
            priority: c.priority,
            trace: c.trace,
        })
        .collect();
    let calls_owned: Vec<RpcCall> = calls.to_vec();
    let deliveries = fabric.run(sends, move |d| {
        if d.id % 2 == 0 {
            let k = (d.id / 2) as usize;
            let c = &calls_owned[k];
            vec![MessageSend {
                id: d.id + 1,
                time: d.delivered + c.processing,
                src: c.server,
                dst: c.client,
                payload: c.response_payload,
                class: c.class,
                priority: c.priority,
                // The response rides the request's causal chain.
                trace: d.trace,
            }]
        } else {
            vec![]
        }
    });
    // Ids are dense in 0..2*calls: index deliveries by id in a Vec.
    let mut by_id: Vec<Option<&MessageDelivery>> = vec![None; calls.len() * 2];
    for d in &deliveries {
        if let Some(slot) = by_id.get_mut(d.id as usize) {
            *slot = Some(d);
        }
    }
    let obs_completed = dynplat_obs::counter!("comm.rpc.completed");
    let obs_rtt = dynplat_obs::histogram!("comm.rpc.round_trip_ns");
    calls
        .iter()
        .enumerate()
        .filter_map(|(k, _)| {
            let req = by_id[2 * k]?;
            let resp = by_id[2 * k + 1]?;
            Some(RpcStats {
                call: k,
                round_trip: resp.delivered.saturating_since(req.sent),
                request_latency: req.latency(),
                response_latency: resp.latency(),
            })
        })
        .inspect(|s| {
            obs_completed.inc();
            obs_rtt.record(s.round_trip.as_nanos());
        })
        .collect()
}

/// A continuous stream specification.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// First frame emission time.
    pub start: SimTime,
    /// Frames to send.
    pub frames: usize,
    /// Inter-frame interval at the source.
    pub interval: SimDuration,
    /// Bytes per frame.
    pub frame_payload: usize,
    /// Source ECU.
    pub src: EcuId,
    /// Sink ECU.
    pub dst: EcuId,
    /// Traffic class.
    pub class: TrafficClass,
    /// Frame priority.
    pub priority: u32,
    /// Causal trace context; chunk *n* inherits it with span id *n*.
    pub trace: TraceCtx,
}

/// Aggregated stream results, honoring inter-frame dependencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames delivered.
    pub delivered: usize,
    /// Frames sent.
    pub sent: usize,
    /// Mean raw arrival latency.
    pub mean_latency: SimDuration,
    /// Maximum *decodable* latency: frame n is decodable only when frames
    /// 0..=n have all arrived.
    pub max_decodable_latency: SimDuration,
    /// Arrival jitter (max − min raw latency).
    pub jitter: SimDuration,
}

/// Runs one stream over the fabric and aggregates dependency-aware
/// statistics.
pub fn run_stream(fabric: &mut Fabric, spec: &StreamSpec) -> StreamStats {
    let sends: Vec<MessageSend> = (0..spec.frames)
        .map(|n| MessageSend {
            id: n as u64,
            time: spec.start + spec.interval * n as u64,
            src: spec.src,
            dst: spec.dst,
            payload: spec.frame_payload,
            class: spec.class,
            priority: spec.priority,
            trace: if spec.trace.is_active() {
                spec.trace.child(n as u64)
            } else {
                TraceCtx::NONE
            },
        })
        .collect();
    dynplat_obs::counter!("comm.stream.frames_sent").add(spec.frames as u64);
    let deliveries = fabric.run(sends, |_| vec![]);
    let obs_delivered = dynplat_obs::counter!("comm.stream.frames_delivered");
    let obs_latency = dynplat_obs::histogram!("comm.stream.latency_ns");
    // Frame ids are dense in 0..frames: index arrivals by id in a Vec.
    let mut arrival: Vec<Option<&MessageDelivery>> = vec![None; spec.frames];
    for d in &deliveries {
        if let Some(slot) = arrival.get_mut(d.id as usize) {
            *slot = Some(d);
        }
    }
    let mut lat_min = SimDuration::MAX;
    let mut lat_max = SimDuration::ZERO;
    let mut lat_sum = SimDuration::ZERO;
    let mut delivered = 0usize;
    let mut decodable_at = SimTime::ZERO;
    let mut max_decodable = SimDuration::ZERO;
    for slot in &arrival {
        let Some(d) = slot else {
            break; // dependency chain broken: later frames undecodable
        };
        delivered += 1;
        let lat = d.latency();
        obs_delivered.inc();
        obs_latency.record(lat.as_nanos());
        lat_min = lat_min.min(lat);
        lat_max = lat_max.max(lat);
        lat_sum += lat;
        decodable_at = decodable_at.max(d.delivered);
        max_decodable = max_decodable.max(decodable_at.saturating_since(d.sent));
    }
    StreamStats {
        delivered,
        sent: spec.frames,
        mean_latency: if delivered > 0 {
            lat_sum / delivered as u64
        } else {
            SimDuration::ZERO
        },
        max_decodable_latency: max_decodable,
        jitter: if delivered > 0 {
            lat_max.saturating_sub(lat_min)
        } else {
            SimDuration::ZERO
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sd::SdEntry;
    use dynplat_common::{AppId, BusId, ServiceId};
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};

    fn topo() -> HwTopology {
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
                EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "c", EcuClass::HighPerformance),
            ],
            [BusSpec::new(
                BusId(0),
                "eth0",
                BusKind::ethernet_100m(),
                [EcuId(0), EcuId(1), EcuId(2)],
            )],
        )
        .unwrap()
    }

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn event_fans_out_to_all_subscribers() {
        let mut fabric = Fabric::new(topo());
        let mut dir = ServiceDirectory::new();
        let instance = ServiceInstance::new(ServiceId(1), 0);
        for (app, host) in [(10u32, 1u16), (11, 2)] {
            dir.apply(
                SimTime::ZERO,
                &SdEntry::Subscribe {
                    instance,
                    group: EventGroupId(1),
                    subscriber: AppId(app),
                    host: EcuId(host),
                    ttl: SimDuration::from_secs(10),
                },
            );
        }
        let mut bus = EventBus::new(&mut fabric, &dir);
        let pubs = vec![Publication {
            time: SimTime::ZERO,
            instance,
            group: EventGroupId(1),
            src: EcuId(0),
            payload: 100,
            class: TrafficClass::BestEffort,
            priority: 3,
            trace: TraceCtx::NONE,
        }];
        let results = bus.publish_all(&pubs);
        assert_eq!(results.len(), 2);
        let hosts: Vec<EcuId> = results.iter().map(|(_, h, _)| *h).collect();
        assert!(hosts.contains(&EcuId(1)) && hosts.contains(&EcuId(2)));
    }

    #[test]
    fn no_subscribers_means_no_traffic() {
        let mut fabric = Fabric::new(topo());
        let dir = ServiceDirectory::new();
        let mut bus = EventBus::new(&mut fabric, &dir);
        let pubs = vec![Publication {
            time: SimTime::ZERO,
            instance: ServiceInstance::new(ServiceId(1), 0),
            group: EventGroupId(1),
            src: EcuId(0),
            payload: 100,
            class: TrafficClass::BestEffort,
            priority: 3,
            trace: TraceCtx::NONE,
        }];
        assert!(bus.publish_all(&pubs).is_empty());
    }

    #[test]
    fn rpc_round_trip_includes_processing() {
        let mut fabric = Fabric::new(topo());
        let calls = vec![RpcCall {
            time: SimTime::ZERO,
            client: EcuId(0),
            server: EcuId(2),
            request_payload: 64,
            response_payload: 256,
            processing: us(500),
            class: TrafficClass::BestEffort,
            priority: 1,
            trace: TraceCtx::NONE,
        }];
        let stats = run_rpc(&mut fabric, &calls);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert!(s.round_trip >= s.request_latency + us(500) + s.response_latency);
        assert!(s.round_trip < us(1000), "got {}", s.round_trip);
    }

    #[test]
    fn rpc_batch_keeps_call_identity() {
        let mut fabric = Fabric::new(topo());
        let calls: Vec<RpcCall> = (0..5)
            .map(|k| RpcCall {
                time: SimTime::from_micros(k * 50),
                client: EcuId(0),
                server: EcuId(1),
                request_payload: 64,
                response_payload: 64,
                processing: us(100),
                class: TrafficClass::BestEffort,
                priority: 1,
                trace: TraceCtx::NONE,
            })
            .collect();
        let stats = run_rpc(&mut fabric, &calls);
        assert_eq!(stats.len(), 5);
        for (k, s) in stats.iter().enumerate() {
            assert_eq!(s.call, k);
        }
    }

    #[test]
    fn rpc_response_and_stream_chunks_inherit_trace() {
        use dynplat_obs::FlightRecorder;
        use std::sync::Arc;

        let mut fabric = Fabric::new(topo());
        let fr = Arc::new(FlightRecorder::new(256));
        fr.arm();
        fabric.attach_flight_recorder(fr.clone());

        let calls = vec![RpcCall {
            time: SimTime::ZERO,
            client: EcuId(0),
            server: EcuId(2),
            request_payload: 64,
            response_payload: 64,
            processing: us(100),
            class: TrafficClass::BestEffort,
            priority: 1,
            trace: TraceCtx::new(0xA1, 5),
        }];
        assert_eq!(run_rpc(&mut fabric, &calls).len(), 1);
        // Request and response both recorded under the caller's trace id:
        // two sends and two deliveries on chain 0xA1.
        let events = fr.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.trace == TraceCtx::new(0xA1, 5)));

        fr.clear();
        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 3,
            interval: us(200),
            frame_payload: 100,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::root(0xB2),
        };
        let stats = run_stream(&mut fabric, &spec);
        assert_eq!(stats.delivered, 3);
        let events = fr.events();
        assert!(events.iter().all(|e| e.trace.trace_id == 0xB2));
        // Chunk n is span n of the stream's trace.
        let spans: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == "comm.fabric.send")
            .map(|e| e.trace.span)
            .collect();
        assert_eq!(spans, vec![0, 1, 2]);
    }

    #[test]
    fn stream_decodable_latency_dominates_raw() {
        let mut fabric = Fabric::new(topo());
        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 50,
            interval: us(200),
            frame_payload: 1400,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::NONE,
        };
        let stats = run_stream(&mut fabric, &spec);
        assert_eq!(stats.delivered, 50);
        assert!(stats.max_decodable_latency >= stats.mean_latency);
        assert!(stats.jitter <= stats.max_decodable_latency);
    }

    #[test]
    fn congested_stream_has_higher_jitter_than_idle() {
        let spec = StreamSpec {
            start: SimTime::ZERO,
            frames: 100,
            interval: us(150),
            frame_payload: 1400,
            src: EcuId(0),
            dst: EcuId(2),
            class: TrafficClass::Stream,
            priority: 4,
            trace: TraceCtx::NONE,
        };
        let mut idle_fabric = Fabric::new(topo());
        let idle = run_stream(&mut idle_fabric, &spec);

        // Saturating cross traffic with *higher* priority than the stream.
        let mut busy_fabric = Fabric::new(topo());
        let cross: Vec<MessageSend> = (0..300)
            .map(|i| MessageSend {
                id: 10_000 + i,
                time: SimTime::from_micros(i * 40),
                src: EcuId(1),
                dst: EcuId(2),
                payload: 1500,
                class: TrafficClass::BestEffort,
                priority: 0,
                trace: TraceCtx::NONE,
            })
            .collect();
        // Run cross traffic and stream together: merge by injecting cross
        // traffic through the callback of a dummy first message is clumsy;
        // instead send cross traffic as part of one batch with the stream.
        let mut sends: Vec<MessageSend> = (0..spec.frames)
            .map(|n| MessageSend {
                id: n as u64,
                time: spec.start + spec.interval * n as u64,
                src: spec.src,
                dst: spec.dst,
                payload: spec.frame_payload,
                class: spec.class,
                priority: spec.priority,
                trace: TraceCtx::NONE,
            })
            .collect();
        sends.extend(cross);
        let deliveries = busy_fabric.run(sends, |_| vec![]);
        let stream_lats: Vec<SimDuration> = (0..spec.frames as u64)
            .filter_map(|n| deliveries.iter().find(|d| d.id == n).map(|d| d.latency()))
            .collect();
        let busy_max = stream_lats.iter().copied().max().unwrap();
        let busy_min = stream_lats.iter().copied().min().unwrap();
        assert!(
            busy_max - busy_min > idle.jitter,
            "congestion should add jitter"
        );
    }
}
