//! Multi-bus network fabric.
//!
//! Connects the `dynplat-hw` topology with the `dynplat-net` media: a
//! message from ECU A to ECU B is routed over the bus path, segmented to
//! each medium's maximum frame payload (8 B on CAN, 254 B on FlexRay,
//! 1500 B on Ethernet), forwarded store-and-forward at gateway ECUs with a
//! configurable processing delay, and delivered when its last segment
//! arrives. A delivery callback lets higher layers inject reactions (RPC
//! responses, re-publications) into the same simulation run.
//!
//! # Hot-path design
//!
//! `Fabric::run` is the innermost loop of every paradigm benchmark and
//! every fault-injection campaign, so its bookkeeping is allocation-free
//! in steady state:
//!
//! * events live in a free-list slab (`EventQueue`); the binary heap
//!   orders `(time, seq, slot)` triples and the slab slot replaces the old
//!   side `BTreeMap<u64, Event>` payload table;
//! * in-flight messages live in a second slab (`MsgSlab`) keyed by
//!   recycled `u32` slots that double as frame ids on the wire;
//! * routes come from a dense [`RouteCache`] instead of a fresh BFS (with
//!   its `BTreeMap`/`BTreeSet`/`VecDeque` allocations) per injection;
//! * per-bus state (`ports`, `bus_free`, `bus_next_poll`) is `Vec`-indexed
//!   by a dense bus index rather than `BTreeMap`-keyed by `BusId`.

use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId, MessageId};
use dynplat_hw::{BusKind, HwTopology, RouteCache};
use dynplat_net::{
    Arbiter, CanArbiter, FifoPort, FlexRayBus, Frame, GateControlList, Grant, SlotAssignment,
    StrictPriorityPort, TrafficClass, TsnGatedPort,
};
use dynplat_obs::{FlightRecorder, TraceCtx};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One configured egress medium for a bus segment.
#[derive(Debug)]
pub enum BusPort {
    /// CAN with id arbitration.
    Can(CanArbiter),
    /// Plain FIFO Ethernet (no isolation baseline).
    Fifo(FifoPort),
    /// 802.1p strict-priority Ethernet.
    Priority(StrictPriorityPort),
    /// 802.1Qbv time-gated Ethernet.
    Tsn(TsnGatedPort),
    /// FlexRay channel.
    FlexRay(FlexRayBus),
}

impl BusPort {
    /// Maximum frame payload of this medium in bytes.
    pub fn mtu(&self) -> usize {
        match self {
            BusPort::Can(_) => 8,
            BusPort::FlexRay(_) => 254,
            BusPort::Fifo(_) | BusPort::Priority(_) | BusPort::Tsn(_) => 1500,
        }
    }

    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        match self {
            BusPort::Can(p) => p.enqueue(now, frame),
            BusPort::Fifo(p) => p.enqueue(now, frame),
            BusPort::Priority(p) => p.enqueue(now, frame),
            BusPort::Tsn(p) => p.enqueue(now, frame),
            BusPort::FlexRay(p) => p.enqueue(now, frame),
        }
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        match self {
            BusPort::Can(p) => p.poll(now),
            BusPort::Fifo(p) => p.poll(now),
            BusPort::Priority(p) => p.poll(now),
            BusPort::Tsn(p) => p.poll(now),
            BusPort::FlexRay(p) => p.poll(now),
        }
    }

    /// Builds the default port for a bus kind: CAN arbitration, strict
    /// priority for Ethernet, FlexRay with an empty static assignment.
    pub fn default_for(kind: BusKind) -> BusPort {
        match kind {
            BusKind::Can { bitrate } => BusPort::Can(CanArbiter::new(bitrate)),
            BusKind::Ethernet { bitrate } => BusPort::Priority(StrictPriorityPort::new(bitrate)),
            BusKind::FlexRay { .. } => BusPort::FlexRay(FlexRayBus::new(
                dynplat_net::FlexRayConfig::typical_10mbit(),
                SlotAssignment::new(),
            )),
        }
    }

    /// A TSN port for an Ethernet bus.
    pub fn tsn_for(kind: BusKind, gcl: GateControlList) -> BusPort {
        BusPort::Tsn(TsnGatedPort::new(kind.bitrate(), gcl))
    }

    /// A FIFO port for an Ethernet bus (no-isolation baseline).
    pub fn fifo_for(kind: BusKind) -> BusPort {
        BusPort::Fifo(FifoPort::new(kind.bitrate()))
    }
}

/// A message to be carried by the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageSend {
    /// Caller-chosen correlation id (reported back in the delivery).
    pub id: u64,
    /// Injection time.
    pub time: SimTime,
    /// Source ECU.
    pub src: EcuId,
    /// Destination ECU.
    pub dst: EcuId,
    /// Total payload bytes (middleware header included by the caller).
    pub payload: usize,
    /// Traffic class for TSN gating.
    pub class: TrafficClass,
    /// Priority (lower = more urgent) for CAN / 802.1p arbitration.
    pub priority: u32,
    /// Causal trace context; [`TraceCtx::NONE`] costs nothing on the hot
    /// path (one branch per lifecycle event when a recorder is attached).
    pub trace: TraceCtx,
}

/// A completed end-to-end delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageDelivery {
    /// Correlation id from the send.
    pub id: u64,
    /// Injection time.
    pub sent: SimTime,
    /// Arrival of the last segment at the destination.
    pub delivered: SimTime,
    /// Number of bus hops traversed (0 = same ECU).
    pub hops: usize,
    /// Trace context inherited from the send, so reactions injected by
    /// the delivery callback can stay on the same causal chain.
    pub trace: TraceCtx,
}

impl MessageDelivery {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.delivered.saturating_since(self.sent)
    }
}

struct MsgState {
    send: MessageSend,
    route: Arc<[BusId]>,
    hop: usize,
    segs_outstanding: usize,
}

enum Event {
    Inject(MessageSend),
    /// Poll the bus at this dense index.
    Poll(u32),
    /// A frame of the message in this [`MsgSlab`] slot finished on a bus.
    TxDone(u32, u32),
}

/// Min-ordered event queue backed by a free-list slab.
///
/// The heap holds `(time, seq, slot)` triples; `seq` is a monotone tie-break
/// so simultaneous events stay FIFO, and `slot` indexes the slab where the
/// event payload lives. Pops return slots to the free list, so a run's
/// allocations are bounded by the peak number of pending events rather than
/// growing with every event (the old side `BTreeMap<u64, Event>` paid an
/// insert and a remove per event).
struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Option<Event>>,
    free: Vec<u32>,
    seq: u64,
}

impl EventQueue {
    fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, t: SimTime, ev: Event) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                self.slots.push(Some(ev));
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((t, seq, slot)));
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        let Reverse((t, _, slot)) = self.heap.pop()?;
        let ev = self.slots[slot as usize].take().expect("event slot filled");
        self.free.push(slot);
        Some((t, ev))
    }
}

/// Free-list slab of in-flight message state.
///
/// Slots are `u32` and recycled as soon as a message delivers, so the live
/// range of a slot value is exactly the in-flight lifetime of one message.
#[derive(Default)]
struct MsgSlab {
    slots: Vec<Option<MsgState>>,
    free: Vec<u32>,
}

/// Occupancy of the in-flight message slab after a [`Fabric::run`].
///
/// `capacity` is also the run's high-water mark: the slab grows only when
/// the free list is empty, so `slots.len()` equals the peak number of
/// concurrently in-flight messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Messages still occupying a slot (0 once a run fully drains).
    pub live: usize,
    /// Recycled slots available for reuse.
    pub free: usize,
    /// Total slots ever allocated (peak concurrent in-flight messages).
    pub capacity: usize,
}

impl MsgSlab {
    fn stats(&self) -> SlabStats {
        SlabStats {
            live: self.slots.len() - self.free.len(),
            free: self.free.len(),
            capacity: self.slots.len(),
        }
    }

    fn insert(&mut self, state: MsgState) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(state);
                s
            }
            None => {
                self.slots.push(Some(state));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn get_mut(&mut self, slot: u32) -> &mut MsgState {
        self.slots[slot as usize].as_mut().expect("message state")
    }

    fn remove(&mut self, slot: u32) -> MsgState {
        let state = self.slots[slot as usize].take().expect("message state");
        self.free.push(slot);
        state
    }
}

/// The fabric simulator.
pub struct Fabric {
    topology: HwTopology,
    routes: RouteCache,
    /// Port per bus, indexed by dense bus index (ascending `BusId` order).
    ports: Vec<BusPort>,
    /// Raw `BusId` -> dense index; `u32::MAX` marks an unknown bus.
    bus_lookup: Vec<u32>,
    gateway_delay: SimDuration,
    local_delay: SimDuration,
    flight: Option<Arc<FlightRecorder>>,
    last_slab: SlabStats,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("buses", &self.ports.len())
            .field("ecus", &self.topology.ecu_count())
            .finish()
    }
}

impl Fabric {
    /// Creates a fabric with default ports for every bus in `topology`.
    pub fn new(topology: HwTopology) -> Self {
        let routes = RouteCache::new(&topology);
        let mut ports = Vec::new();
        let mut bus_ids = Vec::new();
        for bus in topology.buses() {
            ports.push(BusPort::default_for(bus.kind));
            bus_ids.push(bus.id);
        }
        let max_raw = bus_ids.iter().map(|b| b.raw() as usize).max();
        let mut bus_lookup = vec![u32::MAX; max_raw.map_or(0, |m| m + 1)];
        for (i, id) in bus_ids.iter().enumerate() {
            bus_lookup[id.raw() as usize] = i as u32;
        }
        Fabric {
            topology,
            routes,
            ports,
            bus_lookup,
            gateway_delay: SimDuration::from_micros(50),
            local_delay: SimDuration::from_micros(5),
            flight: None,
            last_slab: SlabStats::default(),
        }
    }

    /// Attaches a flight recorder: traced messages (active [`TraceCtx`])
    /// get their send/deliver/drop lifecycle recorded as trace events.
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.flight = Some(recorder);
    }

    /// Slab occupancy of the most recent [`Fabric::run`] (also exported
    /// as the `bench.comm.slab_live` / `bench.comm.slab_free` gauges).
    pub fn slab_stats(&self) -> SlabStats {
        self.last_slab
    }

    fn bus_index(&self, bus: BusId) -> Option<usize> {
        match self.bus_lookup.get(bus.raw() as usize) {
            Some(&i) if i != u32::MAX => Some(i as usize),
            _ => None,
        }
    }

    /// Replaces the port of one bus (e.g. swap strict priority for TSN).
    ///
    /// # Panics
    ///
    /// Panics if the bus is unknown.
    pub fn set_port(&mut self, bus: BusId, port: BusPort) {
        let idx = self.bus_index(bus);
        let idx = idx.unwrap_or_else(|| panic!("unknown bus {bus}"));
        self.ports[idx] = port;
    }

    /// Sets the gateway store-and-forward delay (default 50 µs).
    pub fn set_gateway_delay(&mut self, delay: SimDuration) {
        self.gateway_delay = delay;
    }

    /// The topology the fabric runs over.
    pub fn topology(&self) -> &HwTopology {
        &self.topology
    }

    /// Runs a batch of sends to completion; `on_delivery` may inject new
    /// sends (RPC responses, forwarded publications) at or after the
    /// delivery time.
    ///
    /// Returns all deliveries in completion order. Messages between
    /// unreachable ECUs are silently dropped (counted by the caller via
    /// missing ids).
    pub fn run<F>(&mut self, sends: Vec<MessageSend>, mut on_delivery: F) -> Vec<MessageDelivery>
    where
        F: FnMut(&MessageDelivery) -> Vec<MessageSend>,
    {
        let obs_sends = dynplat_obs::counter!("comm.fabric.sends");
        let obs_drops = dynplat_obs::counter!("comm.fabric.dropped_unreachable");
        let obs_deliveries = dynplat_obs::counter!("comm.fabric.deliveries");
        let obs_latency = dynplat_obs::histogram!("comm.fabric.latency_ns");
        obs_sends.add(sends.len() as u64);
        let flight = self.flight.clone();
        // One closure for all lifecycle sites; untraced messages (the
        // bench fast path) cost exactly the `is_active` branch.
        let observe = |now: SimTime, send: &MessageSend, stage: &'static str| {
            if let Some(fr) = &flight {
                if send.trace.is_active() {
                    fr.record(
                        now.as_nanos(),
                        send.trace,
                        stage,
                        format!("id={} src={} dst={}", send.id, send.src, send.dst),
                    );
                }
            }
        };

        let n_buses = self.ports.len();
        let mut queue = EventQueue::with_capacity(sends.len() + n_buses + 1);
        let mut deliveries = Vec::with_capacity(sends.len());
        for send in sends {
            let t = send.time;
            queue.push(t, Event::Inject(send));
        }

        let mut msgs = MsgSlab::default();
        // SimTime::ZERO = bus free now; SimTime::MAX = no poll scheduled.
        let mut bus_free = vec![SimTime::ZERO; n_buses];
        let mut bus_next_poll = vec![SimTime::MAX; n_buses];

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Event::Inject(send) => {
                    observe(now, &send, "comm.fabric.send");
                    let Ok(route) = self.routes.route_buses(send.src, send.dst) else {
                        obs_drops.inc();
                        observe(now, &send, "comm.fabric.drop_unreachable");
                        continue; // unreachable: drop
                    };
                    if route.is_empty() {
                        let delivery = MessageDelivery {
                            id: send.id,
                            sent: send.time,
                            delivered: now + self.local_delay,
                            hops: 0,
                            trace: send.trace,
                        };
                        observe(delivery.delivered, &send, "comm.fabric.deliver");
                        obs_deliveries.inc();
                        obs_latency.record(delivery.latency().as_nanos());
                        for extra in on_delivery(&delivery) {
                            let t = extra.time.max(now);
                            obs_sends.inc();
                            queue.push(t, Event::Inject(extra));
                        }
                        deliveries.push(delivery);
                        continue;
                    }
                    let slot = msgs.insert(MsgState {
                        send,
                        route,
                        hop: 0,
                        segs_outstanding: 0,
                    });
                    self.start_hop(
                        slot,
                        now,
                        &mut msgs,
                        &mut queue,
                        &bus_free,
                        &mut bus_next_poll,
                    );
                }
                Event::Poll(bus) => {
                    let bi = bus as usize;
                    if bus_next_poll[bi] != now {
                        continue; // stale poll
                    }
                    bus_next_poll[bi] = SimTime::MAX;
                    let free = bus_free[bi];
                    if now < free {
                        schedule_poll(&mut bus_next_poll, &mut queue, bus, free);
                        continue;
                    }
                    match self.ports[bi].poll(now) {
                        Grant::Tx(tx) => {
                            bus_free[bi] = tx.end;
                            queue.push(tx.end, Event::TxDone(bus, tx.frame.id.raw()));
                            schedule_poll(&mut bus_next_poll, &mut queue, bus, tx.end);
                        }
                        Grant::WaitUntil(t) => {
                            schedule_poll(&mut bus_next_poll, &mut queue, bus, t);
                        }
                        Grant::Idle => {}
                    }
                }
                Event::TxDone(_bus, slot) => {
                    let state = msgs.get_mut(slot);
                    state.segs_outstanding -= 1;
                    if state.segs_outstanding > 0 {
                        continue;
                    }
                    state.hop += 1;
                    if state.hop >= state.route.len() {
                        let state = msgs.remove(slot);
                        let delivery = MessageDelivery {
                            id: state.send.id,
                            sent: state.send.time,
                            delivered: now,
                            hops: state.route.len(),
                            trace: state.send.trace,
                        };
                        observe(now, &state.send, "comm.fabric.deliver");
                        obs_deliveries.inc();
                        obs_latency.record(delivery.latency().as_nanos());
                        for extra in on_delivery(&delivery) {
                            let t = extra.time.max(now);
                            obs_sends.inc();
                            queue.push(t, Event::Inject(extra));
                        }
                        deliveries.push(delivery);
                    } else {
                        let at = now + self.gateway_delay;
                        self.start_hop(
                            slot,
                            at,
                            &mut msgs,
                            &mut queue,
                            &bus_free,
                            &mut bus_next_poll,
                        );
                    }
                }
            }
        }
        // Satellite observability for the PR 3 slab engine: a fully
        // drained run leaves `live == 0` with the whole high-water mark on
        // the free list.
        self.last_slab = msgs.stats();
        dynplat_obs::gauge!("bench.comm.slab_live").set(self.last_slab.live as i64);
        dynplat_obs::gauge!("bench.comm.slab_free").set(self.last_slab.free as i64);
        deliveries
    }

    /// Enqueues all segments of the message's current hop and schedules the
    /// earliest useful poll of that bus.
    fn start_hop(
        &mut self,
        slot: u32,
        now: SimTime,
        msgs: &mut MsgSlab,
        queue: &mut EventQueue,
        bus_free: &[SimTime],
        bus_next_poll: &mut [SimTime],
    ) {
        let state = msgs.get_mut(slot);
        let bus = state.route[state.hop];
        let bi = self.bus_lookup[bus.raw() as usize] as usize;
        let port = &mut self.ports[bi];
        let mtu = port.mtu();
        let total = state.send.payload.max(1);
        let full = total / mtu;
        let rest = total % mtu;
        state.segs_outstanding = full + usize::from(rest > 0);
        // Frames carry the message's slab slot as their wire id. Slots are
        // recycled only after the message's final `TxDone` fires (delivery
        // removes it), so a live slot is never aliased by a later message.
        // Regression note: the previous implementation derived the frame id
        // from a monotonically increasing u64 key truncated with `as u32`,
        // which collides after 2^32 messages and makes `TxDone` decrement a
        // *different* message's segment count. Slot recycling keeps ids
        // bounded by the peak number of concurrently in-flight messages, far
        // below `u32::MAX`.
        for i in 0..state.segs_outstanding {
            let payload = if i < full { mtu } else { rest };
            port.enqueue(
                now,
                Frame {
                    id: MessageId(slot),
                    payload,
                    priority: state.send.priority,
                    class: state.send.class,
                },
            );
        }
        let poll_time = now.max(bus_free[bi]);
        if poll_time < bus_next_poll[bi] {
            bus_next_poll[bi] = poll_time;
            queue.push(poll_time, Event::Poll(bi as u32));
        }
    }
}

/// Schedules a poll of `bus` at `t` unless an earlier one is already due.
fn schedule_poll(bus_next_poll: &mut [SimTime], queue: &mut EventQueue, bus: u32, t: SimTime) {
    if t < bus_next_poll[bus as usize] {
        bus_next_poll[bus as usize] = t;
        queue.push(t, Event::Poll(bus));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_hw::topology::BusSpec;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// ecu0 --can0-- ecu1 --eth0-- ecu2
    fn topo() -> HwTopology {
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
                EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
            ],
            [
                BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
                BusSpec::new(
                    BusId(1),
                    "eth0",
                    BusKind::ethernet_100m(),
                    [EcuId(1), EcuId(2)],
                ),
            ],
        )
        .unwrap()
    }

    fn send(id: u64, t_us: u64, src: u16, dst: u16, payload: usize) -> MessageSend {
        MessageSend {
            id,
            time: SimTime::from_micros(t_us),
            src: EcuId(src),
            dst: EcuId(dst),
            payload,
            class: TrafficClass::BestEffort,
            priority: id as u32,
            trace: TraceCtx::NONE,
        }
    }

    #[test]
    fn single_hop_ethernet_delivery() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 1, 2, 1000)], |_| vec![]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].hops, 1);
        // ~82 us at 100 Mbit/s for 1000+overhead bytes.
        assert!(done[0].latency() > SimDuration::from_micros(50));
        assert!(done[0].latency() < SimDuration::from_micros(200));
    }

    #[test]
    fn local_delivery_is_fast() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 2, 2, 1000)], |_| vec![]);
        assert_eq!(done[0].hops, 0);
        assert!(done[0].latency() < SimDuration::from_micros(10));
    }

    #[test]
    fn can_segmentation_of_large_payload() {
        let mut fabric = Fabric::new(topo());
        // 64 bytes over CAN = 8 frames of 8 bytes, each 270 us at 500 kbit/s.
        let done = fabric.run(vec![send(1, 0, 0, 1, 64)], |_| vec![]);
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        assert!(lat >= SimDuration::from_micros(270 * 8), "got {lat}");
        assert!(lat < SimDuration::from_micros(270 * 9), "got {lat}");
    }

    #[test]
    fn gateway_route_crosses_both_buses() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 0, 2, 8)], |_| vec![]);
        assert_eq!(done[0].hops, 2);
        // One CAN frame (270us) + gateway (50us) + one Ethernet frame.
        let lat = done[0].latency();
        assert!(lat > SimDuration::from_micros(320), "got {lat}");
        assert!(lat < SimDuration::from_micros(400), "got {lat}");
    }

    #[test]
    fn unreachable_destination_is_dropped() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 0, 9, 8)], |_| vec![]);
        assert!(done.is_empty());
    }

    #[test]
    fn deliveries_trigger_callback_injections() {
        // Request 1->2, response 2->1 injected on delivery (an RPC shape).
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(10, 0, 1, 2, 200)], |d| {
            if d.id == 10 {
                vec![MessageSend {
                    id: 20,
                    time: d.delivered + SimDuration::from_micros(100),
                    src: EcuId(2),
                    dst: EcuId(1),
                    payload: 64,
                    class: TrafficClass::BestEffort,
                    priority: 0,
                    trace: d.trace,
                }]
            } else {
                vec![]
            }
        });
        assert_eq!(done.len(), 2);
        let req = done.iter().find(|d| d.id == 10).unwrap();
        let resp = done.iter().find(|d| d.id == 20).unwrap();
        assert!(resp.sent >= req.delivered + SimDuration::from_micros(100));
        assert!(resp.delivered > resp.sent);
    }

    #[test]
    fn priority_protects_urgent_message_on_shared_bus() {
        let mut fabric = Fabric::new(topo());
        let mut sends: Vec<MessageSend> = (0..20)
            .map(|i| {
                let mut s = send(100 + i, 0, 1, 2, 1500);
                s.priority = 7;
                s
            })
            .collect();
        let mut urgent = send(1, 100, 1, 2, 100);
        urgent.priority = 0;
        urgent.class = TrafficClass::Critical;
        sends.push(urgent);
        let done = fabric.run(sends, |_| vec![]);
        let u = done.iter().find(|d| d.id == 1).unwrap();
        // At most one bulk frame of blocking (~123 us) plus own time.
        assert!(
            u.latency() < SimDuration::from_micros(300),
            "urgent delayed {}",
            u.latency()
        );
    }

    #[test]
    fn tsn_port_swaps_in() {
        let mut fabric = Fabric::new(topo());
        let gcl = GateControlList::mixed_criticality(ms(1), 0.3);
        fabric.set_port(BusId(1), BusPort::tsn_for(BusKind::ethernet_100m(), gcl));
        let mut s = send(1, 0, 1, 2, 100);
        s.class = TrafficClass::Critical;
        let done = fabric.run(vec![s], |_| vec![]);
        assert_eq!(done.len(), 1);
        // Critical window opens at cycle start: immediate transmission.
        assert!(done[0].latency() < SimDuration::from_micros(100));
    }

    #[test]
    fn throughput_accounting_many_messages() {
        let mut fabric = Fabric::new(topo());
        let sends: Vec<MessageSend> = (0..200).map(|i| send(i, i * 10, 1, 2, 1000)).collect();
        let done = fabric.run(sends, |_| vec![]);
        assert_eq!(done.len(), 200);
        // Completion order is monotone in delivery time.
        for pair in done.windows(2) {
            assert!(pair[0].delivered <= pair[1].delivered);
        }
    }

    #[test]
    fn trace_context_rides_delivery_and_flight_recorder_sees_lifecycle() {
        let mut fabric = Fabric::new(topo());
        let fr = Arc::new(FlightRecorder::new(64));
        fr.arm();
        fabric.attach_flight_recorder(fr.clone());
        let mut traced = send(10, 0, 0, 2, 8);
        traced.trace = TraceCtx::new(0xCAFE, 1);
        let untraced = send(11, 0, 1, 2, 8);
        // The callback continues the trace: the reaction inherits the
        // delivery's context under a child span.
        let done = fabric.run(vec![traced, untraced], |d| {
            if d.id == 10 {
                let mut resp = send(20, d.delivered.as_nanos() / 1000, 2, 0, 8);
                resp.trace = d.trace.child(2);
                vec![resp]
            } else {
                vec![]
            }
        });
        assert_eq!(done.len(), 3);
        let by_id = |id: u64| done.iter().find(|d| d.id == id).unwrap();
        assert_eq!(by_id(10).trace, TraceCtx::new(0xCAFE, 1));
        assert_eq!(by_id(20).trace, TraceCtx::new(0xCAFE, 2));
        assert_eq!(by_id(11).trace, TraceCtx::NONE);
        // Only the traced chain is recorded: send+deliver for the request
        // and for the response, nothing for the untraced message.
        let events = fr.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.trace.trace_id == 0xCAFE));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.stage == "comm.fabric.send")
                .count(),
            2
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.stage == "comm.fabric.deliver")
                .count(),
            2
        );
    }

    #[test]
    fn slab_returns_to_steady_state_after_burst() {
        let mut fabric = Fabric::new(topo());
        // A burst of overlapping sends drives the slab high-water mark up…
        let sends: Vec<MessageSend> = (0..100).map(|i| send(i, 0, 1, 2, 1000)).collect();
        fabric.run(sends, |_| vec![]);
        let burst = fabric.slab_stats();
        assert_eq!(burst.live, 0, "run must drain the slab");
        assert!(burst.capacity >= 50, "burst should overlap heavily");
        assert_eq!(burst.free, burst.capacity);
        // …and a later spaced-out trickle drains with a tiny footprint.
        let sends: Vec<MessageSend> = (0..10).map(|i| send(i, i * 1000, 1, 2, 100)).collect();
        fabric.run(sends, |_| vec![]);
        let after = fabric.slab_stats();
        assert_eq!(after.live, 0);
        assert!(
            after.capacity < burst.capacity,
            "spaced sends must not need the burst high-water mark"
        );
    }

    #[test]
    fn message_slots_are_recycled_across_batches() {
        // Two sequential batches through one fabric reuse slab slots (and
        // therefore wire-level frame ids) without cross-talk: every message
        // of both batches delivers exactly once with distinct correlation
        // ids. Guards the frame-id recycling scheme described in start_hop.
        let mut fabric = Fabric::new(topo());
        for batch in 0..2u64 {
            let base = batch * 1000;
            let sends: Vec<MessageSend> =
                (0..50).map(|i| send(base + i, i * 5, 0, 2, 32)).collect();
            let done = fabric.run(sends, |_| vec![]);
            assert_eq!(done.len(), 50);
            let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 50, "duplicate or lost delivery in batch");
        }
    }
}
