//! Multi-bus network fabric.
//!
//! Connects the `dynplat-hw` topology with the `dynplat-net` media: a
//! message from ECU A to ECU B is routed over the bus path, segmented to
//! each medium's maximum frame payload (8 B on CAN, 254 B on FlexRay,
//! 1500 B on Ethernet), forwarded store-and-forward at gateway ECUs with a
//! configurable processing delay, and delivered when its last segment
//! arrives. A delivery callback lets higher layers inject reactions (RPC
//! responses, re-publications) into the same simulation run.
//!
//! # Hot-path design
//!
//! [`Fabric::run_batch`] is the innermost loop of every paradigm benchmark
//! and every fault-injection campaign. Steady state performs **zero heap
//! allocations** (enforced by the bench bin's counting allocator):
//!
//! * per-bus `TxDone` events ride lock-free SPSC rings ([`SpscRing`]) —
//!   O(1) push/pop on uncontended cache lines — with a spill path to a
//!   shared binary heap when a ring is full, so semantics never change;
//! * scheduled polls are a *scalar* `(time, seq)` pair per bus (at most
//!   one poll is ever pending per bus), replacing heap traffic entirely;
//! * the event loop takes the global minimum `(time, seq)` across the
//!   sorted injection cursor, the per-bus rings/polls and the overflow
//!   heap, preserving the exact FIFO tie-break order of the old
//!   single-heap engine;
//! * a **fast drain** pump: when every other pending event is strictly
//!   later than a granted transmission's end, the bus is polled in a
//!   tight loop and `TxDone`s are processed inline — the common
//!   uncongested case costs no queue round-trips at all;
//! * in-flight messages live in a free-list slab (`MsgSlab`) keyed by
//!   recycled `u32` slots that double as frame ids on the wire;
//! * all run scratch (slab, rings, heap, order index, per-bus state) is
//!   owned by the [`Fabric`] and reused across runs;
//! * hot counters accumulate in locals and latency in a
//!   [`LocalHistogram`], flushed to the metrics registry once per run;
//! * staged wire payloads live in a per-fabric [`PayloadArena`] keyed by
//!   recycled refs, so fanout legs share one encoded frame (zero-copy).

use crate::arena::{ArenaStats, PayloadArena, PayloadRef};
use crate::ring::{RingEntry, SpscRing};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId, MessageId};
use dynplat_hw::{BusKind, HwTopology, RouteCache, TopologyError};
use dynplat_net::{
    Arbiter, CanArbiter, FifoPort, FlexRayBus, Frame, GateControlList, Grant, SlotAssignment,
    StrictPriorityPort, TrafficClass, TsnGatedPort,
};
use dynplat_obs::{FlightRecorder, LocalExemplars, LocalHistogram, TraceCtx};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Capacity of each per-bus SPSC ring. The fabric keeps at most one
/// outstanding `TxDone` per bus (transmissions serialize on `bus_free`),
/// so 8 entries leave generous headroom before the heap spill path.
const RING_CAPACITY: usize = 8;

/// One configured egress medium for a bus segment.
#[derive(Debug)]
pub enum BusPort {
    /// CAN with id arbitration.
    Can(CanArbiter),
    /// Plain FIFO Ethernet (no isolation baseline).
    Fifo(FifoPort),
    /// 802.1p strict-priority Ethernet.
    Priority(StrictPriorityPort),
    /// 802.1Qbv time-gated Ethernet.
    Tsn(TsnGatedPort),
    /// FlexRay channel.
    FlexRay(FlexRayBus),
}

impl BusPort {
    /// Maximum frame payload of this medium in bytes.
    pub fn mtu(&self) -> usize {
        match self {
            BusPort::Can(_) => 8,
            BusPort::FlexRay(_) => 254,
            BusPort::Fifo(_) | BusPort::Priority(_) | BusPort::Tsn(_) => 1500,
        }
    }

    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        match self {
            BusPort::Can(p) => p.enqueue(now, frame),
            BusPort::Fifo(p) => p.enqueue(now, frame),
            BusPort::Priority(p) => p.enqueue(now, frame),
            BusPort::Tsn(p) => p.enqueue(now, frame),
            BusPort::FlexRay(p) => p.enqueue(now, frame),
        }
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        match self {
            BusPort::Can(p) => p.poll(now),
            BusPort::Fifo(p) => p.poll(now),
            BusPort::Priority(p) => p.poll(now),
            BusPort::Tsn(p) => p.poll(now),
            BusPort::FlexRay(p) => p.poll(now),
        }
    }

    /// Builds the default port for a bus kind: CAN arbitration, strict
    /// priority for Ethernet, FlexRay with an empty static assignment.
    pub fn default_for(kind: BusKind) -> BusPort {
        match kind {
            BusKind::Can { bitrate } => BusPort::Can(CanArbiter::new(bitrate)),
            BusKind::Ethernet { bitrate } => BusPort::Priority(StrictPriorityPort::new(bitrate)),
            BusKind::FlexRay { .. } => BusPort::FlexRay(FlexRayBus::new(
                dynplat_net::FlexRayConfig::typical_10mbit(),
                SlotAssignment::new(),
            )),
        }
    }

    /// A TSN port for an Ethernet bus.
    pub fn tsn_for(kind: BusKind, gcl: GateControlList) -> BusPort {
        BusPort::Tsn(TsnGatedPort::new(kind.bitrate(), gcl))
    }

    /// A FIFO port for an Ethernet bus (no-isolation baseline).
    pub fn fifo_for(kind: BusKind) -> BusPort {
        BusPort::Fifo(FifoPort::new(kind.bitrate()))
    }
}

/// A message to be carried by the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageSend {
    /// Caller-chosen correlation id (reported back in the delivery).
    pub id: u64,
    /// Injection time.
    pub time: SimTime,
    /// Source ECU.
    pub src: EcuId,
    /// Destination ECU.
    pub dst: EcuId,
    /// Total payload bytes (middleware header included by the caller).
    pub payload: usize,
    /// Traffic class for TSN gating.
    pub class: TrafficClass,
    /// Priority (lower = more urgent) for CAN / 802.1p arbitration.
    pub priority: u32,
    /// Causal trace context; [`TraceCtx::NONE`] costs nothing on the hot
    /// path (one branch per lifecycle event when a recorder is attached).
    pub trace: TraceCtx,
}

/// A completed end-to-end delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageDelivery {
    /// Correlation id from the send.
    pub id: u64,
    /// Injection time.
    pub sent: SimTime,
    /// Arrival of the last segment at the destination.
    pub delivered: SimTime,
    /// Number of bus hops traversed (0 = same ECU).
    pub hops: usize,
    /// Trace context inherited from the send, so reactions injected by
    /// the delivery callback can stay on the same causal chain.
    pub trace: TraceCtx,
}

impl MessageDelivery {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.delivered.saturating_since(self.sent)
    }
}

/// Longest route stored inline in [`MsgState`]. Gateway topologies rarely
/// exceed three hops; anything longer falls back to sharing the cache's
/// `Arc` path.
const ROUTE_INLINE: usize = 8;

/// A message's bus path, copied out of the route cache. The inline variant
/// avoids per-message `Arc` refcount traffic (two atomic RMWs on the old
/// clone/drop pair) and keeps the hops in the same cache line as the rest
/// of the message state.
enum RouteHold {
    Inline {
        len: u8,
        buses: [BusId; ROUTE_INLINE],
    },
    Spilled(Arc<[BusId]>),
}

impl RouteHold {
    #[inline]
    fn as_slice(&self) -> &[BusId] {
        match self {
            RouteHold::Inline { len, buses } => &buses[..*len as usize],
            RouteHold::Spilled(p) => p,
        }
    }
}

struct MsgState {
    send: MessageSend,
    route: RouteHold,
    hop: usize,
    segs_outstanding: usize,
}

/// Overflow / reaction events that do not fit the per-bus fast paths:
/// callback-injected sends, and `TxDone`s spilled from a full ring.
enum Pending {
    Inject(MessageSend),
    TxDone(u32),
}

/// Min-ordered overflow queue backed by a free-list slab.
///
/// The heap holds `(time, seq, slot)` triples; `seq` is the globally
/// monotone tie-break shared with the rings and scalar polls, so
/// simultaneous events stay FIFO across all structures, and `slot`
/// indexes the slab where the event payload lives. Both sides are reused
/// across runs, so a drained queue costs nothing to reuse.
#[derive(Default)]
struct PendingQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Option<Pending>>,
    free: Vec<u32>,
}

impl PendingQueue {
    fn push(&mut self, t: SimTime, seq: u64, ev: Pending) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                self.slots.push(Some(ev));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Reverse((t, seq, slot)));
    }

    fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }

    fn pop(&mut self) -> Option<(SimTime, Pending)> {
        let Reverse((t, _, slot)) = self.heap.pop()?;
        let ev = self.slots[slot as usize]
            .take()
            .expect("pending event slot must be filled for every heap entry");
        self.free.push(slot);
        Some((t, ev))
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }
}

/// Free-list slab of in-flight message state.
///
/// Slots are `u32` and recycled as soon as a message delivers, so the live
/// range of a slot value is exactly the in-flight lifetime of one message.
#[derive(Default)]
struct MsgSlab {
    slots: Vec<Option<MsgState>>,
    free: Vec<u32>,
}

/// Occupancy of the in-flight message slab after a [`Fabric::run`].
///
/// `capacity` is also the run's high-water mark: the slab grows only when
/// the free list is empty, so `slots.len()` equals the peak number of
/// concurrently in-flight messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Messages still occupying a slot (0 once a run fully drains).
    pub live: usize,
    /// Recycled slots available for reuse.
    pub free: usize,
    /// Total slots ever allocated (peak concurrent in-flight messages).
    pub capacity: usize,
}

impl MsgSlab {
    fn stats(&self) -> SlabStats {
        SlabStats {
            live: self.slots.len() - self.free.len(),
            free: self.free.len(),
            capacity: self.slots.len(),
        }
    }

    fn insert(&mut self, state: MsgState) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(state);
                s
            }
            None => {
                self.slots.push(Some(state));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn get_mut(&mut self, slot: u32) -> &mut MsgState {
        self.slots[slot as usize]
            .as_mut()
            .expect("message slot must hold in-flight state while frames reference it")
    }

    fn remove(&mut self, slot: u32) -> MsgState {
        let state = self.slots[slot as usize]
            .take()
            .expect("message slot must hold in-flight state until its last TxDone");
        self.free.push(slot);
        state
    }

    /// Empties the slab while keeping both vectors' capacity, so the next
    /// run's inserts allocate nothing up to the previous high-water mark.
    fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// All mutable run state, owned by the fabric and reused across runs so a
/// warmed fabric's steady-state loop never touches the allocator.
#[derive(Default)]
struct RunScratch {
    msgs: MsgSlab,
    pending: PendingQueue,
    rings: Vec<SpscRing>,
    bus_free: Vec<SimTime>,
    /// Scalar next-poll time per bus (`SimTime::MAX` = none scheduled).
    poll_at: Vec<SimTime>,
    /// FIFO tie-break seq of the pending poll per bus.
    poll_seq: Vec<u64>,
    /// Injection cursor order: input indices sorted by `(time, index)`.
    order: Vec<u32>,
    /// Reusable buffer handed to the delivery callback for reactions.
    injected: Vec<MessageSend>,
    /// Local latency accumulator, flushed to the registry once per run.
    lat: LocalHistogram,
    /// Worst-latency exemplars of the run (lock-free, alloc-free),
    /// flushed to the registry with the histogram.
    exemplars: LocalExemplars,
}

impl RunScratch {
    fn reset_for(&mut self, n_buses: usize) {
        self.msgs.reset();
        self.pending.reset();
        if self.rings.len() != n_buses {
            self.rings = (0..n_buses).map(|_| SpscRing::new(RING_CAPACITY)).collect();
        }
        self.bus_free.clear();
        self.bus_free.resize(n_buses, SimTime::ZERO);
        self.poll_at.clear();
        self.poll_at.resize(n_buses, SimTime::MAX);
        self.poll_seq.clear();
        self.poll_seq.resize(n_buses, 0);
    }
}

/// The fabric simulator.
pub struct Fabric {
    topology: HwTopology,
    routes: RouteCache,
    /// Port per bus, indexed by dense bus index (ascending `BusId` order).
    ports: Vec<BusPort>,
    /// Raw `BusId` -> dense index; `u32::MAX` marks an unknown bus.
    bus_lookup: Vec<u32>,
    gateway_delay: SimDuration,
    local_delay: SimDuration,
    flight: Option<Arc<FlightRecorder>>,
    arena: PayloadArena,
    scratch: RunScratch,
    last_slab: SlabStats,
    peak_slab_capacity: usize,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("buses", &self.ports.len())
            .field("ecus", &self.topology.ecu_count())
            .finish()
    }
}

/// The event engine for one run: all fabric state split into disjoint
/// borrows so the hot loop's helpers can touch ports, slab, rings and the
/// overflow heap at once without re-borrowing through `&mut Fabric`.
struct Engine<'a, F> {
    routes: &'a mut RouteCache,
    ports: &'a mut [BusPort],
    bus_lookup: &'a [u32],
    gateway_delay: SimDuration,
    local_delay: SimDuration,
    flight: Option<&'a Arc<FlightRecorder>>,
    msgs: &'a mut MsgSlab,
    pending: &'a mut PendingQueue,
    rings: &'a mut [SpscRing],
    bus_free: &'a mut [SimTime],
    poll_at: &'a mut [SimTime],
    poll_seq: &'a mut [u64],
    injected: &'a mut Vec<MessageSend>,
    lat: &'a mut LocalHistogram,
    exemplars: &'a mut LocalExemplars,
    deliveries: &'a mut Vec<MessageDelivery>,
    on_delivery: F,
    next_seq: u64,
    sends_n: u64,
    drops_n: u64,
    delivered_n: u64,
    spills_n: u64,
}

impl<F> Engine<'_, F>
where
    F: FnMut(&MessageDelivery, &mut Vec<MessageSend>),
{
    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// One closure-equivalent for all lifecycle sites; untraced messages
    /// (the bench fast path) cost exactly the `is_active` branch.
    fn observe(&self, now: SimTime, send: &MessageSend, stage: &'static str) {
        if let Some(fr) = self.flight {
            if send.trace.is_active() {
                fr.record(
                    now.as_nanos(),
                    send.trace,
                    stage,
                    format!("id={} src={} dst={}", send.id, send.src, send.dst),
                );
            }
        }
    }

    /// Completes a message: records delivery, runs the reaction callback
    /// and enqueues any injected sends at `max(extra.time, clamp_now)`.
    fn complete(&mut self, send: MessageSend, delivered: SimTime, hops: usize, clamp_now: SimTime) {
        let delivery = MessageDelivery {
            id: send.id,
            sent: send.time,
            delivered,
            hops,
            trace: send.trace,
        };
        self.observe(delivered, &send, "comm.fabric.deliver");
        self.delivered_n += 1;
        self.lat.record(delivery.latency().as_nanos());
        self.exemplars
            .offer(delivery.latency().as_nanos(), send.trace);
        self.injected.clear();
        (self.on_delivery)(&delivery, self.injected);
        for extra in self.injected.drain(..) {
            let t = extra.time.max(clamp_now);
            self.sends_n += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push(t, seq, Pending::Inject(extra));
        }
        self.deliveries.push(delivery);
    }

    fn handle_inject(&mut self, send: MessageSend, now: SimTime) {
        self.observe(now, &send, "comm.fabric.send");
        // Borrow the cached path and copy it inline — no Arc clone on the
        // common (short-route) path.
        let route = match self.routes.route_slice(send.src, send.dst) {
            Ok(r) => r,
            Err(_) => {
                self.drops_n += 1;
                self.observe(now, &send, "comm.fabric.drop_unreachable");
                return; // unreachable: drop
            }
        };
        if route.is_empty() {
            let delivered = now + self.local_delay;
            self.complete(send, delivered, 0, now);
            return;
        }
        let route = if route.len() <= ROUTE_INLINE {
            let mut buses = [BusId(0); ROUTE_INLINE];
            buses[..route.len()].copy_from_slice(route);
            RouteHold::Inline {
                len: route.len() as u8,
                buses,
            }
        } else {
            RouteHold::Spilled(
                self.routes
                    .route_buses(send.src, send.dst)
                    .expect("route_slice just resolved this pair"),
            )
        };
        let slot = self.msgs.insert(MsgState {
            send,
            route,
            hop: 0,
            segs_outstanding: 0,
        });
        self.start_hop(slot, now);
    }

    /// Enqueues all segments of the message's current hop and schedules
    /// the earliest useful poll of that bus.
    fn start_hop(&mut self, slot: u32, now: SimTime) {
        let state = self.msgs.get_mut(slot);
        let bus = state.route.as_slice()[state.hop];
        let bi = self.bus_lookup[bus.raw() as usize] as usize;
        let port = &mut self.ports[bi];
        let mtu = port.mtu();
        let total = state.send.payload.max(1);
        // Single-segment fast path: most frames fit the medium's MTU, and
        // skipping the div/mod pair is measurable at fabric rates.
        let (full, rest) = if total <= mtu {
            (0, total)
        } else {
            (total / mtu, total % mtu)
        };
        state.segs_outstanding = full + usize::from(rest > 0);
        // Frames carry the message's slab slot as their wire id. Slots are
        // recycled only after the message's final `TxDone` fires (delivery
        // removes it), so a live slot is never aliased by a later message.
        // Regression note: the previous implementation derived the frame id
        // from a monotonically increasing u64 key truncated with `as u32`,
        // which collides after 2^32 messages and makes `TxDone` decrement a
        // *different* message's segment count. Slot recycling keeps ids
        // bounded by the peak number of concurrently in-flight messages, far
        // below `u32::MAX`.
        for i in 0..state.segs_outstanding {
            let payload = if i < full { mtu } else { rest };
            port.enqueue(
                now,
                Frame {
                    id: MessageId(slot),
                    payload,
                    priority: state.send.priority,
                    class: state.send.class,
                },
            );
        }
        let poll_time = now.max(self.bus_free[bi]);
        if poll_time < self.poll_at[bi] {
            self.poll_at[bi] = poll_time;
            self.poll_seq[bi] = self.alloc_seq();
        }
    }

    fn handle_txdone(&mut self, slot: u32, now: SimTime) {
        let state = self.msgs.get_mut(slot);
        state.segs_outstanding -= 1;
        if state.segs_outstanding > 0 {
            return;
        }
        state.hop += 1;
        if state.hop >= state.route.as_slice().len() {
            let state = self.msgs.remove(slot);
            let hops = state.route.as_slice().len();
            self.complete(state.send, now, hops, now);
        } else {
            let at = now + self.gateway_delay;
            self.start_hop(slot, at);
        }
    }

    /// Whether every *other* pending event source is strictly after `t`.
    /// All already-pending events carry smaller sequence numbers than any
    /// the caller is about to allocate, so an equal time means "not after"
    /// and the caller must fall back to the ordered main loop.
    fn others_after(&self, cursor_t: SimTime, t: SimTime) -> bool {
        if cursor_t <= t {
            return false;
        }
        if let Some((pt, _)) = self.pending.peek() {
            if pt <= t {
                return false;
            }
        }
        for bi in 0..self.poll_at.len() {
            if self.poll_at[bi] <= t {
                return false;
            }
            if let Some(e) = self.rings[bi].peek() {
                if e.time <= t {
                    return false;
                }
            }
        }
        true
    }

    /// Services a due poll of bus `bi`, then *pumps*: as long as every
    /// other pending event is strictly later than the granted
    /// transmission's end, the `TxDone` is processed inline and the bus
    /// polled again — draining an uncongested bus without any queue
    /// round-trips. `cursor_t` is the next initial injection time.
    fn handle_poll(&mut self, bi: usize, now: SimTime, cursor_t: SimTime) {
        self.poll_at[bi] = SimTime::MAX;
        let free = self.bus_free[bi];
        if now < free {
            self.poll_at[bi] = free;
            self.poll_seq[bi] = self.alloc_seq();
            return;
        }
        let mut now = now;
        loop {
            match self.ports[bi].poll(now) {
                Grant::Tx(tx) => {
                    self.bus_free[bi] = tx.end;
                    // Sequence numbers mirror the old single-heap push
                    // order exactly: TxDone first, follow-up poll second,
                    // then anything the TxDone's callback injects.
                    let txdone_seq = self.alloc_seq();
                    let follow_seq = self.alloc_seq();
                    if self.others_after(cursor_t, tx.end) {
                        now = tx.end;
                        self.handle_txdone(tx.frame.id.raw(), now);
                        if self.others_after(cursor_t, now) {
                            continue; // keep draining inline
                        }
                        self.poll_at[bi] = now;
                        self.poll_seq[bi] = follow_seq;
                        return;
                    }
                    let entry = RingEntry {
                        time: tx.end,
                        seq: txdone_seq,
                        slot: tx.frame.id.raw(),
                    };
                    if !self.rings[bi].try_push(entry) {
                        self.spills_n += 1;
                        self.pending
                            .push(entry.time, entry.seq, Pending::TxDone(entry.slot));
                    }
                    self.poll_at[bi] = tx.end;
                    self.poll_seq[bi] = follow_seq;
                    return;
                }
                Grant::WaitUntil(t) => {
                    debug_assert!(t > now, "WaitUntil must make progress");
                    self.poll_at[bi] = t;
                    self.poll_seq[bi] = self.alloc_seq();
                    return;
                }
                Grant::Idle => return,
            }
        }
    }
}

impl Fabric {
    /// Creates a fabric with default ports for every bus in `topology`.
    pub fn new(topology: HwTopology) -> Self {
        let routes = RouteCache::new(&topology);
        let mut ports = Vec::new();
        let mut bus_ids = Vec::new();
        for bus in topology.buses() {
            ports.push(BusPort::default_for(bus.kind));
            bus_ids.push(bus.id);
        }
        let max_raw = bus_ids.iter().map(|b| b.raw() as usize).max();
        let mut bus_lookup = vec![u32::MAX; max_raw.map_or(0, |m| m + 1)];
        for (i, id) in bus_ids.iter().enumerate() {
            bus_lookup[id.raw() as usize] = i as u32;
        }
        Fabric {
            topology,
            routes,
            ports,
            bus_lookup,
            gateway_delay: SimDuration::from_micros(50),
            local_delay: SimDuration::from_micros(5),
            flight: None,
            arena: PayloadArena::new(),
            scratch: RunScratch::default(),
            last_slab: SlabStats::default(),
            peak_slab_capacity: 0,
        }
    }

    /// Attaches a flight recorder: traced messages (active [`TraceCtx`])
    /// get their send/deliver/drop lifecycle recorded as trace events.
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.flight = Some(recorder);
    }

    /// Slab occupancy of the most recent run (also exported as the
    /// `bench.comm.slab_*` gauges).
    pub fn slab_stats(&self) -> SlabStats {
        self.last_slab
    }

    /// Highest slab capacity (peak concurrently in-flight messages) seen
    /// across *all* runs of this fabric — the figure the per-run
    /// [`Fabric::slab_stats`] cannot show once phases reuse one fabric.
    pub fn peak_slab_capacity(&self) -> usize {
        self.peak_slab_capacity
    }

    /// Stages `bytes` in the fabric's payload arena, returning a recycled
    /// ref that fanout legs can share (the zero-copy wire path).
    pub fn stage_payload(&mut self, bytes: &[u8]) -> PayloadRef {
        self.arena.stage(bytes)
    }

    /// The staged bytes behind `r`.
    pub fn payload(&self, r: PayloadRef) -> &[u8] {
        self.arena.get(r)
    }

    /// Releases a staged payload for block reuse.
    pub fn release_payload(&mut self, r: PayloadRef) {
        self.arena.release(r);
    }

    /// Occupancy of the payload arena (also exported as the
    /// `bench.comm.arena_*` gauges after each run).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Warms the route-cache row for `src` (one BFS), so a subsequent
    /// fanout of any size from that source resolves every route with an
    /// array lookup — the batch half of the route API.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownEcu`] when `src` is not in the topology.
    pub fn prefetch_routes(&mut self, src: EcuId) -> Result<(), TopologyError> {
        self.routes.prefetch(src)
    }

    fn bus_index(&self, bus: BusId) -> Option<usize> {
        match self.bus_lookup.get(bus.raw() as usize) {
            Some(&i) if i != u32::MAX => Some(i as usize),
            _ => None,
        }
    }

    /// Replaces the port of one bus (e.g. swap strict priority for TSN).
    ///
    /// # Panics
    ///
    /// Panics if the bus is unknown.
    pub fn set_port(&mut self, bus: BusId, port: BusPort) {
        let idx = self
            .bus_index(bus)
            .expect("set_port requires a bus that exists in the fabric topology");
        self.ports[idx] = port;
    }

    /// Sets the gateway store-and-forward delay (default 50 µs).
    pub fn set_gateway_delay(&mut self, delay: SimDuration) {
        self.gateway_delay = delay;
    }

    /// The topology the fabric runs over.
    pub fn topology(&self) -> &HwTopology {
        &self.topology
    }

    /// Runs a batch of sends to completion; `on_delivery` may inject new
    /// sends (RPC responses, forwarded publications) at or after the
    /// delivery time.
    ///
    /// Returns all deliveries in completion order. Messages between
    /// unreachable ECUs are silently dropped (counted by the caller via
    /// missing ids).
    ///
    /// This is the allocating convenience wrapper; hot callers use
    /// [`Fabric::run_batch`] with reused buffers.
    pub fn run<F>(&mut self, sends: Vec<MessageSend>, mut on_delivery: F) -> Vec<MessageDelivery>
    where
        F: FnMut(&MessageDelivery) -> Vec<MessageSend>,
    {
        let mut deliveries = Vec::with_capacity(sends.len());
        self.run_batch(&sends, &mut deliveries, |d, inject| {
            inject.extend(on_delivery(d))
        });
        deliveries
    }

    /// The zero-allocation run loop: appends completions to `deliveries`
    /// (not cleared — callers own the buffer) and hands `on_delivery` a
    /// reusable injection buffer instead of collecting a fresh `Vec` per
    /// delivery. After a warm-up run of similar shape, steady-state calls
    /// perform no heap allocations at all.
    pub fn run_batch<F>(
        &mut self,
        sends: &[MessageSend],
        deliveries: &mut Vec<MessageDelivery>,
        on_delivery: F,
    ) where
        F: FnMut(&MessageDelivery, &mut Vec<MessageSend>),
    {
        let obs_sends = dynplat_obs::counter!("comm.fabric.sends");
        let obs_drops = dynplat_obs::counter!("comm.fabric.dropped_unreachable");
        let obs_deliveries = dynplat_obs::counter!("comm.fabric.deliveries");
        let obs_spills = dynplat_obs::counter!("comm.fabric.ring_spills");
        let obs_latency = dynplat_obs::histogram!("comm.fabric.latency_ns");

        let n = sends.len();
        let n_buses = self.ports.len();
        deliveries.reserve(n);

        let Fabric {
            ref mut routes,
            ref mut ports,
            ref bus_lookup,
            gateway_delay,
            local_delay,
            ref flight,
            ref mut scratch,
            ..
        } = *self;
        scratch.reset_for(n_buses);

        // Injection cursor: input indices in `(time, index)` order. The
        // index doubles as the FIFO sequence number, exactly as if every
        // send had been pushed to the old heap in input order. Already
        // time-sorted inputs (periodic benches) skip the sort entirely.
        scratch.order.clear();
        scratch.order.extend(0..n as u32);
        if !sends.windows(2).all(|w| w[0].time <= w[1].time) {
            scratch
                .order
                .sort_unstable_by_key(|&i| (sends[i as usize].time, i));
        }
        let order = &scratch.order;
        let mut cursor = 0usize;

        let mut eng = Engine {
            routes,
            ports,
            bus_lookup,
            gateway_delay,
            local_delay,
            flight: flight.as_ref(),
            msgs: &mut scratch.msgs,
            pending: &mut scratch.pending,
            rings: &mut scratch.rings,
            bus_free: &mut scratch.bus_free,
            poll_at: &mut scratch.poll_at,
            poll_seq: &mut scratch.poll_seq,
            injected: &mut scratch.injected,
            lat: &mut scratch.lat,
            exemplars: &mut scratch.exemplars,
            deliveries,
            on_delivery,
            next_seq: n as u64,
            sends_n: n as u64,
            drops_n: 0,
            delivered_n: 0,
            spills_n: 0,
        };

        // Event sources for the global (time, seq) minimum scan.
        enum Sel {
            Cursor,
            Pending,
            Poll(usize),
            Ring(usize),
        }

        loop {
            let mut best_t = SimTime::MAX;
            let mut best_s = u64::MAX;
            let mut sel: Option<Sel> = None;
            if cursor < order.len() {
                let i = order[cursor] as usize;
                best_t = sends[i].time;
                best_s = i as u64;
                sel = Some(Sel::Cursor);
            }
            if let Some((t, s)) = eng.pending.peek() {
                if (t, s) < (best_t, best_s) {
                    best_t = t;
                    best_s = s;
                    sel = Some(Sel::Pending);
                }
            }
            for bi in 0..n_buses {
                let t = eng.poll_at[bi];
                if t != SimTime::MAX && (t, eng.poll_seq[bi]) < (best_t, best_s) {
                    best_t = t;
                    best_s = eng.poll_seq[bi];
                    sel = Some(Sel::Poll(bi));
                }
                if let Some(e) = eng.rings[bi].peek() {
                    if (e.time, e.seq) < (best_t, best_s) {
                        best_t = e.time;
                        best_s = e.seq;
                        sel = Some(Sel::Ring(bi));
                    }
                }
            }
            let Some(which) = sel else { break };
            match which {
                Sel::Cursor => {
                    let send = sends[order[cursor] as usize].clone();
                    cursor += 1;
                    let now = send.time;
                    eng.handle_inject(send, now);
                }
                Sel::Pending => {
                    let (t, ev) = eng
                        .pending
                        .pop()
                        .expect("pending queue non-empty after winning selection");
                    match ev {
                        Pending::Inject(send) => eng.handle_inject(send, t),
                        Pending::TxDone(slot) => eng.handle_txdone(slot, t),
                    }
                }
                Sel::Poll(bi) => {
                    let now = eng.poll_at[bi];
                    let cursor_t = if cursor < order.len() {
                        sends[order[cursor] as usize].time
                    } else {
                        SimTime::MAX
                    };
                    eng.handle_poll(bi, now, cursor_t);
                }
                Sel::Ring(bi) => {
                    let e = eng.rings[bi]
                        .pop()
                        .expect("ring non-empty after winning selection");
                    eng.handle_txdone(e.slot, e.time);
                }
            }
        }

        obs_sends.add(eng.sends_n);
        obs_drops.add(eng.drops_n);
        obs_deliveries.add(eng.delivered_n);
        obs_spills.add(eng.spills_n);
        eng.lat.flush_into(obs_latency);
        dynplat_obs::global()
            .exemplars("comm.fabric.delivery_ns")
            .merge_local(eng.exemplars);
        drop(eng);

        // Real occupancy reporting (the old gauges only ever showed the
        // last run of whichever fabric happened to finish last): per-run
        // slab state, the cross-run peak, and the payload arena.
        self.last_slab = self.scratch.msgs.stats();
        self.peak_slab_capacity = self.peak_slab_capacity.max(self.last_slab.capacity);
        let arena = self.arena.stats();
        dynplat_obs::gauge!("bench.comm.slab_live").set(self.last_slab.live as i64);
        dynplat_obs::gauge!("bench.comm.slab_free").set(self.last_slab.free as i64);
        dynplat_obs::gauge!("bench.comm.slab_peak").set(self.peak_slab_capacity as i64);
        dynplat_obs::gauge!("bench.comm.arena_live").set(arena.live as i64);
        dynplat_obs::gauge!("bench.comm.arena_free").set(arena.free as i64);
        dynplat_obs::gauge!("bench.comm.arena_bytes").set(arena.bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_hw::topology::BusSpec;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// ecu0 --can0-- ecu1 --eth0-- ecu2
    fn topo() -> HwTopology {
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
                EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
            ],
            [
                BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
                BusSpec::new(
                    BusId(1),
                    "eth0",
                    BusKind::ethernet_100m(),
                    [EcuId(1), EcuId(2)],
                ),
            ],
        )
        .expect("test topology is well-formed")
    }

    fn send(id: u64, t_us: u64, src: u16, dst: u16, payload: usize) -> MessageSend {
        MessageSend {
            id,
            time: SimTime::from_micros(t_us),
            src: EcuId(src),
            dst: EcuId(dst),
            payload,
            class: TrafficClass::BestEffort,
            priority: id as u32,
            trace: TraceCtx::NONE,
        }
    }

    #[test]
    fn single_hop_ethernet_delivery() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 1, 2, 1000)], |_| vec![]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].hops, 1);
        // ~82 us at 100 Mbit/s for 1000+overhead bytes.
        assert!(done[0].latency() > SimDuration::from_micros(50));
        assert!(done[0].latency() < SimDuration::from_micros(200));
    }

    #[test]
    fn local_delivery_is_fast() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 2, 2, 1000)], |_| vec![]);
        assert_eq!(done[0].hops, 0);
        assert!(done[0].latency() < SimDuration::from_micros(10));
    }

    #[test]
    fn can_segmentation_of_large_payload() {
        let mut fabric = Fabric::new(topo());
        // 64 bytes over CAN = 8 frames of 8 bytes, each 270 us at 500 kbit/s.
        let done = fabric.run(vec![send(1, 0, 0, 1, 64)], |_| vec![]);
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        assert!(lat >= SimDuration::from_micros(270 * 8), "got {lat}");
        assert!(lat < SimDuration::from_micros(270 * 9), "got {lat}");
    }

    #[test]
    fn gateway_route_crosses_both_buses() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 0, 2, 8)], |_| vec![]);
        assert_eq!(done[0].hops, 2);
        // One CAN frame (270us) + gateway (50us) + one Ethernet frame.
        let lat = done[0].latency();
        assert!(lat > SimDuration::from_micros(320), "got {lat}");
        assert!(lat < SimDuration::from_micros(400), "got {lat}");
    }

    #[test]
    fn unreachable_destination_is_dropped() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 0, 9, 8)], |_| vec![]);
        assert!(done.is_empty());
    }

    #[test]
    fn deliveries_trigger_callback_injections() {
        // Request 1->2, response 2->1 injected on delivery (an RPC shape).
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(10, 0, 1, 2, 200)], |d| {
            if d.id == 10 {
                vec![MessageSend {
                    id: 20,
                    time: d.delivered + SimDuration::from_micros(100),
                    src: EcuId(2),
                    dst: EcuId(1),
                    payload: 64,
                    class: TrafficClass::BestEffort,
                    priority: 0,
                    trace: d.trace,
                }]
            } else {
                vec![]
            }
        });
        assert_eq!(done.len(), 2);
        let req = done
            .iter()
            .find(|d| d.id == 10)
            .expect("request must deliver");
        let resp = done
            .iter()
            .find(|d| d.id == 20)
            .expect("response must deliver");
        assert!(resp.sent >= req.delivered + SimDuration::from_micros(100));
        assert!(resp.delivered > resp.sent);
    }

    #[test]
    fn priority_protects_urgent_message_on_shared_bus() {
        let mut fabric = Fabric::new(topo());
        let mut sends: Vec<MessageSend> = (0..20)
            .map(|i| {
                let mut s = send(100 + i, 0, 1, 2, 1500);
                s.priority = 7;
                s
            })
            .collect();
        let mut urgent = send(1, 100, 1, 2, 100);
        urgent.priority = 0;
        urgent.class = TrafficClass::Critical;
        sends.push(urgent);
        let done = fabric.run(sends, |_| vec![]);
        let u = done
            .iter()
            .find(|d| d.id == 1)
            .expect("urgent message must deliver");
        // At most one bulk frame of blocking (~123 us) plus own time.
        assert!(
            u.latency() < SimDuration::from_micros(300),
            "urgent delayed {}",
            u.latency()
        );
    }

    #[test]
    fn tsn_port_swaps_in() {
        let mut fabric = Fabric::new(topo());
        let gcl = GateControlList::mixed_criticality(ms(1), 0.3);
        fabric.set_port(BusId(1), BusPort::tsn_for(BusKind::ethernet_100m(), gcl));
        let mut s = send(1, 0, 1, 2, 100);
        s.class = TrafficClass::Critical;
        let done = fabric.run(vec![s], |_| vec![]);
        assert_eq!(done.len(), 1);
        // Critical window opens at cycle start: immediate transmission.
        assert!(done[0].latency() < SimDuration::from_micros(100));
    }

    #[test]
    fn throughput_accounting_many_messages() {
        let mut fabric = Fabric::new(topo());
        let sends: Vec<MessageSend> = (0..200).map(|i| send(i, i * 10, 1, 2, 1000)).collect();
        let done = fabric.run(sends, |_| vec![]);
        assert_eq!(done.len(), 200);
        // Completion order is monotone in delivery time.
        for pair in done.windows(2) {
            assert!(pair[0].delivered <= pair[1].delivered);
        }
    }

    #[test]
    fn run_batch_reuses_buffers_and_is_deterministic() {
        // The scratch-reuse API must give byte-identical results across
        // repeated identical batches (the rerun-determinism contract the
        // E12–E15 smokes build on), while reusing the caller's buffers.
        let mut fabric = Fabric::new(topo());
        let sends: Vec<MessageSend> = (0..64).map(|i| send(i, i * 37, 0, 2, 48)).collect();
        let mut first = Vec::new();
        fabric.run_batch(&sends, &mut first, |_, _| {});
        let mut again = Vec::new();
        for _ in 0..3 {
            again.clear();
            fabric.run_batch(&sends, &mut again, |_, _| {});
            assert_eq!(again, first, "identical batches must replay identically");
        }
        // And the compat wrapper agrees with the batch API.
        let mut fresh = Fabric::new(topo());
        let wrapped = fresh.run(sends.clone(), |_| vec![]);
        assert_eq!(wrapped, first);
    }

    #[test]
    fn unsorted_input_matches_heap_order_semantics() {
        // Reverse-time input exercises the injection-cursor sort; results
        // must be identical to the same batch presented sorted, because
        // the FIFO tie-break is the input index either way (distinct
        // times here, so completion sets must match exactly).
        let sorted: Vec<MessageSend> = (0..40).map(|i| send(i, i * 100, 1, 2, 600)).collect();
        let mut reversed = sorted.clone();
        reversed.reverse();
        let mut f1 = Fabric::new(topo());
        let mut f2 = Fabric::new(topo());
        let mut done_sorted = f1.run(sorted, |_| vec![]);
        let mut done_rev = f2.run(reversed, |_| vec![]);
        done_sorted.sort_by_key(|d| d.id);
        done_rev.sort_by_key(|d| d.id);
        assert_eq!(done_sorted, done_rev);
    }

    #[test]
    fn payload_arena_roundtrip_and_recycling() {
        let mut fabric = Fabric::new(topo());
        let r1 = fabric.stage_payload(b"frame-one");
        let r2 = fabric.stage_payload(b"frame-two");
        assert_eq!(fabric.payload(r1), b"frame-one");
        assert_eq!(fabric.payload(r2), b"frame-two");
        assert_eq!(fabric.arena_stats().live, 2);
        fabric.release_payload(r1);
        fabric.release_payload(r2);
        let before = fabric.arena_stats();
        assert_eq!(before.live, 0);
        // Steady-state staging reuses released blocks: no byte growth.
        for i in 0..100u8 {
            let r = fabric.stage_payload(&[i; 9]);
            assert_eq!(fabric.payload(r), &[i; 9][..]);
            fabric.release_payload(r);
        }
        assert_eq!(fabric.arena_stats().bytes, before.bytes);
    }

    #[test]
    fn trace_context_rides_delivery_and_flight_recorder_sees_lifecycle() {
        let mut fabric = Fabric::new(topo());
        let fr = Arc::new(FlightRecorder::new(64));
        fr.arm();
        fabric.attach_flight_recorder(fr.clone());
        let mut traced = send(10, 0, 0, 2, 8);
        traced.trace = TraceCtx::new(0xCAFE, 1);
        let untraced = send(11, 0, 1, 2, 8);
        // The callback continues the trace: the reaction inherits the
        // delivery's context under a child span.
        let done = fabric.run(vec![traced, untraced], |d| {
            if d.id == 10 {
                let mut resp = send(20, d.delivered.as_nanos() / 1000, 2, 0, 8);
                resp.trace = d.trace.child(2);
                vec![resp]
            } else {
                vec![]
            }
        });
        assert_eq!(done.len(), 3);
        let by_id = |id: u64| {
            done.iter()
                .find(|d| d.id == id)
                .expect("all three messages must deliver")
        };
        assert_eq!(by_id(10).trace, TraceCtx::new(0xCAFE, 1));
        assert_eq!(by_id(20).trace, TraceCtx::new(0xCAFE, 2));
        assert_eq!(by_id(11).trace, TraceCtx::NONE);
        // Only the traced chain is recorded: send+deliver for the request
        // and for the response, nothing for the untraced message.
        let events = fr.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.trace.trace_id == 0xCAFE));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.stage == "comm.fabric.send")
                .count(),
            2
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.stage == "comm.fabric.deliver")
                .count(),
            2
        );
    }

    #[test]
    fn slab_returns_to_steady_state_after_burst() {
        let mut fabric = Fabric::new(topo());
        // A burst of overlapping sends drives the slab high-water mark up…
        let sends: Vec<MessageSend> = (0..100).map(|i| send(i, 0, 1, 2, 1000)).collect();
        fabric.run(sends, |_| vec![]);
        let burst = fabric.slab_stats();
        assert_eq!(burst.live, 0, "run must drain the slab");
        assert!(burst.capacity >= 50, "burst should overlap heavily");
        assert_eq!(burst.free, burst.capacity);
        // …and a later spaced-out trickle drains with a tiny footprint.
        let sends: Vec<MessageSend> = (0..10).map(|i| send(i, i * 1000, 1, 2, 100)).collect();
        fabric.run(sends, |_| vec![]);
        let after = fabric.slab_stats();
        assert_eq!(after.live, 0);
        assert!(
            after.capacity < burst.capacity,
            "spaced sends must not need the burst high-water mark"
        );
        // The cross-run peak still remembers the burst (occupancy gauges
        // were previously stale: they showed only the final trickle).
        assert_eq!(fabric.peak_slab_capacity(), burst.capacity);
    }

    #[test]
    fn message_slots_are_recycled_across_batches() {
        // Two sequential batches through one fabric reuse slab slots (and
        // therefore wire-level frame ids) without cross-talk: every message
        // of both batches delivers exactly once with distinct correlation
        // ids. Guards the frame-id recycling scheme described in start_hop.
        let mut fabric = Fabric::new(topo());
        for batch in 0..2u64 {
            let base = batch * 1000;
            let sends: Vec<MessageSend> =
                (0..50).map(|i| send(base + i, i * 5, 0, 2, 32)).collect();
            let done = fabric.run(sends, |_| vec![]);
            assert_eq!(done.len(), 50);
            let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 50, "duplicate or lost delivery in batch");
        }
    }
}
