//! Multi-bus network fabric.
//!
//! Connects the `dynplat-hw` topology with the `dynplat-net` media: a
//! message from ECU A to ECU B is routed over the bus path, segmented to
//! each medium's maximum frame payload (8 B on CAN, 254 B on FlexRay,
//! 1500 B on Ethernet), forwarded store-and-forward at gateway ECUs with a
//! configurable processing delay, and delivered when its last segment
//! arrives. A delivery callback lets higher layers inject reactions (RPC
//! responses, re-publications) into the same simulation run.

use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId, MessageId};
use dynplat_hw::{BusKind, HwTopology};
use dynplat_net::{
    Arbiter, CanArbiter, FifoPort, FlexRayBus, Frame, GateControlList, Grant, SlotAssignment,
    StrictPriorityPort, TrafficClass, TsnGatedPort,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One configured egress medium for a bus segment.
#[derive(Debug)]
pub enum BusPort {
    /// CAN with id arbitration.
    Can(CanArbiter),
    /// Plain FIFO Ethernet (no isolation baseline).
    Fifo(FifoPort),
    /// 802.1p strict-priority Ethernet.
    Priority(StrictPriorityPort),
    /// 802.1Qbv time-gated Ethernet.
    Tsn(TsnGatedPort),
    /// FlexRay channel.
    FlexRay(FlexRayBus),
}

impl BusPort {
    /// Maximum frame payload of this medium in bytes.
    pub fn mtu(&self) -> usize {
        match self {
            BusPort::Can(_) => 8,
            BusPort::FlexRay(_) => 254,
            BusPort::Fifo(_) | BusPort::Priority(_) | BusPort::Tsn(_) => 1500,
        }
    }

    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        match self {
            BusPort::Can(p) => p.enqueue(now, frame),
            BusPort::Fifo(p) => p.enqueue(now, frame),
            BusPort::Priority(p) => p.enqueue(now, frame),
            BusPort::Tsn(p) => p.enqueue(now, frame),
            BusPort::FlexRay(p) => p.enqueue(now, frame),
        }
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        match self {
            BusPort::Can(p) => p.poll(now),
            BusPort::Fifo(p) => p.poll(now),
            BusPort::Priority(p) => p.poll(now),
            BusPort::Tsn(p) => p.poll(now),
            BusPort::FlexRay(p) => p.poll(now),
        }
    }

    /// Builds the default port for a bus kind: CAN arbitration, strict
    /// priority for Ethernet, FlexRay with an empty static assignment.
    pub fn default_for(kind: BusKind) -> BusPort {
        match kind {
            BusKind::Can { bitrate } => BusPort::Can(CanArbiter::new(bitrate)),
            BusKind::Ethernet { bitrate } => BusPort::Priority(StrictPriorityPort::new(bitrate)),
            BusKind::FlexRay { .. } => BusPort::FlexRay(FlexRayBus::new(
                dynplat_net::FlexRayConfig::typical_10mbit(),
                SlotAssignment::new(),
            )),
        }
    }

    /// A TSN port for an Ethernet bus.
    pub fn tsn_for(kind: BusKind, gcl: GateControlList) -> BusPort {
        BusPort::Tsn(TsnGatedPort::new(kind.bitrate(), gcl))
    }

    /// A FIFO port for an Ethernet bus (no-isolation baseline).
    pub fn fifo_for(kind: BusKind) -> BusPort {
        BusPort::Fifo(FifoPort::new(kind.bitrate()))
    }
}

/// A message to be carried by the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageSend {
    /// Caller-chosen correlation id (reported back in the delivery).
    pub id: u64,
    /// Injection time.
    pub time: SimTime,
    /// Source ECU.
    pub src: EcuId,
    /// Destination ECU.
    pub dst: EcuId,
    /// Total payload bytes (middleware header included by the caller).
    pub payload: usize,
    /// Traffic class for TSN gating.
    pub class: TrafficClass,
    /// Priority (lower = more urgent) for CAN / 802.1p arbitration.
    pub priority: u32,
}

/// A completed end-to-end delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageDelivery {
    /// Correlation id from the send.
    pub id: u64,
    /// Injection time.
    pub sent: SimTime,
    /// Arrival of the last segment at the destination.
    pub delivered: SimTime,
    /// Number of bus hops traversed (0 = same ECU).
    pub hops: usize,
}

impl MessageDelivery {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.delivered.saturating_since(self.sent)
    }
}

struct MsgState {
    send: MessageSend,
    route: Vec<BusId>,
    hop: usize,
    segs_outstanding: usize,
}

enum Event {
    Inject(MessageSend),
    Poll(BusId),
    TxDone(BusId, u64 /* msg key */),
}

/// The fabric simulator.
pub struct Fabric {
    topology: HwTopology,
    ports: BTreeMap<BusId, BusPort>,
    gateway_delay: SimDuration,
    local_delay: SimDuration,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("buses", &self.ports.len())
            .field("ecus", &self.topology.ecu_count())
            .finish()
    }
}

impl Fabric {
    /// Creates a fabric with default ports for every bus in `topology`.
    pub fn new(topology: HwTopology) -> Self {
        let ports = topology
            .buses()
            .map(|b| (b.id, BusPort::default_for(b.kind)))
            .collect();
        Fabric {
            topology,
            ports,
            gateway_delay: SimDuration::from_micros(50),
            local_delay: SimDuration::from_micros(5),
        }
    }

    /// Replaces the port of one bus (e.g. swap strict priority for TSN).
    ///
    /// # Panics
    ///
    /// Panics if the bus is unknown.
    pub fn set_port(&mut self, bus: BusId, port: BusPort) {
        assert!(self.topology.bus(bus).is_some(), "unknown bus {bus}");
        self.ports.insert(bus, port);
    }

    /// Sets the gateway store-and-forward delay (default 50 µs).
    pub fn set_gateway_delay(&mut self, delay: SimDuration) {
        self.gateway_delay = delay;
    }

    /// The topology the fabric runs over.
    pub fn topology(&self) -> &HwTopology {
        &self.topology
    }

    /// Runs a batch of sends to completion; `on_delivery` may inject new
    /// sends (RPC responses, forwarded publications) at or after the
    /// delivery time.
    ///
    /// Returns all deliveries in completion order. Messages between
    /// unreachable ECUs are silently dropped (counted by the caller via
    /// missing ids).
    pub fn run<F>(&mut self, sends: Vec<MessageSend>, mut on_delivery: F) -> Vec<MessageDelivery>
    where
        F: FnMut(&MessageDelivery) -> Vec<MessageSend>,
    {
        let obs_sends = dynplat_obs::counter!("comm.fabric.sends");
        let obs_drops = dynplat_obs::counter!("comm.fabric.dropped_unreachable");
        let obs_deliveries = dynplat_obs::counter!("comm.fabric.deliveries");
        let obs_latency = dynplat_obs::histogram!("comm.fabric.latency_ns");
        obs_sends.add(sends.len() as u64);
        let mut heap: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut payloads: BTreeMap<u64, Event> = BTreeMap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Reverse<(SimTime, u64)>>,
                    payloads: &mut BTreeMap<u64, Event>,
                    seq: &mut u64,
                    t: SimTime,
                    ev: Event| {
            let s = *seq;
            *seq += 1;
            payloads.insert(s, ev);
            heap.push(Reverse((t, s)));
        };

        for send in sends {
            let t = send.time;
            push(&mut heap, &mut payloads, &mut seq, t, Event::Inject(send));
        }

        let mut msgs: BTreeMap<u64, MsgState> = BTreeMap::new();
        let mut msg_key = 0u64;
        let mut bus_free: BTreeMap<BusId, SimTime> = BTreeMap::new();
        let mut bus_next_poll: BTreeMap<BusId, SimTime> = BTreeMap::new();
        let mut deliveries = Vec::new();

        while let Some(Reverse((now, s))) = heap.pop() {
            let ev = payloads.remove(&s).expect("event payload");
            match ev {
                Event::Inject(send) => {
                    let Ok(route) = self.topology.route(send.src, send.dst) else {
                        obs_drops.inc();
                        continue; // unreachable: drop
                    };
                    if route.is_local() {
                        let delivery = MessageDelivery {
                            id: send.id,
                            sent: send.time,
                            delivered: now + self.local_delay,
                            hops: 0,
                        };
                        obs_deliveries.inc();
                        obs_latency.record(delivery.latency().as_nanos());
                        for extra in on_delivery(&delivery) {
                            let t = extra.time.max(now);
                            obs_sends.inc();
                            push(&mut heap, &mut payloads, &mut seq, t, Event::Inject(extra));
                        }
                        deliveries.push(delivery);
                        continue;
                    }
                    let key = msg_key;
                    msg_key += 1;
                    let state = MsgState {
                        send,
                        route: route.buses,
                        hop: 0,
                        segs_outstanding: 0,
                    };
                    msgs.insert(key, state);
                    self.start_hop(
                        key,
                        now,
                        &mut msgs,
                        &mut heap,
                        &mut payloads,
                        &mut seq,
                        &bus_free,
                        &mut bus_next_poll,
                    );
                }
                Event::Poll(bus) => {
                    if bus_next_poll.get(&bus) != Some(&now) {
                        continue; // stale poll
                    }
                    bus_next_poll.remove(&bus);
                    let free = bus_free.get(&bus).copied().unwrap_or(SimTime::ZERO);
                    if now < free {
                        schedule_poll(
                            &mut bus_next_poll,
                            &mut heap,
                            &mut payloads,
                            &mut seq,
                            bus,
                            free,
                        );
                        continue;
                    }
                    let port = self.ports.get_mut(&bus).expect("port exists");
                    match port.poll(now) {
                        Grant::Tx(tx) => {
                            bus_free.insert(bus, tx.end);
                            let key = u64::from(tx.frame.id.raw());
                            push(
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                tx.end,
                                Event::TxDone(bus, key),
                            );
                            schedule_poll(
                                &mut bus_next_poll,
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                bus,
                                tx.end,
                            );
                        }
                        Grant::WaitUntil(t) => {
                            schedule_poll(
                                &mut bus_next_poll,
                                &mut heap,
                                &mut payloads,
                                &mut seq,
                                bus,
                                t,
                            );
                        }
                        Grant::Idle => {}
                    }
                }
                Event::TxDone(_bus, key) => {
                    let finished = {
                        let state = msgs.get_mut(&key).expect("message state");
                        state.segs_outstanding -= 1;
                        state.segs_outstanding == 0
                    };
                    if !finished {
                        continue;
                    }
                    let (is_last, _) = {
                        let state = msgs.get_mut(&key).expect("message state");
                        state.hop += 1;
                        (state.hop >= state.route.len(), state.hop)
                    };
                    if is_last {
                        let state = msgs.remove(&key).expect("message state");
                        let delivery = MessageDelivery {
                            id: state.send.id,
                            sent: state.send.time,
                            delivered: now,
                            hops: state.route.len(),
                        };
                        obs_deliveries.inc();
                        obs_latency.record(delivery.latency().as_nanos());
                        for extra in on_delivery(&delivery) {
                            let t = extra.time.max(now);
                            obs_sends.inc();
                            push(&mut heap, &mut payloads, &mut seq, t, Event::Inject(extra));
                        }
                        deliveries.push(delivery);
                    } else {
                        let at = now + self.gateway_delay;
                        self.start_hop(
                            key,
                            at,
                            &mut msgs,
                            &mut heap,
                            &mut payloads,
                            &mut seq,
                            &bus_free,
                            &mut bus_next_poll,
                        );
                    }
                }
            }
        }
        deliveries
    }

    #[allow(clippy::too_many_arguments)]
    fn start_hop(
        &mut self,
        key: u64,
        now: SimTime,
        msgs: &mut BTreeMap<u64, MsgState>,
        heap: &mut BinaryHeap<Reverse<(SimTime, u64)>>,
        payloads: &mut BTreeMap<u64, Event>,
        seq: &mut u64,
        bus_free: &BTreeMap<BusId, SimTime>,
        bus_next_poll: &mut BTreeMap<BusId, SimTime>,
    ) {
        let state = msgs.get_mut(&key).expect("message state");
        let bus = state.route[state.hop];
        let port = self.ports.get_mut(&bus).expect("port exists");
        let mtu = port.mtu();
        let total = state.send.payload.max(1);
        let full = total / mtu;
        let rest = total % mtu;
        let mut segments = vec![mtu; full];
        if rest > 0 {
            segments.push(rest);
        }
        state.segs_outstanding = segments.len();
        for seg in segments {
            let frame = Frame {
                id: MessageId(key as u32),
                payload: seg,
                priority: state.send.priority,
                class: state.send.class,
            };
            port.enqueue(now, frame);
        }
        let free = bus_free.get(&bus).copied().unwrap_or(SimTime::ZERO);
        let poll_time = now.max(free);
        // schedule poll inline (cannot call schedule_poll with &mut self borrows)
        let due = bus_next_poll.get(&bus).copied();
        if due.is_none_or(|p| poll_time < p) {
            bus_next_poll.insert(bus, poll_time);
            let s = *seq;
            *seq += 1;
            payloads.insert(s, Event::Poll(bus));
            heap.push(Reverse((poll_time, s)));
        }
    }
}

fn schedule_poll(
    bus_next_poll: &mut BTreeMap<BusId, SimTime>,
    heap: &mut BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: &mut BTreeMap<u64, Event>,
    seq: &mut u64,
    bus: BusId,
    t: SimTime,
) {
    let due = bus_next_poll.get(&bus).copied();
    if due.is_none_or(|p| t < p) {
        bus_next_poll.insert(bus, t);
        let s = *seq;
        *seq += 1;
        payloads.insert(s, Event::Poll(bus));
        heap.push(Reverse((t, s)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_hw::topology::BusSpec;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// ecu0 --can0-- ecu1 --eth0-- ecu2
    fn topo() -> HwTopology {
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
                EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
            ],
            [
                BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
                BusSpec::new(
                    BusId(1),
                    "eth0",
                    BusKind::ethernet_100m(),
                    [EcuId(1), EcuId(2)],
                ),
            ],
        )
        .unwrap()
    }

    fn send(id: u64, t_us: u64, src: u16, dst: u16, payload: usize) -> MessageSend {
        MessageSend {
            id,
            time: SimTime::from_micros(t_us),
            src: EcuId(src),
            dst: EcuId(dst),
            payload,
            class: TrafficClass::BestEffort,
            priority: id as u32,
        }
    }

    #[test]
    fn single_hop_ethernet_delivery() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 1, 2, 1000)], |_| vec![]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].hops, 1);
        // ~82 us at 100 Mbit/s for 1000+overhead bytes.
        assert!(done[0].latency() > SimDuration::from_micros(50));
        assert!(done[0].latency() < SimDuration::from_micros(200));
    }

    #[test]
    fn local_delivery_is_fast() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 2, 2, 1000)], |_| vec![]);
        assert_eq!(done[0].hops, 0);
        assert!(done[0].latency() < SimDuration::from_micros(10));
    }

    #[test]
    fn can_segmentation_of_large_payload() {
        let mut fabric = Fabric::new(topo());
        // 64 bytes over CAN = 8 frames of 8 bytes, each 270 us at 500 kbit/s.
        let done = fabric.run(vec![send(1, 0, 0, 1, 64)], |_| vec![]);
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        assert!(lat >= SimDuration::from_micros(270 * 8), "got {lat}");
        assert!(lat < SimDuration::from_micros(270 * 9), "got {lat}");
    }

    #[test]
    fn gateway_route_crosses_both_buses() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 0, 2, 8)], |_| vec![]);
        assert_eq!(done[0].hops, 2);
        // One CAN frame (270us) + gateway (50us) + one Ethernet frame.
        let lat = done[0].latency();
        assert!(lat > SimDuration::from_micros(320), "got {lat}");
        assert!(lat < SimDuration::from_micros(400), "got {lat}");
    }

    #[test]
    fn unreachable_destination_is_dropped() {
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(1, 0, 0, 9, 8)], |_| vec![]);
        assert!(done.is_empty());
    }

    #[test]
    fn deliveries_trigger_callback_injections() {
        // Request 1->2, response 2->1 injected on delivery (an RPC shape).
        let mut fabric = Fabric::new(topo());
        let done = fabric.run(vec![send(10, 0, 1, 2, 200)], |d| {
            if d.id == 10 {
                vec![MessageSend {
                    id: 20,
                    time: d.delivered + SimDuration::from_micros(100),
                    src: EcuId(2),
                    dst: EcuId(1),
                    payload: 64,
                    class: TrafficClass::BestEffort,
                    priority: 0,
                }]
            } else {
                vec![]
            }
        });
        assert_eq!(done.len(), 2);
        let req = done.iter().find(|d| d.id == 10).unwrap();
        let resp = done.iter().find(|d| d.id == 20).unwrap();
        assert!(resp.sent >= req.delivered + SimDuration::from_micros(100));
        assert!(resp.delivered > resp.sent);
    }

    #[test]
    fn priority_protects_urgent_message_on_shared_bus() {
        let mut fabric = Fabric::new(topo());
        let mut sends: Vec<MessageSend> = (0..20)
            .map(|i| {
                let mut s = send(100 + i, 0, 1, 2, 1500);
                s.priority = 7;
                s
            })
            .collect();
        let mut urgent = send(1, 100, 1, 2, 100);
        urgent.priority = 0;
        urgent.class = TrafficClass::Critical;
        sends.push(urgent);
        let done = fabric.run(sends, |_| vec![]);
        let u = done.iter().find(|d| d.id == 1).unwrap();
        // At most one bulk frame of blocking (~123 us) plus own time.
        assert!(
            u.latency() < SimDuration::from_micros(300),
            "urgent delayed {}",
            u.latency()
        );
    }

    #[test]
    fn tsn_port_swaps_in() {
        let mut fabric = Fabric::new(topo());
        let gcl = GateControlList::mixed_criticality(ms(1), 0.3);
        fabric.set_port(BusId(1), BusPort::tsn_for(BusKind::ethernet_100m(), gcl));
        let mut s = send(1, 0, 1, 2, 100);
        s.class = TrafficClass::Critical;
        let done = fabric.run(vec![s], |_| vec![]);
        assert_eq!(done.len(), 1);
        // Critical window opens at cycle start: immediate transmission.
        assert!(done[0].latency() < SimDuration::from_micros(100));
    }

    #[test]
    fn throughput_accounting_many_messages() {
        let mut fabric = Fabric::new(topo());
        let sends: Vec<MessageSend> = (0..200).map(|i| send(i, i * 10, 1, 2, 1000)).collect();
        let done = fabric.run(sends, |_| vec![]);
        assert_eq!(done.len(), 200);
        // Completion order is monotone in delivery time.
        for pair in done.windows(2) {
            assert!(pair[0].delivered <= pair[1].delivered);
        }
    }
}
