//! Lock-free single-producer/single-consumer event ring.
//!
//! The fabric keeps one [`SpscRing`] per bus for its in-flight `TxDone`
//! events: a fixed-capacity ring of `(time, seq, slot)` triples with plain
//! atomic head/tail cursors, no locks and no external dependencies. In the
//! single-owner fabric loop push/pop are a handful of uncontended atomic
//! operations (compared to the `O(log n)` binary-heap path it replaces),
//! and the same structure is safe when producer and consumer live on
//! different threads — which is what the contended `bench --threads N`
//! mode and the `tests/properties5.rs` suite exercise.
//!
//! # Design
//!
//! The crate forbids `unsafe`, so the classic `UnsafeCell` slot array is
//! out. Instead each entry is split across three parallel *atomic lanes*
//! (`time: AtomicU64`, `seq: AtomicU64`, `slot: AtomicU32`):
//!
//! * the producer writes all three lanes with `Relaxed` stores, then
//!   publishes the entry with a `Release` store of `tail`;
//! * the consumer `Acquire`-loads `tail`; observing the new value
//!   synchronizes with the producer's `Release`, so the `Relaxed` lane
//!   loads that follow are guaranteed to see the published entry;
//! * slot reuse is ordered the same way in reverse through `head`
//!   (consumer `Release`-stores it after reading, producer
//!   `Acquire`-loads it before overwriting).
//!
//! This is the standard Lamport SPSC queue; the lanes are individually
//! atomic, so there is no data race to make unsafe in the first place —
//! only the ordering argument above is needed for logical correctness.
//!
//! A full ring never blocks and never drops: [`SpscRing::try_push`]
//! returns `false` and the fabric spills the event to its binary-heap
//! overflow path, preserving ordering and conservation invariants.

use dynplat_common::time::SimTime;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// A head or tail cursor on its own cache line, so the producer's tail
/// writes never invalidate the consumer's head line and vice versa.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Cursor(AtomicUsize);

/// One ring entry: an event timestamp, its global FIFO tie-break sequence
/// number, and the message-slab slot it refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingEntry {
    /// Event time.
    pub time: SimTime,
    /// Monotone sequence number (FIFO tie-break at equal times).
    pub seq: u64,
    /// Message-slab slot (doubles as the wire frame id).
    pub slot: u32,
}

/// Fixed-capacity lock-free SPSC ring of [`RingEntry`] values.
#[derive(Debug)]
pub struct SpscRing {
    mask: usize,
    head: Cursor,
    tail: Cursor,
    time: Box<[AtomicU64]>,
    seq: Box<[AtomicU64]>,
    slot: Box<[AtomicU32]>,
}

impl SpscRing {
    /// Creates a ring holding at least `capacity` entries (rounded up to
    /// the next power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        SpscRing {
            mask: cap - 1,
            head: Cursor::default(),
            tail: Cursor::default(),
            time: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            seq: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            slot: (0..cap).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of entries the ring can hold.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Entries currently queued (approximate under concurrent access,
    /// exact from either endpoint's own perspective).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: appends an entry. Returns `false` (without writing
    /// anything) when the ring is full — the caller must take its spill
    /// path.
    pub fn try_push(&self, entry: RingEntry) -> bool {
        // relaxed: the producer is the only thread that stores `tail`, so
        // its own last store is always visible to it.
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return false; // full
        }
        let i = tail & self.mask;
        // relaxed: the three lane stores are published as a unit by the
        // `Release` store of `tail` below; the consumer's `Acquire` load
        // of `tail` is what orders them (model-checked in
        // `dynplat-analysis`, tests/model_check.rs).
        self.time[i].store(entry.time.as_nanos(), Ordering::Relaxed);
        self.seq[i].store(entry.seq, Ordering::Relaxed); // relaxed: see above
        self.slot[i].store(entry.slot, Ordering::Relaxed); // relaxed: see above
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: the front entry without removing it.
    pub fn peek(&self) -> Option<RingEntry> {
        // relaxed: the consumer is the sole writer of `head`.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        Some(self.read(head))
    }

    /// Consumer side: removes and returns the front entry.
    pub fn pop(&self) -> Option<RingEntry> {
        // relaxed: the consumer is the sole writer of `head`.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let entry = self.read(head);
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(entry)
    }

    fn read(&self, head: usize) -> RingEntry {
        let i = head & self.mask;
        // relaxed: only reached after the caller's `Acquire` load of
        // `tail` observed the producer's `Release` publish, which makes
        // these lane values visible (model-checked in `dynplat-analysis`).
        RingEntry {
            time: SimTime::from_nanos(self.time[i].load(Ordering::Relaxed)),
            seq: self.seq[i].load(Ordering::Relaxed), // relaxed: see above
            slot: self.slot[i].load(Ordering::Relaxed), // relaxed: see above
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> RingEntry {
        RingEntry {
            time: SimTime::from_nanos(n),
            seq: n,
            slot: n as u32,
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpscRing::new(0).capacity(), 2);
        assert_eq!(SpscRing::new(3).capacity(), 4);
        assert_eq!(SpscRing::new(8).capacity(), 8);
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let ring = SpscRing::new(4);
        // Several times around the ring to exercise index wrapping.
        let mut next = 0u64;
        for _ in 0..10 {
            for _ in 0..3 {
                assert!(ring.try_push(entry(next)));
                next += 1;
            }
            for k in (next - 3)..next {
                assert_eq!(ring.peek(), Some(entry(k)));
                assert_eq!(ring.pop(), Some(entry(k)));
            }
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_rejects_without_overwriting() {
        let ring = SpscRing::new(2);
        assert!(ring.try_push(entry(1)));
        assert!(ring.try_push(entry(2)));
        assert!(!ring.try_push(entry(3)), "full ring must refuse");
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.pop(), Some(entry(1)));
        assert!(ring.try_push(entry(3)), "pop frees a slot");
        assert_eq!(ring.pop(), Some(entry(2)));
        assert_eq!(ring.pop(), Some(entry(3)));
    }
}
