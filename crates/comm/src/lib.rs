//! Service-oriented middleware for the dynamic platform (§2.1, Fig. 3).
//!
//! "To achieve a more flexible communication, service-oriented or
//! data-centric communication might be used. Potential candidates for this
//! are SOME/IP and DDS." This crate implements a SOME/IP-inspired
//! middleware from scratch:
//!
//! * [`wire`] — the on-wire message header (message id, length, request id,
//!   message type, return code) with a validated binary codec;
//! * [`sd`] — service discovery: offers with TTL, finds, subscriptions;
//! * [`fabric`] — a multi-bus network fabric over `dynplat-net` arbiters
//!   and the `dynplat-hw` topology: segmentation per medium, gateway
//!   store-and-forward, delivery callbacks;
//! * [`paradigm`] — the paper's three communication paradigms built on the
//!   fabric: **Event** (publish/subscribe, producer owns the interface),
//!   **Message** (request/response RPC, consumer owns the interface) and
//!   **Stream** (continuous one-way data with inter-frame dependencies);
//! * [`qos`] — the latency/jitter/bandwidth requirement attributes the
//!   interface DSL attaches to each port;
//! * [`endpoint`] — the typed runtime layer: service skeletons and client
//!   proxies that link dynamically under access control, the Adaptive-RTE
//!   behavior the paper's §5.2 points to;
//! * [`retry`] — client-side robustness: per-request timeout, capped
//!   exponential backoff with deterministic jitter, and a circuit breaker
//!   per (client, service) edge;
//! * [`ring`] — the lock-free SPSC event ring the fabric hot path rides
//!   (per-bus `TxDone` queues with a heap spill path);
//! * [`arena`] — the per-fabric payload arena behind the zero-copy wire
//!   path: one staged frame shared by every fanout leg.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod endpoint;
pub mod fabric;
pub mod paradigm;
pub mod qos;
pub mod retry;
pub mod ring;
pub mod sd;
pub mod wire;

pub use arena::{ArenaStats, PayloadArena, PayloadRef};
pub use endpoint::{ClientProxy, EndpointError, ServiceSkeleton};
pub use fabric::{BusPort, Fabric, MessageDelivery, MessageSend, SlabStats};
pub use paradigm::{EventBus, EventScratch, RpcScratch, RpcStats, StreamScratch, StreamStats};
pub use qos::QosSpec;
pub use retry::{Attempt, BreakerState, CircuitBreaker, RetryPolicy};
pub use ring::{RingEntry, SpscRing};
pub use sd::{SdEntry, ServiceDirectory};
pub use wire::{MessageType, ReturnCode, SomeIpHeader};
