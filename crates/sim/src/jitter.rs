//! Uncertainty models: execution-time jitter and imperfect clocks.
//!
//! The paper's central theme is *uncertainty management*: once applications
//! are added and updated dynamically, execution times, communication delays
//! and clock agreement can no longer be pinned down at design time. This
//! module provides the two uncertainty sources every experiment injects:
//!
//! * [`ExecutionModel`] — stochastic execution times between a best-case and
//!   a worst-case bound;
//! * [`ClockModel`] — per-ECU clock offset and drift, used by the update
//!   experiments (§3.2) to show why a centrally synchronized version switch
//!   "requires high accuracy clock synchronization";
//! * [`GaussianNoise`] — additive measurement noise for workloads whose
//!   *signals* are uncertain, not just their timing (the V2X platoon's
//!   range and delay sensors).

use dynplat_common::rng::truncated_normal_factor;
use dynplat_common::rng::Rng;
use dynplat_common::time::{SimDuration, SimTime};

/// Stochastic execution-time model for a task.
///
/// Samples are drawn as `nominal * factor` where `factor` follows a
/// truncated normal around 1.0, clamped so results stay within
/// `[bcet, wcet]`.
///
/// # Examples
///
/// ```
/// use dynplat_common::time::SimDuration;
/// use dynplat_sim::jitter::ExecutionModel;
///
/// let model = ExecutionModel::new(
///     SimDuration::from_micros(800),
///     SimDuration::from_micros(1000),
///     0.05,
/// );
/// let mut rng = dynplat_common::rng::seeded_rng(1);
/// let sample = model.sample(&mut rng);
/// assert!(sample >= SimDuration::from_micros(800));
/// assert!(sample <= SimDuration::from_micros(1000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionModel {
    bcet: SimDuration,
    wcet: SimDuration,
    sigma: f64,
}

impl ExecutionModel {
    /// Creates a model with best-case `bcet`, worst-case `wcet` and relative
    /// standard deviation `sigma` (fraction of the nominal time).
    ///
    /// # Panics
    ///
    /// Panics if `bcet > wcet`, `wcet` is zero, or `sigma` is negative.
    pub fn new(bcet: SimDuration, wcet: SimDuration, sigma: f64) -> Self {
        assert!(bcet <= wcet, "bcet must not exceed wcet");
        assert!(!wcet.is_zero(), "wcet must be non-zero");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        ExecutionModel { bcet, wcet, sigma }
    }

    /// A deterministic model that always takes exactly `wcet`.
    pub fn constant(wcet: SimDuration) -> Self {
        Self::new(wcet, wcet, 0.0)
    }

    /// The best-case execution time.
    pub fn bcet(self) -> SimDuration {
        self.bcet
    }

    /// The worst-case execution time — what schedulability analysis uses.
    pub fn wcet(self) -> SimDuration {
        self.wcet
    }

    /// Nominal (midpoint) execution time.
    pub fn nominal(self) -> SimDuration {
        (self.bcet + self.wcet) / 2
    }

    /// Draws one execution time, always within `[bcet, wcet]`.
    pub fn sample<R: Rng>(self, rng: &mut R) -> SimDuration {
        if self.bcet == self.wcet {
            return self.wcet;
        }
        let nominal = self.nominal();
        let min = self.bcet.as_nanos() as f64 / nominal.as_nanos() as f64;
        let max = self.wcet.as_nanos() as f64 / nominal.as_nanos() as f64;
        let factor = truncated_normal_factor(rng, self.sigma, min, max);
        nominal.mul_f64(factor)
    }
}

/// An imperfect per-ECU clock: `local = global * (1 + drift_ppm e-6) + offset`.
///
/// Offset may be negative (the clock runs behind). Drift accumulates with
/// elapsed global time, modeling crystal-oscillator tolerance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockModel {
    offset_ns: i64,
    drift_ppm: f64,
}

impl ClockModel {
    /// A perfect clock (zero offset, zero drift).
    pub const PERFECT: ClockModel = ClockModel {
        offset_ns: 0,
        drift_ppm: 0.0,
    };

    /// Creates a clock with a fixed offset (ns, may be negative) and a drift
    /// rate in parts per million.
    pub fn new(offset_ns: i64, drift_ppm: f64) -> Self {
        ClockModel {
            offset_ns,
            drift_ppm,
        }
    }

    /// The configured offset in nanoseconds.
    pub fn offset_ns(self) -> i64 {
        self.offset_ns
    }

    /// The configured drift in parts per million.
    pub fn drift_ppm(self) -> f64 {
        self.drift_ppm
    }

    /// Reads this clock at global time `global`; saturates at zero if the
    /// offset would make local time negative.
    pub fn local_time(self, global: SimTime) -> SimTime {
        let g = global.as_nanos() as f64;
        let local = g * (1.0 + self.drift_ppm * 1e-6) + self.offset_ns as f64;
        SimTime::from_nanos(local.max(0.0) as u64)
    }

    /// Absolute disagreement between this clock and a perfect clock at
    /// `global`.
    pub fn error_at(self, global: SimTime) -> SimDuration {
        let local = self.local_time(global).as_nanos() as i128;
        let g = global.as_nanos() as i128;
        SimDuration::from_nanos(local.abs_diff(g) as u64)
    }

    /// When, in global time, this clock shows `local_target`.
    ///
    /// This is the instant a "switch at local time T" command actually fires
    /// on an ECU with this clock — the quantity that makes centralized
    /// switch-over updates fragile (§3.2).
    pub fn global_time_showing(self, local_target: SimTime) -> SimTime {
        let l = local_target.as_nanos() as f64;
        let g = (l - self.offset_ns as f64) / (1.0 + self.drift_ppm * 1e-6);
        SimTime::from_nanos(g.max(0.0) as u64)
    }
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel::PERFECT
    }
}

/// Additive Gaussian measurement noise `mean + sigma · z`, with `z` drawn
/// by a Box–Muller transform from the seeded stream — the standard sensor
/// model for signal-level uncertainty (range radar, V2X age measurements).
/// Deterministic per seed, like every other model in this module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianNoise {
    mean: f64,
    sigma: f64,
}

impl GaussianNoise {
    /// Creates a noise source centered on `mean` with standard deviation
    /// `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        GaussianNoise { mean, sigma }
    }

    /// Zero-mean noise — the usual additive-disturbance form.
    pub fn centered(sigma: f64) -> Self {
        GaussianNoise::new(0.0, sigma)
    }

    /// The configured mean.
    pub fn mean(self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn sigma(self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mean;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.sigma * z
    }

    /// Draws one sample clamped to `[min, max]` (physical sensors saturate).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn sample_clamped<R: Rng>(self, rng: &mut R, min: f64, max: f64) -> f64 {
        assert!(min <= max, "min must not exceed max");
        self.sample(rng).clamp(min, max)
    }
}

/// Draws a random clock per ECU: offset uniform in `±max_offset`, drift
/// uniform in `±max_drift_ppm`.
pub fn random_clock<R: Rng>(
    rng: &mut R,
    max_offset: SimDuration,
    max_drift_ppm: f64,
) -> ClockModel {
    let off_range = max_offset.as_nanos() as i64;
    let offset = if off_range == 0 {
        0
    } else {
        rng.gen_range(-off_range..=off_range)
    };
    let drift = if max_drift_ppm == 0.0 {
        0.0
    } else {
        rng.gen_range(-max_drift_ppm..=max_drift_ppm)
    };
    ClockModel::new(offset, drift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::rng::seeded_rng;

    #[test]
    fn samples_respect_bounds() {
        let m = ExecutionModel::new(
            SimDuration::from_micros(500),
            SimDuration::from_micros(1500),
            0.3,
        );
        let mut rng = seeded_rng(4);
        for _ in 0..2000 {
            let s = m.sample(&mut rng);
            assert!(s >= m.bcet() && s <= m.wcet());
        }
    }

    #[test]
    fn constant_model_never_varies() {
        let m = ExecutionModel::constant(SimDuration::from_micros(100));
        let mut rng = seeded_rng(4);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_micros(100));
        }
    }

    #[test]
    #[should_panic(expected = "bcet must not exceed wcet")]
    fn inverted_bounds_panic() {
        ExecutionModel::new(
            SimDuration::from_micros(2),
            SimDuration::from_micros(1),
            0.1,
        );
    }

    #[test]
    fn perfect_clock_is_identity() {
        let t = SimTime::from_secs(100);
        assert_eq!(ClockModel::PERFECT.local_time(t), t);
        assert_eq!(ClockModel::PERFECT.error_at(t), SimDuration::ZERO);
        assert_eq!(ClockModel::PERFECT.global_time_showing(t), t);
    }

    #[test]
    fn offset_shifts_local_time() {
        let c = ClockModel::new(1_000_000, 0.0); // +1 ms
        let t = SimTime::from_secs(1);
        assert_eq!(c.local_time(t), t + SimDuration::from_millis(1));
        assert_eq!(c.error_at(t), SimDuration::from_millis(1));
        let back = c.global_time_showing(c.local_time(t));
        assert_eq!(back, t);
    }

    #[test]
    fn negative_offset_saturates_at_zero() {
        let c = ClockModel::new(-5_000_000, 0.0);
        assert_eq!(c.local_time(SimTime::from_millis(1)), SimTime::ZERO);
    }

    #[test]
    fn drift_accumulates() {
        let c = ClockModel::new(0, 100.0); // 100 ppm fast
        let t = SimTime::from_secs(10);
        // 100 ppm over 10 s = 1 ms ahead.
        let err = c.error_at(t);
        assert!(err >= SimDuration::from_micros(999) && err <= SimDuration::from_micros(1001));
    }

    #[test]
    fn gaussian_noise_recovers_its_moments() {
        let n = GaussianNoise::new(5.0, 0.5);
        let mut rng = seeded_rng(21);
        let samples: Vec<f64> = (0..5000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "sample mean {mean}");
        assert!(
            (var.sqrt() - 0.5).abs() < 0.05,
            "sample sigma {}",
            var.sqrt()
        );
    }

    #[test]
    fn gaussian_noise_is_deterministic_and_clamps() {
        let n = GaussianNoise::centered(1.0);
        let a: Vec<f64> = {
            let mut rng = seeded_rng(7);
            (0..50).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(7);
            (0..50).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        let mut rng = seeded_rng(8);
        for _ in 0..200 {
            let s = n.sample_clamped(&mut rng, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&s));
        }
        assert_eq!(GaussianNoise::new(3.0, 0.0).sample(&mut rng), 3.0);
    }

    #[test]
    fn random_clock_within_configured_bounds() {
        let mut rng = seeded_rng(11);
        for _ in 0..200 {
            let c = random_clock(&mut rng, SimDuration::from_millis(2), 50.0);
            assert!(c.offset_ns().abs() <= 2_000_000);
            assert!(c.drift_ppm().abs() <= 50.0);
        }
        let perfect = random_clock(&mut rng, SimDuration::ZERO, 0.0);
        assert_eq!(perfect, ClockModel::PERFECT);
    }
}
