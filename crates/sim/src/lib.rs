//! Discrete-event simulation kernel for the `dynplat` workspace.
//!
//! The paper (§2.3) calls for simulation as the assurance instrument for
//! dynamic platforms: every possible mapping must be shown functional, safe
//! and secure before it is allowed on the road. This crate provides the
//! shared engine those simulations run on:
//!
//! * [`Simulation`] — a time-ordered event queue over a user state type,
//!   with deterministic FIFO tie-breaking;
//! * [`trace`] — a structured trace recorder with per-category counters;
//! * [`jitter`] — execution-time and clock-imperfection models (the
//!   "uncertainty" of the paper's title made concrete).
//!
//! # Examples
//!
//! ```
//! use dynplat_common::time::{SimDuration, SimTime};
//! use dynplat_sim::Simulation;
//!
//! let mut sim = Simulation::new();
//! let mut counter = 0u32;
//! sim.schedule_at(SimTime::from_millis(5), |state: &mut u32, _sim| *state += 1);
//! sim.schedule_at(SimTime::from_millis(1), |state: &mut u32, sim| {
//!     *state += 10;
//!     sim.schedule_in(SimDuration::from_millis(1), |state: &mut u32, _| *state += 100);
//! });
//! sim.run(&mut counter);
//! assert_eq!(counter, 111);
//! assert_eq!(sim.now(), SimTime::from_millis(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jitter;
pub mod trace;

pub use trace::{Trace, TraceEntry};

use dynplat_common::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type BoxedEvent<S> = Box<dyn FnOnce(&mut S, &mut Simulation<S>)>;

struct QueuedEvent<S> {
    time: SimTime,
    seq: u64,
    action: BoxedEvent<S>,
}

impl<S> PartialEq for QueuedEvent<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for QueuedEvent<S> {}
impl<S> PartialOrd for QueuedEvent<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for QueuedEvent<S> {
    // Reverse ordering: the BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation over a user-provided state type `S`.
///
/// Events are `FnOnce(&mut S, &mut Simulation<S>)` closures: they mutate the
/// state and may schedule further events. Events at equal timestamps run in
/// scheduling (FIFO) order, which keeps every run deterministic.
pub struct Simulation<S> {
    now: SimTime,
    queue: BinaryHeap<QueuedEvent<S>>,
    seq: u64,
    executed: u64,
}

impl<S> Default for Simulation<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> std::fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Simulation<S> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            executed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (before [`Simulation::now`]).
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut S, &mut Simulation<S>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            time: at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` at `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut S, &mut Simulation<S>) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Executes the single earliest pending event.
    ///
    /// Returns `false` if the queue was empty (time does not advance).
    pub fn step(&mut self, state: &mut S) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.executed += 1;
        (ev.action)(state, self);
        true
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Runs events with timestamps up to and including `until`.
    ///
    /// Events scheduled beyond `until` stay queued; the clock is advanced to
    /// `until` afterwards (even if no event landed exactly there).
    pub fn run_until(&mut self, state: &mut S, until: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.time > until {
                break;
            }
            self.step(state);
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Runs at most `max_events` events; returns how many ran.
    ///
    /// A guard against accidentally divergent simulations (events that keep
    /// rescheduling themselves).
    pub fn run_bounded(&mut self, state: &mut S, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(state) {
            n += 1;
        }
        n
    }

    /// Discards all pending events (e.g. on simulated ECU failure).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

/// Schedules a periodic activity: `action` runs at `start`, `start + period`,
/// … while it keeps returning `true`.
///
/// This is the canonical shape of a deterministic application's activation
/// pattern (§3.1: "fixed activation intervals").
///
/// # Panics
///
/// Panics if `period` is zero.
pub fn schedule_periodic<S, F>(
    sim: &mut Simulation<S>,
    start: SimTime,
    period: SimDuration,
    action: F,
) where
    S: 'static,
    F: FnMut(&mut S, &mut Simulation<S>) -> bool + 'static,
{
    assert!(
        !period.is_zero(),
        "periodic activity needs a non-zero period"
    );
    tick(sim, start, period, action);
}

fn tick<S, F>(sim: &mut Simulation<S>, at: SimTime, period: SimDuration, mut action: F)
where
    S: 'static,
    F: FnMut(&mut S, &mut Simulation<S>) -> bool + 'static,
{
    sim.schedule_at(at, move |state, sim| {
        if action(state, sim) {
            let next = sim.now() + period;
            tick(sim, next, period, action);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new();
        let mut log: Vec<u64> = Vec::new();
        sim.schedule_at(SimTime::from_millis(3), |l: &mut Vec<u64>, _| l.push(3));
        sim.schedule_at(SimTime::from_millis(1), |l: &mut Vec<u64>, _| l.push(1));
        sim.schedule_at(SimTime::from_millis(2), |l: &mut Vec<u64>, _| l.push(2));
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_run_fifo() {
        let mut sim = Simulation::new();
        let mut log: Vec<u32> = Vec::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            sim.schedule_at(t, move |l: &mut Vec<u32>, _| l.push(i));
        }
        sim.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Simulation::new();
        let mut seen = Vec::new();
        sim.schedule_at(SimTime::from_millis(1), |_: &mut Vec<SimTime>, sim| {
            sim.schedule_in(SimDuration::from_millis(4), |l: &mut Vec<SimTime>, sim| {
                l.push(sim.now());
            });
        });
        sim.run(&mut seen);
        assert_eq!(seen, vec![SimTime::from_millis(5)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        let mut s = ();
        sim.schedule_at(SimTime::from_millis(5), |_: &mut (), _| {});
        sim.step(&mut s);
        sim.schedule_at(SimTime::from_millis(1), |_: &mut (), _| {});
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut sim = Simulation::new();
        let mut count = 0u32;
        for ms in [1u64, 2, 3, 10] {
            sim.schedule_at(SimTime::from_millis(ms), |c: &mut u32, _| *c += 1);
        }
        sim.run_until(&mut count, SimTime::from_millis(5));
        assert_eq!(count, 3);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(5));
        sim.run(&mut count);
        assert_eq!(count, 4);
    }

    #[test]
    fn run_bounded_stops_divergent_simulations() {
        let mut sim = Simulation::new();
        fn reschedule(_: &mut (), sim: &mut Simulation<()>) {
            sim.schedule_in(SimDuration::from_nanos(1), reschedule);
        }
        sim.schedule_at(SimTime::ZERO, reschedule);
        let mut s = ();
        let ran = sim.run_bounded(&mut s, 1000);
        assert_eq!(ran, 1000);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn periodic_activity_repeats_until_false() {
        let mut sim = Simulation::new();
        let mut times: Vec<u64> = Vec::new();
        schedule_periodic(
            &mut sim,
            SimTime::from_millis(2),
            SimDuration::from_millis(10),
            |l: &mut Vec<u64>, sim| {
                l.push(sim.now().as_millis());
                l.len() < 4
            },
        );
        sim.run(&mut times);
        assert_eq!(times, vec![2, 12, 22, 32]);
    }

    #[test]
    fn clear_discards_pending_events() {
        let mut sim = Simulation::new();
        let mut n = 0u32;
        sim.schedule_at(SimTime::from_millis(1), |c: &mut u32, _| *c += 1);
        sim.clear();
        sim.run(&mut n);
        assert_eq!(n, 0);
    }

    #[test]
    fn executed_counter_counts() {
        let mut sim = Simulation::new();
        let mut s = ();
        sim.schedule_at(SimTime::from_millis(1), |_: &mut (), _| {});
        sim.schedule_at(SimTime::from_millis(2), |_: &mut (), _| {});
        sim.run(&mut s);
        assert_eq!(sim.executed(), 2);
    }
}
