//! Structured simulation traces.
//!
//! Runtime monitoring (§3.4 of the paper) and the experiment harness both
//! need a record of what happened during a simulation. [`Trace`] is a cheap
//! append-only log of timestamped, categorized entries with per-category
//! counters, suitable both as a debugging aid and as the raw input for the
//! monitoring substrate's statistics.

use dynplat_common::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time at which the event happened.
    pub time: SimTime,
    /// Stable category label, e.g. `"task.activate"` or `"net.tx"`.
    pub category: String,
    /// Free-form detail message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.category, self.message)
    }
}

/// Append-only trace with per-category counters.
///
/// # Examples
///
/// ```
/// use dynplat_common::time::SimTime;
/// use dynplat_sim::Trace;
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::from_millis(1), "task.activate", "task3 released");
/// trace.record(SimTime::from_millis(2), "task.activate", "task4 released");
/// assert_eq!(trace.count("task.activate"), 2);
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    counters: BTreeMap<String, u64>,
    capacity: Option<usize>,
}

impl Trace {
    /// Creates an unbounded trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace that keeps only the most recent `capacity` entries
    /// (counters still count everything) — the "fault recorder ring buffer"
    /// shape used by the monitoring substrate.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        Trace {
            entries: Vec::new(),
            counters: BTreeMap::new(),
            capacity: Some(capacity),
        }
    }

    /// Appends an entry.
    pub fn record(
        &mut self,
        time: SimTime,
        category: impl Into<String>,
        message: impl Into<String>,
    ) {
        let category = category.into();
        *self.counters.entry(category.clone()).or_insert(0) += 1;
        self.entries.push(TraceEntry {
            time,
            category,
            message: message.into(),
        });
        if let Some(cap) = self.capacity {
            if self.entries.len() > cap {
                let excess = self.entries.len() - cap;
                self.entries.drain(0..excess);
            }
        }
    }

    /// Total occurrences of `category`, including entries evicted from a
    /// bounded trace.
    pub fn count(&self, category: &str) -> u64 {
        self.counters.get(category).copied().unwrap_or(0)
    }

    /// All retained entries in insertion order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Retained entries of one category.
    pub fn entries_in<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All categories seen so far with their total counts.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Clears retained entries and counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = Trace::new();
        t.record(SimTime::from_millis(1), "a", "x");
        t.record(SimTime::from_millis(2), "b", "y");
        t.record(SimTime::from_millis(3), "a", "z");
        assert_eq!(t.count("a"), 2);
        assert_eq!(t.count("b"), 1);
        assert_eq!(t.count("c"), 0);
        assert_eq!(t.entries_in("a").count(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn bounded_trace_evicts_oldest_but_keeps_counters() {
        let mut t = Trace::with_capacity_limit(2);
        for i in 0..5u64 {
            t.record(SimTime::from_millis(i), "f", format!("{i}"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.count("f"), 5);
        assert_eq!(t.entries()[0].message, "3");
        assert_eq!(t.entries()[1].message, "4");
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, "a", "x");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.count("a"), 0);
    }

    #[test]
    fn display_format() {
        let e = TraceEntry {
            time: SimTime::from_millis(7),
            category: "net.tx".into(),
            message: "frame 9".into(),
        };
        assert_eq!(e.to_string(), "[7ms] net.tx: frame 9");
    }
}
