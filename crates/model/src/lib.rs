//! The integrated modeling approach of §2.2.
//!
//! "A set of Domain-Specific Languages (DSLs) can be a good approach to
//! describe the system in a formal way, which can be checked for
//! correctness. Such a set of DSLs requires separate approaches to describe
//! the hardware architecture, the interfaces between applications and a
//! deployment to different hardware architectures and communication
//! technologies." This crate provides all three, plus the attached
//! verification engine and the generators that feed the rest of the stack:
//!
//! * [`ir`] — the in-memory system model: hardware (reusing
//!   `dynplat-hw`), typed service interfaces with owners and QoS
//!   attributes, applications with tasks/resources/ASIL, and a deployment
//!   with *variability* (an app may be mapped to any of several ECUs,
//!   §2.3);
//! * [`dsl`] — a textual syntax with lexer, recursive-descent parser and
//!   pretty-printer (parse ∘ print = id, property-tested);
//! * [`mod@verify`] — the verification engine: reference integrity, interface
//!   ownership, ASIL dependency monotonicity, memory/MMU isolation, CPU
//!   schedulability per ECU, bus bandwidth, and latency feasibility — over
//!   one concrete deployment or *all* variant combinations;
//! * [`generate`] — integration is key (§2.2): generation of the access
//!   control matrix, middleware subscription config, and per-ECU task sets
//!   for the scheduling substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
pub mod generate;
pub mod ir;
pub mod verify;

pub use dsl::{parse_model, print_model, ParseError};
pub use ir::{
    AppModel, ConsumedPort, Deployment, EventDef, MappingChoice, MethodDef, PortKind,
    ServiceInterface, StreamDef, SystemModel,
};
pub use verify::{plan_replicas, verify, verify_all_variants, Violation};
