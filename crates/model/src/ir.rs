//! The in-memory system model (intermediate representation).

use dynplat_comm::QosSpec;
use dynplat_common::time::SimDuration;
use dynplat_common::value::DataType;
use dynplat_common::{AppId, AppKind, Asil, EcuId, EventGroupId, MethodId, ServiceId};
use dynplat_hw::HwTopology;
use std::collections::BTreeMap;

/// An RPC method of a service interface.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDef {
    /// Method identifier within the service.
    pub id: MethodId,
    /// Name.
    pub name: String,
    /// Request payload type.
    pub request: DataType,
    /// Response payload type.
    pub response: DataType,
    /// Requirements on the call.
    pub qos: QosSpec,
}

/// An event (notification topic) of a service interface.
#[derive(Clone, Debug, PartialEq)]
pub struct EventDef {
    /// Event group identifier.
    pub id: EventGroupId,
    /// Name.
    pub name: String,
    /// Payload type.
    pub payload: DataType,
    /// Requirements on delivery.
    pub qos: QosSpec,
}

/// A stream of a service interface.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamDef {
    /// Stream identifier (shares the event-group id space).
    pub id: EventGroupId,
    /// Name.
    pub name: String,
    /// Per-frame payload type.
    pub frame: DataType,
    /// Requirements (typically bandwidth).
    pub qos: QosSpec,
}

/// A service interface with a designated owner (§2.1: "we assume an owner
/// for every interface, who controls interface description, version, etc.").
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceInterface {
    /// Service identifier.
    pub id: ServiceId,
    /// Name.
    pub name: String,
    /// Owning application (producer for events, consumer/provider for
    /// methods per §2.1).
    pub owner: AppId,
    /// Interface major version.
    pub version: u8,
    /// RPC methods.
    pub methods: Vec<MethodDef>,
    /// Events.
    pub events: Vec<EventDef>,
    /// Streams.
    pub streams: Vec<StreamDef>,
}

impl ServiceInterface {
    /// Looks up a method by id.
    pub fn method(&self, id: MethodId) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.id == id)
    }

    /// Looks up an event by id.
    pub fn event(&self, id: EventGroupId) -> Option<&EventDef> {
        self.events.iter().find(|e| e.id == id)
    }

    /// Looks up a stream by id.
    pub fn stream(&self, id: EventGroupId) -> Option<&StreamDef> {
        self.streams.iter().find(|s| s.id == id)
    }
}

/// Which part of a service a consumer binds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortKind {
    /// Subscribe to an event group.
    Event(EventGroupId),
    /// Call a method.
    Method(MethodId),
    /// Receive a stream.
    Stream(EventGroupId),
}

/// A consumed port: this app uses that part of that service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsumedPort {
    /// The providing service.
    pub service: ServiceId,
    /// What is consumed.
    pub kind: PortKind,
}

/// An application model (§1.1: the app is the smallest unit of addition and
/// update).
#[derive(Clone, Debug, PartialEq)]
pub struct AppModel {
    /// Application identifier.
    pub id: AppId,
    /// Name.
    pub name: String,
    /// Deterministic or non-deterministic (§3.1).
    pub kind: AppKind,
    /// Safety level.
    pub asil: Asil,
    /// Services this app provides (it must own them).
    pub provides: Vec<ServiceId>,
    /// Ports this app consumes.
    pub consumes: Vec<ConsumedPort>,
    /// Activation period of the app's main task.
    pub period: SimDuration,
    /// Computational work per activation, in million instructions; the
    /// concrete WCET on an ECU is `work / ecu.mips` (hardware-dependent).
    pub work_mi: f64,
    /// Memory footprint in KiB.
    pub memory_kib: u32,
    /// Whether the app needs a GPU (neural-network workloads, §1).
    pub needs_gpu: bool,
}

impl AppModel {
    /// Concrete WCET of the main task on a given CPU.
    pub fn wcet_on(&self, cpu: &dynplat_hw::CpuSpec) -> SimDuration {
        cpu.exec_time(self.work_mi)
    }
}

/// Mapping variability for one application (§2.3: "it can be necessary to
/// include variances in the model and not define every mapping … uniquely.
/// The final mapping might only be applied in the vehicle on the road.").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingChoice {
    /// Pinned to one ECU.
    Fixed(EcuId),
    /// May run on any of these ECUs.
    AnyOf(Vec<EcuId>),
}

impl MappingChoice {
    /// The candidate ECUs.
    pub fn candidates(&self) -> &[EcuId] {
        match self {
            MappingChoice::Fixed(e) => std::slice::from_ref(e),
            MappingChoice::AnyOf(list) => list,
        }
    }
}

/// The deployment model: per-app mapping choices plus fail-operational
/// replica requirements (§3.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Deployment {
    /// Mapping choice per application.
    pub mapping: BTreeMap<AppId, MappingChoice>,
    /// Required replica count per application; absent means 1 (no
    /// redundancy). Fail-operational functions (§3.3) demand ≥ 2 replicas
    /// on distinct ECUs.
    pub replicas: BTreeMap<AppId, u8>,
}

impl Deployment {
    /// Required replicas of `app` (1 when not configured).
    pub fn replicas_of(&self, app: AppId) -> u8 {
        self.replicas.get(&app).copied().unwrap_or(1).max(1)
    }

    /// Declares that `app` must run `n` synchronized replicas on distinct
    /// ECUs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn require_replicas(&mut self, app: AppId, n: u8) {
        assert!(n > 0, "replica count must be at least 1");
        self.replicas.insert(app, n);
    }

    /// Number of concrete mapping combinations this deployment admits.
    pub fn variant_count(&self) -> u64 {
        self.mapping
            .values()
            .map(|c| c.candidates().len() as u64)
            .product()
    }

    /// Enumerates all concrete assignments, up to `cap` of them.
    pub fn variants(&self, cap: usize) -> Vec<BTreeMap<AppId, EcuId>> {
        let apps: Vec<(&AppId, &MappingChoice)> = self.mapping.iter().collect();
        let mut out: Vec<BTreeMap<AppId, EcuId>> = vec![BTreeMap::new()];
        for (app, choice) in apps {
            let mut next = Vec::new();
            for partial in &out {
                for &ecu in choice.candidates() {
                    let mut m = partial.clone();
                    m.insert(*app, ecu);
                    next.push(m);
                    if next.len() >= cap {
                        break;
                    }
                }
                if next.len() >= cap {
                    break;
                }
            }
            out = next;
        }
        out
    }
}

/// The complete system model the DSLs describe.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SystemModel {
    /// Hardware architecture.
    pub hardware: HwTopology,
    /// Interface definitions.
    pub interfaces: Vec<ServiceInterface>,
    /// Applications.
    pub applications: Vec<AppModel>,
    /// Deployment with variability.
    pub deployment: Deployment,
}

impl SystemModel {
    /// Looks up an interface.
    pub fn interface(&self, id: ServiceId) -> Option<&ServiceInterface> {
        self.interfaces.iter().find(|i| i.id == id)
    }

    /// Looks up an application.
    pub fn application(&self, id: AppId) -> Option<&AppModel> {
        self.applications.iter().find(|a| a.id == id)
    }

    /// The provider application of a service (by ownership).
    pub fn provider_of(&self, service: ServiceId) -> Option<&AppModel> {
        let iface = self.interface(service)?;
        self.application(iface.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_enumeration() {
        let mut d = Deployment::default();
        d.mapping.insert(AppId(1), MappingChoice::Fixed(EcuId(0)));
        d.mapping
            .insert(AppId(2), MappingChoice::AnyOf(vec![EcuId(0), EcuId(1)]));
        d.mapping
            .insert(AppId(3), MappingChoice::AnyOf(vec![EcuId(1), EcuId(2)]));
        assert_eq!(d.variant_count(), 4);
        let variants = d.variants(100);
        assert_eq!(variants.len(), 4);
        for v in &variants {
            assert_eq!(v[&AppId(1)], EcuId(0));
        }
        // Cap limits enumeration.
        assert_eq!(d.variants(2).len(), 2);
    }

    #[test]
    fn wcet_depends_on_cpu() {
        let app = AppModel {
            id: AppId(1),
            name: "ctrl".into(),
            kind: AppKind::Deterministic,
            asil: Asil::C,
            provides: vec![],
            consumes: vec![],
            period: SimDuration::from_millis(10),
            work_mi: 16.0,
            memory_kib: 128,
            needs_gpu: false,
        };
        let slow = dynplat_hw::CpuSpec::new(160, 1, 160);
        let fast = dynplat_hw::CpuSpec::new(2000, 8, 24_000);
        assert!(app.wcet_on(&slow) > app.wcet_on(&fast));
        assert_eq!(app.wcet_on(&slow), SimDuration::from_millis(100));
    }

    #[test]
    fn lookups() {
        let iface = ServiceInterface {
            id: ServiceId(1),
            name: "speed".into(),
            owner: AppId(1),
            version: 1,
            methods: vec![MethodDef {
                id: MethodId(1),
                name: "set".into(),
                request: DataType::U32,
                response: DataType::Bool,
                qos: QosSpec::best_effort(),
            }],
            events: vec![],
            streams: vec![],
        };
        assert!(iface.method(MethodId(1)).is_some());
        assert!(iface.method(MethodId(2)).is_none());
        assert!(iface.event(EventGroupId(1)).is_none());
    }
}
