//! Generators: "Integration is key for a modeling approach. It can, e.g.,
//! be used to generate code stubs, configurations for communication stacks
//! and a middleware on devices, or input for simulation environments"
//! (§2.2) — and §4.2: access-control definitions "should be automatically
//! extracted from the modeling approach".

use crate::ir::{PortKind, SystemModel};
use dynplat_comm::sd::SdEntry;
use dynplat_common::ids::ServiceInstance;
use dynplat_common::time::SimDuration;
use dynplat_common::{AppId, EcuId, TaskId};
use dynplat_sched::task::{TaskSet, TaskSpec};
use dynplat_security::authz::{AccessControlMatrix, Permission};
use std::collections::BTreeMap;

/// Derives the access-control matrix from the interface/consumption model:
/// exactly the bindings the model declares, nothing else (deny by default).
pub fn access_matrix(model: &SystemModel) -> AccessControlMatrix {
    let mut matrix = AccessControlMatrix::new();
    for app in &model.applications {
        for port in &app.consumes {
            let perm = match port.kind {
                PortKind::Event(_) => Permission::Subscribe,
                PortKind::Method(m) => Permission::Call(m),
                PortKind::Stream(_) => Permission::Stream,
            };
            matrix.grant(app.id, port.service, perm);
        }
    }
    matrix
}

/// Generates the middleware bootstrap config for one concrete deployment:
/// the service offers and subscriptions each node must issue at startup.
pub fn middleware_config(
    model: &SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
    ttl: SimDuration,
) -> Vec<SdEntry> {
    let mut entries = Vec::new();
    for app in &model.applications {
        let Some(&host) = assignment.get(&app.id) else {
            continue;
        };
        for service in &app.provides {
            if let Some(iface) = model.interface(*service) {
                entries.push(SdEntry::Offer {
                    instance: ServiceInstance::new(*service, 0),
                    host,
                    version: iface.version,
                    ttl,
                });
            }
        }
    }
    for app in &model.applications {
        let Some(&host) = assignment.get(&app.id) else {
            continue;
        };
        for port in &app.consumes {
            if let PortKind::Event(group) | PortKind::Stream(group) = port.kind {
                entries.push(SdEntry::Subscribe {
                    instance: ServiceInstance::new(port.service, 0),
                    group,
                    subscriber: app.id,
                    host,
                    ttl,
                });
            }
        }
    }
    entries
}

/// Generates the per-ECU deterministic task sets for the scheduling
/// substrate (WCETs concretized against each ECU's CPU).
pub fn task_sets(
    model: &SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
) -> BTreeMap<EcuId, TaskSet> {
    let mut out: BTreeMap<EcuId, TaskSet> = BTreeMap::new();
    for app in &model.applications {
        if !app.kind.is_deterministic() {
            continue;
        }
        let Some(&ecu_id) = assignment.get(&app.id) else {
            continue;
        };
        let Some(ecu) = model.hardware.ecu(ecu_id) else {
            continue;
        };
        let wcet = app
            .wcet_on(ecu.cpu())
            .max(SimDuration::from_nanos(1))
            .min(app.period);
        let task = TaskSpec::periodic(TaskId(app.id.raw()), app.name.clone(), app.period, wcet);
        out.entry(ecu_id).or_default().push(task);
    }
    out
}

/// Generates the runtime monitor specifications for every deterministic
/// app under a concrete deployment (§3.4: monitors "target the key
/// parameters of deterministic applications, such as period, deadline,
/// jitter, memory usage"), with WCET-derived jitter bounds per host CPU.
pub fn monitor_specs(
    model: &SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
) -> Vec<dynplat_monitor::MonitorSpec> {
    model
        .applications
        .iter()
        .filter(|a| a.kind.is_deterministic())
        .filter_map(|app| {
            let &ecu_id = assignment.get(&app.id)?;
            let ecu = model.hardware.ecu(ecu_id)?;
            let wcet = app.wcet_on(ecu.cpu());
            Some(
                dynplat_monitor::MonitorSpec::new(
                    TaskId(app.id.raw()),
                    app.period,
                    app.period, // implicit deadline
                    u64::from(app.memory_kib) * 1024,
                )
                // Allow the full execution-time spread plus scheduling noise.
                .with_jitter_bound(wcet + app.period / 10),
            )
        })
        .collect()
}

/// Generates Rust code stubs for every interface — provider trait plus a
/// typed client struct skeleton, in the spirit of §2.2's "generate code
/// stubs".
pub fn code_stubs(model: &SystemModel) -> String {
    let mut out = String::new();
    for iface in &model.interfaces {
        out.push_str(&format!(
            "/// Provider trait for service `{}` (id {}, version {}).\n",
            iface.name,
            iface.id.raw(),
            iface.version
        ));
        out.push_str(&format!("pub trait {}Provider {{\n", camel(&iface.name)));
        for m in &iface.methods {
            out.push_str(&format!(
                "    /// Method `{}`: request {} -> response {}.\n",
                m.name, m.request, m.response
            ));
            out.push_str(&format!(
                "    fn {}(&mut self, request: Value) -> Value;\n",
                snake(&m.name)
            ));
        }
        for e in &iface.events {
            out.push_str(&format!(
                "    /// Emit event `{}` ({}).\n",
                e.name, e.payload
            ));
            out.push_str(&format!(
                "    fn emit_{}(&mut self) -> Value;\n",
                snake(&e.name)
            ));
        }
        out.push_str("}\n\n");
    }
    out
}

fn camel(s: &str) -> String {
    s.split(['_', '-', ' '])
        .filter(|p| !p.is_empty())
        .map(|p| {
            let mut c = p.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

fn snake(s: &str) -> String {
    s.replace(['-', ' '], "_").to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_model;
    use dynplat_common::{EventGroupId, MethodId, ServiceId};
    use dynplat_security::authz::AccessDecision;

    fn model() -> SystemModel {
        parse_model(
            r#"
system {
  hardware {
    ecu "gw" { id 1 class domain }
    ecu "hp" { id 2 class high }
    bus "eth0" { id 0 ethernet 100000000 attach [1 2] }
  }
  interface "speed" {
    id 10 owner 1 version 2
    event "speed" { id 1 payload {v: f64} }
    method "set_limit" { id 2 request {l: u32} response bool }
  }
  application "ctrl" { id 1 deterministic asil C provides [10] period 10ms work 2 memory 512 }
  application "hmi"  { id 2 non-deterministic asil QM consumes [10 event 1, 10 method 2] period 50ms work 1 memory 1024 }
  deployment { app 1 on 1  app 2 on 2 }
}
"#,
        )
        .unwrap()
    }

    fn assignment(m: &SystemModel) -> BTreeMap<AppId, EcuId> {
        m.deployment.variants(1).pop().unwrap()
    }

    #[test]
    fn access_matrix_matches_consumption() {
        let m = model();
        let matrix = access_matrix(&m);
        assert!(matrix
            .check(AppId(2), ServiceId(10), Permission::Subscribe)
            .is_granted());
        assert!(matrix
            .check(AppId(2), ServiceId(10), Permission::Call(MethodId(2)))
            .is_granted());
        // Not declared -> denied.
        assert_eq!(
            matrix.check(AppId(2), ServiceId(10), Permission::Call(MethodId(9))),
            AccessDecision::Denied
        );
        assert_eq!(
            matrix.check(AppId(1), ServiceId(10), Permission::Subscribe),
            AccessDecision::Denied
        );
        assert_eq!(matrix.len(), 2);
    }

    #[test]
    fn middleware_config_offers_and_subscribes() {
        let m = model();
        let entries = middleware_config(&m, &assignment(&m), SimDuration::from_secs(5));
        let offers = entries
            .iter()
            .filter(|e| matches!(e, SdEntry::Offer { .. }))
            .count();
        let subs = entries
            .iter()
            .filter(|e| matches!(e, SdEntry::Subscribe { .. }))
            .count();
        assert_eq!(offers, 1);
        assert_eq!(
            subs, 1,
            "only the event port subscribes; methods bind on demand"
        );
        match &entries[0] {
            SdEntry::Offer {
                instance,
                host,
                version,
                ..
            } => {
                assert_eq!(instance.service, ServiceId(10));
                assert_eq!(*host, EcuId(1));
                assert_eq!(*version, 2);
            }
            other => panic!("expected offer, got {other:?}"),
        }
        match entries
            .iter()
            .find(|e| matches!(e, SdEntry::Subscribe { .. }))
            .unwrap()
        {
            SdEntry::Subscribe {
                group,
                subscriber,
                host,
                ..
            } => {
                assert_eq!(*group, EventGroupId(1));
                assert_eq!(*subscriber, AppId(2));
                assert_eq!(*host, EcuId(2));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn task_sets_concretize_wcet_per_cpu() {
        let m = model();
        let sets = task_sets(&m, &assignment(&m));
        assert_eq!(sets.len(), 1, "only the deterministic app generates a task");
        let set = &sets[&EcuId(1)];
        assert_eq!(set.len(), 1);
        let task = &set.tasks()[0];
        // 2 MI on a 1200 MIPS domain ECU ≈ 1.67 ms.
        assert!(task.wcet > SimDuration::from_micros(1600));
        assert!(task.wcet < SimDuration::from_micros(1700));
    }

    #[test]
    fn monitor_specs_cover_deterministic_apps_only() {
        let m = model();
        let specs = monitor_specs(&m, &assignment(&m));
        assert_eq!(specs.len(), 1);
        let spec = &specs[0];
        assert_eq!(spec.task, dynplat_common::TaskId(1));
        assert_eq!(spec.period, SimDuration::from_millis(10));
        assert_eq!(spec.memory_budget, 512 * 1024);
        // Jitter bound reflects the host CPU's concrete WCET.
        assert!(spec.jitter_bound > SimDuration::from_millis(1));
        assert!(spec.jitter_bound < SimDuration::from_millis(10));
    }

    #[test]
    fn code_stubs_contain_every_port() {
        let m = model();
        let stubs = code_stubs(&m);
        assert!(stubs.contains("pub trait SpeedProvider"));
        assert!(stubs.contains("fn set_limit(&mut self, request: Value) -> Value;"));
        assert!(stubs.contains("fn emit_speed(&mut self) -> Value;"));
    }

    #[test]
    fn name_mangling() {
        assert_eq!(camel("speed_service"), "SpeedService");
        assert_eq!(camel("front-left sensor"), "FrontLeftSensor");
        assert_eq!(snake("Set-Limit"), "set_limit");
    }
}
