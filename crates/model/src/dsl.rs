//! The textual DSL: lexer, recursive-descent parser, pretty-printer.
//!
//! One source file describes all three sub-models of §2.2 — hardware,
//! interfaces, deployment — in a block syntax:
//!
//! ```text
//! system {
//!   hardware {
//!     ecu "body"    { id 0 class low }
//!     ecu "gateway" { id 1 class domain }
//!     bus "can0"    { id 0 can 500000 attach [0 1] }
//!   }
//!   interface "speed" {
//!     id 10 owner 1 version 1
//!     event "speed" { id 1 payload {speed_kmh: f64} latency 10ms critical }
//!     method "set_limit" { id 2 request {limit: u32} response bool }
//!   }
//!   application "ctrl" {
//!     id 1 deterministic asil C provides [10] period 10ms work 2.5 memory 512
//!   }
//!   application "hmi" {
//!     id 2 non-deterministic asil QM consumes [10 event 1] period 50ms work 1 memory 1024
//!   }
//!   deployment {
//!     app 1 on 1
//!     app 2 on any [0 1]
//!   }
//! }
//! ```
//!
//! [`print_model`] emits this syntax; `parse_model(print_model(m)) == m`
//! is property-tested.

use crate::ir::{
    AppModel, ConsumedPort, Deployment, EventDef, MappingChoice, MethodDef, PortKind,
    ServiceInterface, StreamDef, SystemModel,
};
use dynplat_comm::QosSpec;
use dynplat_common::time::SimDuration;
use dynplat_common::value::DataType;
use dynplat_common::{AppId, AppKind, Asil, BusId, EcuId, EventGroupId, MethodId, ServiceId};
use dynplat_hw::ecu::{CpuSpec, CryptoSupport, EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use std::fmt;

/// A parse failure with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line number (1-based).
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Number(f64, String), // value + unit suffix ("" if none)
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Colon,
    Comma,
    Semi,
    Pipe,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Number(n, u) => write!(f, "{n}{u}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Colon => write!(f, ":"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Pipe => write!(f, "|"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // comment to end of line
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                out.push((Tok::RBrace, line));
                chars.next();
            }
            '[' => {
                out.push((Tok::LBracket, line));
                chars.next();
            }
            ']' => {
                out.push((Tok::RBracket, line));
                chars.next();
            }
            '(' => {
                out.push((Tok::LParen, line));
                chars.next();
            }
            ')' => {
                out.push((Tok::RParen, line));
                chars.next();
            }
            ':' => {
                out.push((Tok::Colon, line));
                chars.next();
            }
            ',' => {
                out.push((Tok::Comma, line));
                chars.next();
            }
            ';' => {
                out.push((Tok::Semi, line));
                chars.next();
            }
            '|' => {
                out.push((Tok::Pipe, line));
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(ParseError {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push((Tok::Str(s), line));
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let mut unit = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphabetic() {
                        unit.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: f64 = num.parse().map_err(|_| ParseError {
                    line,
                    message: format!("bad number `{num}`"),
                })?;
                out.push((Tok::Number(value, unit), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw) && {
            self.bump();
            true
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Str(s) => Ok(s),
            other => Err(self.err(format!("expected string, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.bump() {
            Tok::Number(n, unit) if unit.is_empty() => Ok(n),
            Tok::Number(_, unit) => Err(self.err(format!("unexpected unit `{unit}`"))),
            other => Err(self.err(format!("expected number, found {other}"))),
        }
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        let n = self.number()?;
        if n.fract() != 0.0 || n < 0.0 {
            return Err(self.err(format!("expected integer, found {n}")));
        }
        Ok(n as u64)
    }

    fn duration(&mut self) -> Result<SimDuration, ParseError> {
        match self.bump() {
            Tok::Number(n, unit) => {
                let ns = match unit.as_str() {
                    "ns" => n,
                    "us" => n * 1e3,
                    "ms" => n * 1e6,
                    "s" => n * 1e9,
                    "" => return Err(self.err("duration needs a unit (ns/us/ms/s)")),
                    other => return Err(self.err(format!("unknown time unit `{other}`"))),
                };
                Ok(SimDuration::from_nanos(ns.round() as u64))
            }
            other => Err(self.err(format!("expected duration, found {other}"))),
        }
    }

    // -- types -----------------------------------------------------------

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "bool" => {
                    self.bump();
                    Ok(DataType::Bool)
                }
                "u8" => {
                    self.bump();
                    Ok(DataType::U8)
                }
                "u16" => {
                    self.bump();
                    Ok(DataType::U16)
                }
                "u32" => {
                    self.bump();
                    Ok(DataType::U32)
                }
                "u64" => {
                    self.bump();
                    Ok(DataType::U64)
                }
                "i64" => {
                    self.bump();
                    Ok(DataType::I64)
                }
                "f64" => {
                    self.bump();
                    Ok(DataType::F64)
                }
                "string" => {
                    self.bump();
                    Ok(DataType::Str)
                }
                "blob" => {
                    self.bump();
                    Ok(DataType::Blob)
                }
                "enum" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let mut variants = vec![self.ident()?];
                    while self.peek() == &Tok::Pipe {
                        self.bump();
                        variants.push(self.ident()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(DataType::Enum(variants))
                }
                other => Err(self.err(format!("unknown type `{other}`"))),
            },
            Tok::LBracket => {
                self.bump();
                let elem = self.data_type()?;
                self.expect(&Tok::Semi)?;
                let len = self.integer()? as usize;
                self.expect(&Tok::RBracket)?;
                Ok(DataType::array(elem, len))
            }
            Tok::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                while self.peek() != &Tok::RBrace {
                    let name = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let ty = self.data_type()?;
                    fields.push((name, ty));
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(DataType::Record(fields))
            }
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }

    // -- qos (trailing attributes) ----------------------------------------

    fn qos(&mut self) -> Result<QosSpec, ParseError> {
        let mut qos = QosSpec::best_effort();
        loop {
            if self.eat_kw("latency") {
                qos.max_latency = Some(self.duration()?);
            } else if self.eat_kw("jitter") {
                qos.max_jitter = Some(self.duration()?);
            } else if self.eat_kw("bandwidth") {
                qos.min_bandwidth = Some(self.integer()?);
            } else if self.eat_kw("critical") {
                qos.critical = true;
            } else {
                break;
            }
        }
        Ok(qos)
    }

    // -- hardware ----------------------------------------------------------

    fn hardware(&mut self) -> Result<HwTopology, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut topo = HwTopology::new();
        while self.peek() != &Tok::RBrace {
            if self.eat_kw("ecu") {
                let ecu = self.ecu()?;
                topo.add_ecu(ecu).map_err(|e| self.err(e.to_string()))?;
            } else if self.eat_kw("bus") {
                let bus = self.bus()?;
                topo.add_bus(bus).map_err(|e| self.err(e.to_string()))?;
            } else {
                return Err(self.err(format!("expected `ecu` or `bus`, found {}", self.peek())));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(topo)
    }

    fn ecu(&mut self) -> Result<EcuSpec, ParseError> {
        let name = self.string()?;
        self.expect(&Tok::LBrace)?;
        self.expect_kw("id")?;
        let id = EcuId(self.integer()? as u16);
        let mut builder = EcuSpec::builder(id, name);
        let mut cpu: Option<(u32, u8, u32)> = None;
        while self.peek() != &Tok::RBrace {
            if self.eat_kw("class") {
                let class = match self.ident()?.as_str() {
                    "low" => EcuClass::LowEnd,
                    "domain" => EcuClass::Domain,
                    "high" => EcuClass::HighPerformance,
                    other => return Err(self.err(format!("unknown ECU class `{other}`"))),
                };
                builder = builder.class(class);
            } else if self.eat_kw("ram") {
                builder = builder.ram_kib(self.integer()? as u32);
            } else if self.eat_kw("mmu") {
                builder = builder.mmu(self.bool_value()?);
            } else if self.eat_kw("gpu") {
                builder = builder.gpu(self.bool_value()?);
            } else if self.eat_kw("cost") {
                builder = builder.cost(self.integer()? as u32);
            } else if self.eat_kw("crypto") {
                let c = match self.ident()?.as_str() {
                    "none" => CryptoSupport::None,
                    "software" => CryptoSupport::Software,
                    "accelerator" => CryptoSupport::Accelerator,
                    "hsm" => CryptoSupport::Hsm,
                    other => return Err(self.err(format!("unknown crypto tier `{other}`"))),
                };
                builder = builder.crypto(c);
            } else if self.eat_kw("cpu") {
                let freq = self.integer()? as u32;
                let cores = self.integer()? as u8;
                let mips = self.integer()? as u32;
                cpu = Some((freq, cores, mips));
            } else {
                return Err(self.err(format!("unknown ECU attribute {}", self.peek())));
            }
        }
        self.expect(&Tok::RBrace)?;
        if let Some((freq, cores, mips)) = cpu {
            builder = builder.cpu(CpuSpec::new(freq, cores, mips));
        }
        Ok(builder.build())
    }

    fn bool_value(&mut self) -> Result<bool, ParseError> {
        match self.ident()?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(self.err(format!("expected true/false, found `{other}`"))),
        }
    }

    fn bus(&mut self) -> Result<BusSpec, ParseError> {
        let name = self.string()?;
        self.expect(&Tok::LBrace)?;
        self.expect_kw("id")?;
        let id = BusId(self.integer()? as u16);
        let kind_name = self.ident()?;
        let bitrate = self.integer()?;
        let kind = match kind_name.as_str() {
            "can" => BusKind::Can { bitrate },
            "flexray" => BusKind::FlexRay { bitrate },
            "ethernet" => BusKind::Ethernet { bitrate },
            other => return Err(self.err(format!("unknown bus kind `{other}`"))),
        };
        self.expect_kw("attach")?;
        self.expect(&Tok::LBracket)?;
        let mut attached = Vec::new();
        while self.peek() != &Tok::RBracket {
            attached.push(EcuId(self.integer()? as u16));
        }
        self.expect(&Tok::RBracket)?;
        self.expect(&Tok::RBrace)?;
        Ok(BusSpec::new(id, name, kind, attached))
    }

    // -- interfaces ----------------------------------------------------------

    fn interface(&mut self) -> Result<ServiceInterface, ParseError> {
        let name = self.string()?;
        self.expect(&Tok::LBrace)?;
        self.expect_kw("id")?;
        let id = ServiceId(self.integer()? as u16);
        self.expect_kw("owner")?;
        let owner = AppId(self.integer()? as u32);
        self.expect_kw("version")?;
        let version = self.integer()? as u8;
        let mut methods = Vec::new();
        let mut events = Vec::new();
        let mut streams = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.eat_kw("method") {
                let name = self.string()?;
                self.expect(&Tok::LBrace)?;
                self.expect_kw("id")?;
                let id = MethodId(self.integer()? as u16);
                self.expect_kw("request")?;
                let request = self.data_type()?;
                self.expect_kw("response")?;
                let response = self.data_type()?;
                let qos = self.qos()?;
                self.expect(&Tok::RBrace)?;
                methods.push(MethodDef {
                    id,
                    name,
                    request,
                    response,
                    qos,
                });
            } else if self.eat_kw("event") {
                let name = self.string()?;
                self.expect(&Tok::LBrace)?;
                self.expect_kw("id")?;
                let id = EventGroupId(self.integer()? as u16);
                self.expect_kw("payload")?;
                let payload = self.data_type()?;
                let qos = self.qos()?;
                self.expect(&Tok::RBrace)?;
                events.push(EventDef {
                    id,
                    name,
                    payload,
                    qos,
                });
            } else if self.eat_kw("stream") {
                let name = self.string()?;
                self.expect(&Tok::LBrace)?;
                self.expect_kw("id")?;
                let id = EventGroupId(self.integer()? as u16);
                self.expect_kw("frame")?;
                let frame = self.data_type()?;
                let qos = self.qos()?;
                self.expect(&Tok::RBrace)?;
                streams.push(StreamDef {
                    id,
                    name,
                    frame,
                    qos,
                });
            } else {
                return Err(self.err(format!(
                    "expected `method`/`event`/`stream`, found {}",
                    self.peek()
                )));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(ServiceInterface {
            id,
            name,
            owner,
            version,
            methods,
            events,
            streams,
        })
    }

    // -- applications ----------------------------------------------------------

    fn application(&mut self) -> Result<AppModel, ParseError> {
        let name = self.string()?;
        self.expect(&Tok::LBrace)?;
        self.expect_kw("id")?;
        let id = AppId(self.integer()? as u32);
        let kind = match self.ident()?.as_str() {
            "deterministic" => AppKind::Deterministic,
            "non-deterministic" => AppKind::NonDeterministic,
            other => return Err(self.err(format!("unknown app kind `{other}`"))),
        };
        self.expect_kw("asil")?;
        let asil: Asil = self
            .ident()?
            .parse()
            .map_err(|e: dynplat_common::criticality::ParseAsilError| self.err(e.to_string()))?;
        let mut provides = Vec::new();
        let mut consumes = Vec::new();
        let mut period = SimDuration::from_millis(100);
        let mut work_mi = 1.0;
        let mut memory_kib = 64;
        let mut needs_gpu = false;
        while self.peek() != &Tok::RBrace {
            if self.eat_kw("provides") {
                self.expect(&Tok::LBracket)?;
                while self.peek() != &Tok::RBracket {
                    provides.push(ServiceId(self.integer()? as u16));
                }
                self.expect(&Tok::RBracket)?;
            } else if self.eat_kw("consumes") {
                self.expect(&Tok::LBracket)?;
                while self.peek() != &Tok::RBracket {
                    let service = ServiceId(self.integer()? as u16);
                    let kind = match self.ident()?.as_str() {
                        "event" => PortKind::Event(EventGroupId(self.integer()? as u16)),
                        "method" => PortKind::Method(MethodId(self.integer()? as u16)),
                        "stream" => PortKind::Stream(EventGroupId(self.integer()? as u16)),
                        other => return Err(self.err(format!("unknown port kind `{other}`"))),
                    };
                    consumes.push(ConsumedPort { service, kind });
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    }
                }
                self.expect(&Tok::RBracket)?;
            } else if self.eat_kw("period") {
                period = self.duration()?;
            } else if self.eat_kw("work") {
                work_mi = self.number()?;
            } else if self.eat_kw("memory") {
                memory_kib = self.integer()? as u32;
            } else if self.eat_kw("gpu") {
                needs_gpu = true;
            } else {
                return Err(self.err(format!("unknown application attribute {}", self.peek())));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(AppModel {
            id,
            name,
            kind,
            asil,
            provides,
            consumes,
            period,
            work_mi,
            memory_kib,
            needs_gpu,
        })
    }

    // -- deployment ----------------------------------------------------------

    fn deployment(&mut self) -> Result<Deployment, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut deployment = Deployment::default();
        while self.peek() != &Tok::RBrace {
            self.expect_kw("app")?;
            let app = AppId(self.integer()? as u32);
            self.expect_kw("on")?;
            let choice = if self.eat_kw("any") {
                self.expect(&Tok::LBracket)?;
                let mut list = Vec::new();
                while self.peek() != &Tok::RBracket {
                    list.push(EcuId(self.integer()? as u16));
                }
                self.expect(&Tok::RBracket)?;
                MappingChoice::AnyOf(list)
            } else {
                MappingChoice::Fixed(EcuId(self.integer()? as u16))
            };
            deployment.mapping.insert(app, choice);
            if self.eat_kw("replicas") {
                let n = self.integer()? as u8;
                if n == 0 {
                    return Err(self.err("replica count must be at least 1"));
                }
                deployment.replicas.insert(app, n);
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(deployment)
    }

    fn system(&mut self) -> Result<SystemModel, ParseError> {
        self.expect_kw("system")?;
        self.expect(&Tok::LBrace)?;
        let mut model = SystemModel::default();
        while self.peek() != &Tok::RBrace {
            if self.eat_kw("hardware") {
                model.hardware = self.hardware()?;
            } else if self.eat_kw("interface") {
                let iface = self.interface()?;
                model.interfaces.push(iface);
            } else if self.eat_kw("application") {
                let app = self.application()?;
                model.applications.push(app);
            } else if self.eat_kw("deployment") {
                model.deployment = self.deployment()?;
            } else {
                return Err(self.err(format!("unexpected top-level item {}", self.peek())));
            }
        }
        self.expect(&Tok::RBrace)?;
        if self.peek() != &Tok::Eof {
            return Err(self.err(format!("trailing input: {}", self.peek())));
        }
        Ok(model)
    }
}

/// Parses a complete system model from DSL text.
///
/// # Errors
///
/// Returns a [`ParseError`] with line information on malformed input.
pub fn parse_model(input: &str) -> Result<SystemModel, ParseError> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.system()
}

// -------------------------------------------------------------- printer --

fn print_type(ty: &DataType) -> String {
    // The `Display` impl of `DataType` already emits parseable syntax.
    ty.to_string()
}

fn print_duration(d: SimDuration) -> String {
    d.to_string() // SimDuration Display matches the lexer's unit syntax
}

fn print_qos(qos: &QosSpec) -> String {
    let mut out = String::new();
    if let Some(l) = qos.max_latency {
        out.push_str(&format!(" latency {}", print_duration(l)));
    }
    if let Some(j) = qos.max_jitter {
        out.push_str(&format!(" jitter {}", print_duration(j)));
    }
    if let Some(b) = qos.min_bandwidth {
        out.push_str(&format!(" bandwidth {b}"));
    }
    if qos.critical {
        out.push_str(" critical");
    }
    out
}

/// Pretty-prints a model in the DSL syntax accepted by [`parse_model`].
pub fn print_model(model: &SystemModel) -> String {
    let mut s = String::from("system {\n");
    s.push_str("  hardware {\n");
    for ecu in model.hardware.ecus() {
        let cpu = ecu.cpu();
        s.push_str(&format!(
            "    ecu \"{}\" {{ id {} cpu {} {} {} ram {} mmu {} crypto {} gpu {} cost {} }}\n",
            ecu.name(),
            ecu.id().raw(),
            cpu.freq_mhz,
            cpu.cores,
            cpu.mips,
            ecu.ram_kib(),
            ecu.has_mmu(),
            ecu.crypto(),
            ecu.has_gpu(),
            ecu.cost(),
        ));
    }
    for bus in model.hardware.buses() {
        let kind = match bus.kind {
            BusKind::Can { bitrate } => format!("can {bitrate}"),
            BusKind::FlexRay { bitrate } => format!("flexray {bitrate}"),
            BusKind::Ethernet { bitrate } => format!("ethernet {bitrate}"),
        };
        let attach: Vec<String> = bus.attached.iter().map(|e| e.raw().to_string()).collect();
        s.push_str(&format!(
            "    bus \"{}\" {{ id {} {} attach [{}] }}\n",
            bus.name,
            bus.id.raw(),
            kind,
            attach.join(" ")
        ));
    }
    s.push_str("  }\n");
    for iface in &model.interfaces {
        s.push_str(&format!(
            "  interface \"{}\" {{\n    id {} owner {} version {}\n",
            iface.name,
            iface.id.raw(),
            iface.owner.raw(),
            iface.version
        ));
        for m in &iface.methods {
            s.push_str(&format!(
                "    method \"{}\" {{ id {} request {} response {}{} }}\n",
                m.name,
                m.id.raw(),
                print_type(&m.request),
                print_type(&m.response),
                print_qos(&m.qos)
            ));
        }
        for e in &iface.events {
            s.push_str(&format!(
                "    event \"{}\" {{ id {} payload {}{} }}\n",
                e.name,
                e.id.raw(),
                print_type(&e.payload),
                print_qos(&e.qos)
            ));
        }
        for st in &iface.streams {
            s.push_str(&format!(
                "    stream \"{}\" {{ id {} frame {}{} }}\n",
                st.name,
                st.id.raw(),
                print_type(&st.frame),
                print_qos(&st.qos)
            ));
        }
        s.push_str("  }\n");
    }
    for app in &model.applications {
        let kind = match app.kind {
            AppKind::Deterministic => "deterministic",
            AppKind::NonDeterministic => "non-deterministic",
        };
        s.push_str(&format!(
            "  application \"{}\" {{\n    id {} {} asil {}\n",
            app.name,
            app.id.raw(),
            kind,
            app.asil
        ));
        if !app.provides.is_empty() {
            let p: Vec<String> = app.provides.iter().map(|x| x.raw().to_string()).collect();
            s.push_str(&format!("    provides [{}]\n", p.join(" ")));
        }
        if !app.consumes.is_empty() {
            let c: Vec<String> = app
                .consumes
                .iter()
                .map(|p| {
                    let (kw, id) = match p.kind {
                        PortKind::Event(e) => ("event", u64::from(e.raw())),
                        PortKind::Method(m) => ("method", u64::from(m.raw())),
                        PortKind::Stream(st) => ("stream", u64::from(st.raw())),
                    };
                    format!("{} {} {}", p.service.raw(), kw, id)
                })
                .collect();
            s.push_str(&format!("    consumes [{}]\n", c.join(", ")));
        }
        s.push_str(&format!(
            "    period {} work {} memory {}{}\n  }}\n",
            print_duration(app.period),
            app.work_mi,
            app.memory_kib,
            if app.needs_gpu { " gpu" } else { "" }
        ));
    }
    s.push_str("  deployment {\n");
    for (app, choice) in &model.deployment.mapping {
        let replicas = model.deployment.replicas_of(*app);
        let suffix = if replicas > 1 {
            format!(" replicas {replicas}")
        } else {
            String::new()
        };
        match choice {
            MappingChoice::Fixed(e) => {
                s.push_str(&format!("    app {} on {}{}\n", app.raw(), e.raw(), suffix));
            }
            MappingChoice::AnyOf(list) => {
                let l: Vec<String> = list.iter().map(|e| e.raw().to_string()).collect();
                s.push_str(&format!(
                    "    app {} on any [{}]{}\n",
                    app.raw(),
                    l.join(" "),
                    suffix
                ));
            }
        }
    }
    s.push_str("  }\n}\n");
    s
}

/// The ASIL token must print in a form the parser reads back; `Display` of
/// [`Asil`] emits `ASIL-C` which the lexer reads as one identifier.
#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
# demo vehicle
system {
  hardware {
    ecu "body"    { id 0 class low }
    ecu "gateway" { id 1 class domain ram 32768 }
    ecu "adas"    { id 2 class high }
    bus "can0" { id 0 can 500000 attach [0 1] }
    bus "eth0" { id 1 ethernet 100000000 attach [1 2] }
  }
  interface "speed" {
    id 10 owner 1 version 1
    event "speed" { id 1 payload {speed_kmh: f64, ticks: [u32; 4]} latency 10ms critical }
    method "set_limit" { id 2 request {limit: u32} response bool latency 20ms }
    stream "video" { id 3 frame blob bandwidth 2000000 }
  }
  application "ctrl" {
    id 1 deterministic asil C
    provides [10]
    period 10ms work 2.5 memory 512
  }
  application "hmi" {
    id 2 non-deterministic asil QM
    consumes [10 event 1, 10 stream 3]
    period 50ms work 1 memory 1024 gpu
  }
  deployment {
    app 1 on 1
    app 2 on any [1 2]
  }
}
"#;

    #[test]
    fn parses_demo() {
        let model = parse_model(DEMO).unwrap();
        assert_eq!(model.hardware.ecu_count(), 3);
        assert_eq!(model.interfaces.len(), 1);
        assert_eq!(model.applications.len(), 2);
        let iface = &model.interfaces[0];
        assert_eq!(iface.owner, AppId(1));
        assert_eq!(iface.methods.len(), 1);
        assert_eq!(iface.events.len(), 1);
        assert_eq!(iface.streams.len(), 1);
        assert!(iface.events[0].qos.critical);
        assert_eq!(
            iface.events[0].qos.max_latency,
            Some(SimDuration::from_millis(10))
        );
        let hmi = model.application(AppId(2)).unwrap();
        assert_eq!(hmi.consumes.len(), 2);
        assert!(hmi.needs_gpu);
        assert_eq!(model.deployment.variant_count(), 2);
    }

    #[test]
    fn roundtrip_print_parse() {
        let model = parse_model(DEMO).unwrap();
        let printed = print_model(&model);
        let reparsed =
            parse_model(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, model);
    }

    #[test]
    fn record_and_enum_types_roundtrip() {
        let src = r#"
system {
  hardware { ecu "a" { id 0 class low } }
  interface "i" {
    id 1 owner 1 version 1
    event "e" { id 1 payload {mode: enum(off|eco|sport), data: [f64; 2]} }
  }
  application "p" { id 1 deterministic asil D provides [1] period 5ms work 1 memory 64 }
  deployment { app 1 on 0 }
}
"#;
        let model = parse_model(src).unwrap();
        let ty = &model.interfaces[0].events[0].payload;
        assert_eq!(
            *ty,
            DataType::record([
                ("mode", DataType::enumeration(["off", "eco", "sport"])),
                ("data", DataType::array(DataType::F64, 2)),
            ])
        );
        let printed = print_model(&model);
        assert_eq!(parse_model(&printed).unwrap(), model);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "system {\n  hardware {\n    ecu \"a\" { id 0 klass low }\n  }\n}";
        let err = parse_model(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("klass"));
    }

    #[test]
    fn unterminated_string_is_rejected() {
        let err = parse_model("system { hardware { ecu \"a { id 0 } } }").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn duration_requires_unit() {
        let src = r#"
system {
  hardware { ecu "a" { id 0 class low } }
  application "p" { id 1 deterministic asil A period 10 work 1 memory 64 }
  deployment { app 1 on 0 }
}
"#;
        let err = parse_model(src).unwrap_err();
        assert!(err.message.contains("unit"), "got: {err}");
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let src = "# header\nsystem { # inline\n hardware { } deployment { } }";
        let model = parse_model(src).unwrap();
        assert_eq!(model.hardware.ecu_count(), 0);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse_model("system { hardware { } } extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn cpu_override_roundtrips() {
        let src = r#"
system {
  hardware { ecu "x" { id 0 class low cpu 400 2 800 } }
  deployment { }
}
"#;
        let model = parse_model(src).unwrap();
        let ecu = model.hardware.ecu(EcuId(0)).unwrap();
        assert_eq!(ecu.cpu().freq_mhz, 400);
        assert_eq!(ecu.cpu().cores, 2);
        assert_eq!(ecu.cpu().mips, 800);
        let printed = print_model(&model);
        assert_eq!(parse_model(&printed).unwrap(), model);
    }
}
