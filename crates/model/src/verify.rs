//! The verification engine attached to the modeling approach (§2.2):
//! "An attached verification engine should ensure that the interconnections
//! and deployment mappings fulfill the defined requirements."
//!
//! Checks run over one concrete mapping ([`verify`]) or over every variant
//! combination the deployment admits ([`verify_all_variants`], §2.3: "it
//! needs to be ensured that every possible mapping is functional, safe, and
//! secure").

use crate::ir::{AppModel, PortKind, SystemModel};
use dynplat_common::time::SimDuration;
use dynplat_common::TaskId;
use dynplat_common::{AppId, BusId, EcuId, ServiceId};
use dynplat_hw::BusKind;
use dynplat_net::can_frame_time;
use dynplat_net::ethernet::ethernet_frame_time;
use dynplat_sched::rta;
use dynplat_sched::task::{TaskSet, TaskSpec};
use std::collections::BTreeMap;
use std::fmt;

/// A single verification finding.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A reference points at a non-existent entity.
    DanglingReference {
        /// Where the reference occurs.
        context: String,
        /// What is missing.
        missing: String,
    },
    /// A service is provided by an app that does not own it, or not at all.
    OwnershipMismatch {
        /// The service in question.
        service: ServiceId,
        /// Detail.
        detail: String,
    },
    /// A consumer's ASIL exceeds its provider's ASIL (§3: "Only with
    /// correct safe dependencies can a software module be considered safe").
    AsilDependency {
        /// The consuming application.
        consumer: AppId,
        /// The providing application.
        provider: AppId,
    },
    /// Memory demand exceeds an ECU's RAM.
    MemoryOverflow {
        /// The overloaded ECU.
        ecu: EcuId,
        /// Demand in KiB.
        demand_kib: u64,
        /// Capacity in KiB.
        capacity_kib: u32,
    },
    /// Mixed applications on an MMU-less ECU (no freedom of interference
    /// in the memory dimension, §3.1).
    MissingMmuIsolation {
        /// The ECU without an MMU.
        ecu: EcuId,
    },
    /// The deterministic task set of an ECU fails schedulability analysis.
    Unschedulable {
        /// The overloaded ECU.
        ecu: EcuId,
        /// CPU utilization found.
        utilization: f64,
    },
    /// An app needs a GPU but its ECU has none.
    MissingGpu {
        /// The application.
        app: AppId,
        /// The GPU-less ECU.
        ecu: EcuId,
    },
    /// Stream bandwidth over a bus exceeds its bitrate.
    BandwidthOverflow {
        /// The saturated bus.
        bus: BusId,
        /// Demand in bit/s.
        demand: u64,
        /// Capacity in bit/s.
        capacity: u64,
    },
    /// A latency-bounded relation cannot meet its bound on the chosen route.
    LatencyInfeasible {
        /// Consumer application.
        consumer: AppId,
        /// Provider application.
        provider: AppId,
        /// Required bound.
        required: SimDuration,
        /// Estimated floor (transmission only, no queueing).
        estimated: SimDuration,
    },
    /// Consumer and provider are deployed with no network path.
    NoRoute {
        /// Consumer application.
        consumer: AppId,
        /// Provider application.
        provider: AppId,
    },
    /// An app's deployment choice references no candidate ECUs.
    EmptyMapping {
        /// The unmappable application.
        app: AppId,
    },
    /// A fail-operational app (§3.3) demands more replicas than the
    /// deployment offers feasible, distinct candidate ECUs for.
    InsufficientReplicaCandidates {
        /// The redundant application.
        app: AppId,
        /// Replicas required.
        required: u8,
        /// Feasible distinct candidates found.
        feasible: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DanglingReference { context, missing } => {
                write!(f, "{context}: dangling reference to {missing}")
            }
            Violation::OwnershipMismatch { service, detail } => {
                write!(f, "ownership of {service}: {detail}")
            }
            Violation::AsilDependency { consumer, provider } => {
                write!(f, "{consumer} depends on lower-ASIL provider {provider}")
            }
            Violation::MemoryOverflow { ecu, demand_kib, capacity_kib } => {
                write!(f, "{ecu}: memory demand {demand_kib} KiB > {capacity_kib} KiB")
            }
            Violation::MissingMmuIsolation { ecu } => {
                write!(f, "{ecu}: multiple apps but no MMU for memory isolation")
            }
            Violation::Unschedulable { ecu, utilization } => {
                write!(f, "{ecu}: deterministic task set unschedulable (U = {utilization:.2})")
            }
            Violation::MissingGpu { app, ecu } => {
                write!(f, "{app} needs a GPU but {ecu} has none")
            }
            Violation::BandwidthOverflow { bus, demand, capacity } => {
                write!(f, "{bus}: stream demand {demand} bit/s > {capacity} bit/s")
            }
            Violation::LatencyInfeasible { consumer, provider, required, estimated } => {
                write!(
                    f,
                    "{consumer}->{provider}: latency bound {required} below transmission floor {estimated}"
                )
            }
            Violation::NoRoute { consumer, provider } => {
                write!(f, "no network route between {consumer} and {provider}")
            }
            Violation::EmptyMapping { app } => write!(f, "{app} has no candidate ECUs"),
            Violation::InsufficientReplicaCandidates { app, required, feasible } => write!(
                f,
                "{app} requires {required} replicas but only {feasible} feasible candidate ECUs exist"
            ),
        }
    }
}

fn check_references(model: &SystemModel, out: &mut Vec<Violation>) {
    for iface in &model.interfaces {
        if model.application(iface.owner).is_none() {
            out.push(Violation::DanglingReference {
                context: format!("interface {}", iface.name),
                missing: format!("owner {}", iface.owner),
            });
        }
    }
    for app in &model.applications {
        for service in &app.provides {
            match model.interface(*service) {
                None => out.push(Violation::DanglingReference {
                    context: format!("application {}", app.name),
                    missing: format!("provided {service}"),
                }),
                Some(iface) if iface.owner != app.id => out.push(Violation::OwnershipMismatch {
                    service: *service,
                    detail: format!("provided by {} but owned by {}", app.id, iface.owner),
                }),
                Some(_) => {}
            }
        }
        for port in &app.consumes {
            let Some(iface) = model.interface(port.service) else {
                out.push(Violation::DanglingReference {
                    context: format!("application {}", app.name),
                    missing: format!("consumed {}", port.service),
                });
                continue;
            };
            let exists = match port.kind {
                PortKind::Event(e) => iface.event(e).is_some(),
                PortKind::Method(m) => iface.method(m).is_some(),
                PortKind::Stream(s) => iface.stream(s).is_some(),
            };
            if !exists {
                out.push(Violation::DanglingReference {
                    context: format!("application {}", app.name),
                    missing: format!("{:?} on {}", port.kind, port.service),
                });
            }
        }
    }
    // Every owned service should actually be provided by its owner.
    for iface in &model.interfaces {
        if let Some(owner) = model.application(iface.owner) {
            if !owner.provides.contains(&iface.id) {
                out.push(Violation::OwnershipMismatch {
                    service: iface.id,
                    detail: format!("owner {} does not list it in provides", owner.id),
                });
            }
        }
    }
    for (app, choice) in &model.deployment.mapping {
        if model.application(*app).is_none() {
            out.push(Violation::DanglingReference {
                context: "deployment".into(),
                missing: format!("application {app}"),
            });
        }
        if choice.candidates().is_empty() {
            out.push(Violation::EmptyMapping { app: *app });
        }
        for ecu in choice.candidates() {
            if model.hardware.ecu(*ecu).is_none() {
                out.push(Violation::DanglingReference {
                    context: format!("deployment of {app}"),
                    missing: format!("{ecu}"),
                });
            }
        }
    }
}

fn check_asil(model: &SystemModel, out: &mut Vec<Violation>) {
    for app in &model.applications {
        for port in &app.consumes {
            if let Some(provider) = model.provider_of(port.service) {
                if !app.asil.may_depend_on(provider.asil) {
                    out.push(Violation::AsilDependency {
                        consumer: app.id,
                        provider: provider.id,
                    });
                }
            }
        }
    }
}

fn apps_on<'a>(
    model: &'a SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
    ecu: EcuId,
) -> Vec<&'a AppModel> {
    assignment
        .iter()
        .filter(|(_, &e)| e == ecu)
        .filter_map(|(a, _)| model.application(*a))
        .collect()
}

fn check_resources(
    model: &SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
    out: &mut Vec<Violation>,
) {
    for ecu in model.hardware.ecus() {
        let apps = apps_on(model, assignment, ecu.id());
        if apps.is_empty() {
            continue;
        }
        let demand_kib: u64 = apps.iter().map(|a| u64::from(a.memory_kib)).sum();
        if demand_kib > u64::from(ecu.ram_kib()) {
            out.push(Violation::MemoryOverflow {
                ecu: ecu.id(),
                demand_kib,
                capacity_kib: ecu.ram_kib(),
            });
        }
        if apps.len() > 1 && !ecu.has_mmu() {
            out.push(Violation::MissingMmuIsolation { ecu: ecu.id() });
        }
        for app in &apps {
            if app.needs_gpu && !ecu.has_gpu() {
                out.push(Violation::MissingGpu {
                    app: app.id,
                    ecu: ecu.id(),
                });
            }
        }
        // Deterministic schedulability on this CPU.
        let det: TaskSet = apps
            .iter()
            .filter(|a| a.kind.is_deterministic())
            .map(|a| {
                let wcet = a.wcet_on(ecu.cpu()).max(SimDuration::from_nanos(1));
                let wcet = wcet.min(a.period); // guard: overload shows as U ≥ 1
                TaskSpec::periodic(TaskId(a.id.raw()), a.name.clone(), a.period, wcet)
            })
            .collect();
        if !det.is_empty() {
            let dm = rta::assign_deadline_monotonic(&det);
            let over = det.tasks().iter().any(|t| {
                model
                    .application(AppId(t.id.raw()))
                    .is_some_and(|a| a.wcet_on(ecu.cpu()) > a.period)
            });
            if over || !rta::is_schedulable(&dm) {
                out.push(Violation::Unschedulable {
                    ecu: ecu.id(),
                    utilization: if over {
                        f64::INFINITY
                    } else {
                        det.utilization()
                    },
                });
            }
        }
    }
}

fn check_communication(
    model: &SystemModel,
    assignment: &BTreeMap<AppId, EcuId>,
    out: &mut Vec<Violation>,
) {
    let mut bus_demand: BTreeMap<BusId, u64> = BTreeMap::new();
    for app in &model.applications {
        let Some(&consumer_ecu) = assignment.get(&app.id) else {
            continue;
        };
        for port in &app.consumes {
            let Some(provider) = model.provider_of(port.service) else {
                continue;
            };
            let Some(&provider_ecu) = assignment.get(&provider.id) else {
                continue;
            };
            let route = match model.hardware.route(provider_ecu, consumer_ecu) {
                Ok(r) => r,
                Err(_) => {
                    out.push(Violation::NoRoute {
                        consumer: app.id,
                        provider: provider.id,
                    });
                    continue;
                }
            };
            let iface = model
                .interface(port.service)
                .expect("checked by references");
            let (qos, size_hint) = match port.kind {
                PortKind::Event(e) => {
                    let Some(def) = iface.event(e) else { continue };
                    (def.qos, def.payload.encoded_size_bounds().1)
                }
                PortKind::Method(m) => {
                    let Some(def) = iface.method(m) else { continue };
                    (
                        def.qos,
                        def.request
                            .encoded_size_bounds()
                            .1
                            .max(def.response.encoded_size_bounds().1),
                    )
                }
                PortKind::Stream(s) => {
                    let Some(def) = iface.stream(s) else { continue };
                    (def.qos, def.frame.encoded_size_bounds().1)
                }
            };
            // Bandwidth accumulation for streams.
            if let Some(bw) = qos.min_bandwidth {
                for bus in &route.buses {
                    *bus_demand.entry(*bus).or_insert(0) += bw;
                }
            }
            // Latency floor: sum of pure transmission times along the route.
            if let Some(bound) = qos.max_latency {
                if !route.is_local() {
                    let mut floor = SimDuration::ZERO;
                    for bus_id in &route.buses {
                        let bus = model.hardware.bus(*bus_id).expect("route uses known buses");
                        floor += match bus.kind {
                            BusKind::Can { bitrate } => {
                                // ISO-TP style segmentation into 8-byte frames.
                                let frames = size_hint.div_ceil(8).max(1) as u64;
                                can_frame_time(8, bitrate) * frames
                            }
                            BusKind::Ethernet { bitrate } => {
                                ethernet_frame_time(size_hint.min(1500), bitrate)
                            }
                            BusKind::FlexRay { .. } => SimDuration::from_micros(50),
                        };
                    }
                    if floor > bound {
                        out.push(Violation::LatencyInfeasible {
                            consumer: app.id,
                            provider: provider.id,
                            required: bound,
                            estimated: floor,
                        });
                    }
                }
            }
        }
    }
    for (bus_id, demand) in bus_demand {
        let capacity = model
            .hardware
            .bus(bus_id)
            .map(|b| b.kind.bitrate())
            .unwrap_or(0);
        // Streams may use at most 75% of a segment, leaving headroom for
        // control traffic.
        if demand * 4 > capacity * 3 {
            out.push(Violation::BandwidthOverflow {
                bus: bus_id,
                demand,
                capacity,
            });
        }
    }
}

/// `true` if `ecu` could host `app` on its own (memory, CPU, GPU) — the
/// per-candidate feasibility used by replica planning.
fn candidate_feasible(model: &SystemModel, app: &AppModel, ecu: EcuId) -> bool {
    let Some(spec) = model.hardware.ecu(ecu) else {
        return false;
    };
    if app.memory_kib > spec.ram_kib() {
        return false;
    }
    if app.needs_gpu && !spec.has_gpu() {
        return false;
    }
    if app.kind.is_deterministic() && app.wcet_on(spec.cpu()) > app.period {
        return false;
    }
    true
}

/// Plans the replica placement of a fail-operational app: up to `required`
/// distinct, individually feasible candidate ECUs in candidate order.
/// Returns `None` when not enough feasible candidates exist.
pub fn plan_replicas(model: &SystemModel, app: AppId) -> Option<Vec<EcuId>> {
    let app_model = model.application(app)?;
    let required = usize::from(model.deployment.replicas_of(app));
    let choice = model.deployment.mapping.get(&app)?;
    let mut placement: Vec<EcuId> = Vec::new();
    for &ecu in choice.candidates() {
        if placement.contains(&ecu) {
            continue;
        }
        if candidate_feasible(model, app_model, ecu) {
            placement.push(ecu);
            if placement.len() == required {
                return Some(placement);
            }
        }
    }
    None
}

fn check_replicas(model: &SystemModel, out: &mut Vec<Violation>) {
    for (app, &required) in &model.deployment.replicas {
        if required <= 1 {
            continue;
        }
        let Some(app_model) = model.application(*app) else {
            continue; // dangling reference is reported elsewhere
        };
        let feasible = model
            .deployment
            .mapping
            .get(app)
            .map(|choice| {
                let mut distinct: Vec<EcuId> = choice.candidates().to_vec();
                distinct.sort();
                distinct.dedup();
                distinct
                    .into_iter()
                    .filter(|&e| candidate_feasible(model, app_model, e))
                    .count()
            })
            .unwrap_or(0);
        if feasible < usize::from(required) {
            out.push(Violation::InsufficientReplicaCandidates {
                app: *app,
                required,
                feasible,
            });
        }
    }
}

/// Verifies the model under one concrete app→ECU assignment.
pub fn verify(model: &SystemModel, assignment: &BTreeMap<AppId, EcuId>) -> Vec<Violation> {
    let mut out = Vec::new();
    check_references(model, &mut out);
    check_asil(model, &mut out);
    check_replicas(model, &mut out);
    check_resources(model, assignment, &mut out);
    check_communication(model, assignment, &mut out);
    out
}

/// Verifies every mapping variant the deployment admits (capped at
/// `variant_cap` combinations). Returns, per variant, the violations found;
/// an empty inner vector means that variant is clean.
pub fn verify_all_variants(
    model: &SystemModel,
    variant_cap: usize,
) -> Vec<(BTreeMap<AppId, EcuId>, Vec<Violation>)> {
    model
        .deployment
        .variants(variant_cap)
        .into_iter()
        .map(|assignment| {
            let violations = verify(model, &assignment);
            (assignment, violations)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_model;

    fn base_model() -> SystemModel {
        parse_model(
            r#"
system {
  hardware {
    ecu "body"    { id 0 class low }
    ecu "gateway" { id 1 class domain }
    ecu "adas"    { id 2 class high }
    bus "can0" { id 0 can 500000 attach [0 1] }
    bus "eth0" { id 1 ethernet 100000000 attach [1 2] }
  }
  interface "speed" {
    id 10 owner 1 version 1
    event "speed" { id 1 payload {v: f64} latency 10ms critical }
  }
  application "ctrl" { id 1 deterministic asil C provides [10] period 10ms work 2 memory 512 }
  application "hmi"  { id 2 non-deterministic asil QM consumes [10 event 1] period 50ms work 1 memory 1024 }
  deployment {
    app 1 on 1
    app 2 on 2
  }
}
"#,
        )
        .unwrap()
    }

    fn fixed_assignment(model: &SystemModel) -> BTreeMap<AppId, EcuId> {
        model.deployment.variants(1).pop().unwrap()
    }

    #[test]
    fn clean_model_verifies() {
        let model = base_model();
        let violations = verify(&model, &fixed_assignment(&model));
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn dangling_owner_detected() {
        let mut model = base_model();
        model.interfaces[0].owner = AppId(99);
        let v = verify(&model, &fixed_assignment(&model));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DanglingReference { .. })));
        // Ownership mismatch too: app1 provides a service it no longer owns.
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::OwnershipMismatch { .. })));
    }

    #[test]
    fn asil_inversion_detected() {
        let mut model = base_model();
        // Make the consumer ASIL-D while the provider stays C.
        model.applications[1].asil = dynplat_common::Asil::D;
        let v = verify(&model, &fixed_assignment(&model));
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::AsilDependency {
                consumer: AppId(2),
                provider: AppId(1)
            }
        )));
    }

    #[test]
    fn memory_overflow_detected() {
        let mut model = base_model();
        model.applications[0].memory_kib = 10 * 1024 * 1024; // 10 GiB
        let v = verify(&model, &fixed_assignment(&model));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MemoryOverflow { ecu: EcuId(1), .. })));
    }

    #[test]
    fn mmu_isolation_required_for_co_location() {
        let mut model = base_model();
        // Map both apps onto the MMU-less low-end ECU.
        model
            .deployment
            .mapping
            .insert(AppId(1), crate::ir::MappingChoice::Fixed(EcuId(0)));
        model
            .deployment
            .mapping
            .insert(AppId(2), crate::ir::MappingChoice::Fixed(EcuId(0)));
        let assignment = fixed_assignment(&model);
        let v = verify(&model, &assignment);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MissingMmuIsolation { ecu: EcuId(0) })));
    }

    #[test]
    fn overload_detected_on_slow_cpu() {
        let mut model = base_model();
        // 2 MI of work each 10 ms is fine on a domain ECU (1200 MIPS) but
        // hopeless at 500 MI.
        model.applications[0].work_mi = 500.0;
        let v = verify(&model, &fixed_assignment(&model));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Unschedulable { ecu: EcuId(1), .. })));
    }

    #[test]
    fn gpu_requirement_checked() {
        let mut model = base_model();
        model.applications[0].needs_gpu = true; // mapped on ecu1 (no GPU)
        let v = verify(&model, &fixed_assignment(&model));
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::MissingGpu {
                app: AppId(1),
                ecu: EcuId(1)
            }
        )));
    }

    #[test]
    fn bandwidth_overflow_detected() {
        let mut model = parse_model(
            r#"
system {
  hardware {
    ecu "a" { id 0 class domain }
    ecu "b" { id 1 class domain }
    bus "can0" { id 0 can 500000 attach [0 1] }
  }
  interface "cam" {
    id 10 owner 1 version 1
    stream "video" { id 1 frame blob bandwidth 2000000 }
  }
  application "p" { id 1 deterministic asil B provides [10] period 10ms work 1 memory 64 }
  application "c" { id 2 non-deterministic asil QM consumes [10 stream 1] period 50ms work 1 memory 64 }
  deployment { app 1 on 0  app 2 on 1 }
}
"#,
        )
        .unwrap();
        let v = verify(&model, &fixed_assignment(&model));
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::BandwidthOverflow { bus: BusId(0), .. })),
            "2 Mbit/s stream cannot cross a 500 kbit/s CAN: {v:?}"
        );
        // Moving to Ethernet resolves it.
        model.hardware = parse_model(
            r#"
system { hardware {
    ecu "a" { id 0 class domain }
    ecu "b" { id 1 class domain }
    bus "eth0" { id 0 ethernet 100000000 attach [0 1] }
} deployment { } }
"#,
        )
        .unwrap()
        .hardware;
        let v = verify(&model, &fixed_assignment(&model));
        assert!(!v
            .iter()
            .any(|x| matches!(x, Violation::BandwidthOverflow { .. })));
    }

    #[test]
    fn latency_floor_detected_on_can() {
        let mut model = base_model();
        // Demand 100 us latency for the event across CAN+Ethernet route by
        // moving consumer to ecu0 side: provider ecu1 -> consumer ecu0 via CAN.
        model
            .deployment
            .mapping
            .insert(AppId(2), crate::ir::MappingChoice::Fixed(EcuId(0)));
        model.interfaces[0].events[0].qos.max_latency = Some(SimDuration::from_micros(100));
        let v = verify(&model, &fixed_assignment(&model));
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::LatencyInfeasible { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn all_variants_classified() {
        let mut model = base_model();
        model.deployment.mapping.insert(
            AppId(2),
            crate::ir::MappingChoice::AnyOf(vec![EcuId(0), EcuId(2)]),
        );
        let results = verify_all_variants(&model, 16);
        assert_eq!(results.len(), 2);
        // Variant mapping hmi on the MMU-less body ECU with ctrl elsewhere
        // is fine memory-wise but 1024 KiB > 512 KiB RAM: violation.
        let bad = results
            .iter()
            .find(|(a, _)| a[&AppId(2)] == EcuId(0))
            .map(|(_, v)| v)
            .unwrap();
        assert!(!bad.is_empty());
        let good = results
            .iter()
            .find(|(a, _)| a[&AppId(2)] == EcuId(2))
            .map(|(_, v)| v)
            .unwrap();
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn replica_requirements_are_checked() {
        let mut model = parse_model(
            r#"
system {
  hardware {
    ecu "a" { id 0 class high }
    ecu "b" { id 1 class high }
    ecu "c" { id 2 class low }
    bus "e" { id 0 ethernet 100000000 attach [0 1 2] }
  }
  application "lane" { id 1 deterministic asil D period 20ms work 40 memory 65536 }
  deployment { app 1 on any [0 1 2] replicas 2 }
}
"#,
        )
        .unwrap();
        assert_eq!(model.deployment.replicas_of(AppId(1)), 2);
        let assignment = fixed_assignment(&model);
        assert!(
            verify(&model, &assignment).is_empty(),
            "two high ECUs suffice"
        );
        // Planner skips the infeasible low-end candidate.
        let plan = crate::verify::plan_replicas(&model, AppId(1)).unwrap();
        assert_eq!(plan, vec![EcuId(0), EcuId(1)]);

        // Demand three replicas: the low-end ECU cannot host the app
        // (memory + CPU), so only two feasible candidates exist.
        model.deployment.require_replicas(AppId(1), 3);
        let v = verify(&model, &assignment);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::InsufficientReplicaCandidates {
                    app: AppId(1),
                    required: 3,
                    feasible: 2
                }
            )),
            "{v:?}"
        );
        assert!(crate::verify::plan_replicas(&model, AppId(1)).is_none());
        // The DSL round-trips the replica requirement.
        let printed = crate::dsl::print_model(&model);
        assert!(printed.contains("replicas 3"));
        assert_eq!(parse_model(&printed).unwrap(), model);
    }

    #[test]
    fn violations_render_human_readably() {
        let v = Violation::MemoryOverflow {
            ecu: EcuId(1),
            demand_kib: 100,
            capacity_kib: 50,
        };
        assert!(v.to_string().contains("100 KiB"));
    }
}
