//! One platform node per ECU.
//!
//! A [`PlatformNode`] enforces local freedom of interference when hosting
//! applications: memory accounting against the ECU's RAM, process-group
//! isolation (§3.1 "Memory"), and CPU admission control for deterministic
//! applications (§3.1 "CPU"); non-deterministic apps bypass the RTA and are
//! expected to run inside the node's budget server.

use crate::app::{AppManifest, LifecycleState};
use crate::process::{ProcessError, ProcessManager};
use dynplat_common::{AppId, InstanceId, TaskId};
use dynplat_hw::EcuSpec;
use dynplat_monitor::{FaultRecorder, MonitorSpec, TaskMonitor};
use dynplat_sched::admission::{AdmissionController, AdmissionError};
use dynplat_sched::server::{PeriodicServer, ServerAnalysis};
use dynplat_sched::task::{TaskSet, TaskSpec};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by node-local operations.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeError {
    /// Instance id not hosted here.
    UnknownInstance(InstanceId),
    /// Illegal lifecycle transition.
    BadTransition {
        /// Current state.
        from: LifecycleState,
        /// Requested state.
        to: LifecycleState,
    },
    /// RAM exhausted.
    OutOfMemory {
        /// Requested KiB.
        requested: u32,
        /// Available KiB.
        available: u32,
    },
    /// The admission test rejected the app's task.
    AdmissionRejected {
        /// Reason from the controller.
        reason: String,
    },
    /// Internal admission bookkeeping error.
    Admission(AdmissionError),
    /// Process-group assignment failed.
    Process(ProcessError),
    /// App needs a GPU, the ECU has none.
    MissingGpu(AppId),
    /// The same app is already running here (use the updater instead).
    AlreadyHosted(AppId),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::UnknownInstance(i) => write!(f, "unknown instance {i}"),
            NodeError::BadTransition { from, to } => {
                write!(f, "illegal lifecycle transition {from} -> {to}")
            }
            NodeError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of memory: need {requested} KiB, {available} KiB free"
                )
            }
            NodeError::AdmissionRejected { reason } => write!(f, "admission rejected: {reason}"),
            NodeError::Admission(e) => write!(f, "admission bookkeeping: {e}"),
            NodeError::Process(e) => write!(f, "process isolation: {e}"),
            NodeError::MissingGpu(app) => write!(f, "{app} needs a GPU"),
            NodeError::AlreadyHosted(app) => write!(f, "{app} already hosted on this node"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<ProcessError> for NodeError {
    fn from(e: ProcessError) -> Self {
        NodeError::Process(e)
    }
}

impl From<AdmissionError> for NodeError {
    fn from(e: AdmissionError) -> Self {
        NodeError::Admission(e)
    }
}

/// A hosted application instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Manifest the instance was created from.
    pub manifest: AppManifest,
    /// Current lifecycle state.
    pub state: LifecycleState,
}

/// The platform runtime on one ECU.
#[derive(Debug)]
pub struct PlatformNode {
    ecu: EcuSpec,
    admission: AdmissionController,
    processes: ProcessManager,
    instances: BTreeMap<InstanceId, Instance>,
    monitors: BTreeMap<InstanceId, TaskMonitor>,
    faults: FaultRecorder,
    next_instance: u64,
    memory_used_kib: u32,
    nda_server: Option<PeriodicServer>,
}

impl PlatformNode {
    /// Creates a node on `ecu`.
    pub fn new(ecu: EcuSpec) -> Self {
        let processes = ProcessManager::new(ecu.has_mmu());
        // Seed the instance counter with the ECU id so instance ids are
        // unique across the whole platform (redundancy groups and update
        // orchestration key replicas by instance id).
        let next_instance = u64::from(ecu.id().raw()) << 32;
        PlatformNode {
            ecu,
            admission: AdmissionController::new(),
            processes,
            instances: BTreeMap::new(),
            monitors: BTreeMap::new(),
            faults: FaultRecorder::default(),
            next_instance,
            memory_used_kib: 0,
            nda_server: None,
        }
    }

    /// Configures a budget server for non-deterministic load (§3.1 / the
    /// compositional admission of the paper's reference \[6\]): the server's
    /// budget is reserved in the deterministic schedule as a host task, and
    /// NDA apps are admitted against the server's supply bound function
    /// instead of running unaccounted.
    ///
    /// # Errors
    ///
    /// [`NodeError::AdmissionRejected`] when the deterministic side cannot
    /// spare the server's budget.
    pub fn configure_nda_server(&mut self, server: PeriodicServer) -> Result<(), NodeError> {
        if self.nda_server.is_some() {
            return Err(NodeError::AdmissionRejected {
                reason: "an NDA server is already configured".to_owned(),
            });
        }
        let host_task = server.as_host_task(TaskId(u32::MAX), "nda-server");
        let decision = self.admission.try_admit(host_task)?;
        if !decision.admitted {
            return Err(NodeError::AdmissionRejected {
                reason: format!("no room for the NDA server budget: {}", decision.reason),
            });
        }
        self.nda_server = Some(server);
        Ok(())
    }

    /// The configured NDA server, if any.
    pub fn nda_server(&self) -> Option<PeriodicServer> {
        self.nda_server
    }

    /// The current NDA child task set (one task per serving NDA instance).
    fn nda_child_set(&self) -> TaskSet {
        self.instances
            .iter()
            .filter(|(_, i)| {
                !i.manifest.kind().is_deterministic()
                    && i.state != LifecycleState::Stopped
                    && i.state != LifecycleState::Failed
            })
            .map(|(id, i)| {
                let wcet = i
                    .manifest
                    .model
                    .wcet_on(self.ecu.cpu())
                    .max(dynplat_common::time::SimDuration::from_nanos(1))
                    .min(i.manifest.period());
                TaskSpec::periodic(
                    TaskId(id.raw() as u32),
                    i.manifest.model.name.clone(),
                    i.manifest.period(),
                    wcet,
                )
            })
            .collect()
    }

    /// The underlying ECU.
    pub fn ecu(&self) -> &EcuSpec {
        &self.ecu
    }

    /// Memory currently committed, KiB.
    pub fn memory_used_kib(&self) -> u32 {
        self.memory_used_kib
    }

    /// Free memory, KiB.
    pub fn memory_free_kib(&self) -> u32 {
        self.ecu.ram_kib().saturating_sub(self.memory_used_kib)
    }

    /// Admitted deterministic CPU utilization.
    pub fn utilization(&self) -> f64 {
        self.admission.admitted().utilization()
    }

    /// The node's fault recorder.
    pub fn faults(&self) -> &FaultRecorder {
        &self.faults
    }

    /// Mutable access to the fault recorder (monitor feeding).
    pub fn faults_mut(&mut self) -> &mut FaultRecorder {
        &mut self.faults
    }

    /// All hosted instances.
    pub fn instances(&self) -> impl Iterator<Item = (InstanceId, &Instance)> {
        self.instances.iter().map(|(k, v)| (*k, v))
    }

    /// Looks up an instance.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// Serving instances of one application (normally one; two during a
    /// staged update).
    pub fn serving_instances_of(&self, app: AppId) -> Vec<InstanceId> {
        self.instances
            .iter()
            .filter(|(_, i)| i.manifest.id() == app && i.state.is_serving())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Whether `app` is hosted here in any non-stopped state.
    pub fn hosts(&self, app: AppId) -> bool {
        self.instances
            .values()
            .any(|i| i.manifest.id() == app && i.state != LifecycleState::Stopped)
    }

    /// Monitor of an instance.
    pub fn monitor(&self, id: InstanceId) -> Option<&TaskMonitor> {
        self.monitors.get(&id)
    }

    /// Mutable monitor of an instance.
    pub fn monitor_mut(&mut self, id: InstanceId) -> Option<&mut TaskMonitor> {
        self.monitors.get_mut(&id)
    }

    /// Installs `manifest` as a new instance in [`LifecycleState::Installed`].
    ///
    /// Runs all freedom-of-interference gates: memory, GPU, process group
    /// and — for deterministic apps — CPU admission (§3.1).
    ///
    /// Set `allow_second_instance` during staged updates and for redundancy
    /// groups; otherwise a second instance of a hosted app is refused.
    ///
    /// # Errors
    ///
    /// Any [`NodeError`] gate failure; the node state is unchanged on error.
    pub fn install(
        &mut self,
        manifest: AppManifest,
        allow_second_instance: bool,
    ) -> Result<InstanceId, NodeError> {
        if !allow_second_instance && self.hosts(manifest.id()) {
            return Err(NodeError::AlreadyHosted(manifest.id()));
        }
        if manifest.memory_kib() > self.memory_free_kib() {
            return Err(NodeError::OutOfMemory {
                requested: manifest.memory_kib(),
                available: self.memory_free_kib(),
            });
        }
        if manifest.model.needs_gpu && !self.ecu.has_gpu() {
            return Err(NodeError::MissingGpu(manifest.id()));
        }
        let instance = InstanceId(self.next_instance);
        // Task admission first (it can fail legitimately), then process
        // group (roll back admission on failure).
        let wcet = manifest
            .model
            .wcet_on(self.ecu.cpu())
            .max(dynplat_common::time::SimDuration::from_nanos(1));
        if wcet > manifest.period() {
            return Err(NodeError::AdmissionRejected {
                reason: format!(
                    "WCET {wcet} exceeds period {} on this CPU",
                    manifest.period()
                ),
            });
        }
        if manifest.kind().is_deterministic() {
            let task = TaskSpec::periodic(
                TaskId(instance.raw() as u32),
                manifest.model.name.clone(),
                manifest.period(),
                wcet,
            );
            let decision = self.admission.try_admit(task)?;
            if !decision.admitted {
                return Err(NodeError::AdmissionRejected {
                    reason: decision.reason,
                });
            }
        } else if let Some(server) = self.nda_server {
            // Compositional NDA admission: current NDA children + the new
            // task must fit the server's supply bound.
            let mut child = self.nda_child_set();
            child.push(TaskSpec::periodic(
                TaskId(instance.raw() as u32),
                manifest.model.name.clone(),
                manifest.period(),
                wcet,
            ));
            if !ServerAnalysis::new(server).admits(&child) {
                return Err(NodeError::AdmissionRejected {
                    reason: format!(
                        "NDA server ({} / {}) cannot supply the child set",
                        server.budget, server.period
                    ),
                });
            }
        }
        match self.processes.assign(manifest.id(), manifest.asil()) {
            Ok(_) => {}
            Err(ProcessError::AlreadyAssigned(_)) if allow_second_instance => {
                // Second instance of the same app shares the process group.
            }
            Err(e) => {
                if manifest.kind().is_deterministic() {
                    let _ = self.admission.release(TaskId(instance.raw() as u32));
                }
                return Err(e.into());
            }
        }
        self.next_instance += 1;
        self.memory_used_kib += manifest.memory_kib();
        let spec = MonitorSpec::new(
            TaskId(instance.raw() as u32),
            manifest.period(),
            manifest.period(), // implicit deadline
            u64::from(manifest.memory_kib()) * 1024,
        );
        self.monitors.insert(instance, TaskMonitor::new(spec));
        self.instances.insert(
            instance,
            Instance {
                manifest,
                state: LifecycleState::Installed,
            },
        );
        Ok(instance)
    }

    /// Transitions an instance's lifecycle state.
    ///
    /// # Errors
    ///
    /// [`NodeError::UnknownInstance`] or [`NodeError::BadTransition`].
    pub fn transition(&mut self, id: InstanceId, to: LifecycleState) -> Result<(), NodeError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(NodeError::UnknownInstance(id))?;
        if !inst.state.can_transition_to(to) {
            return Err(NodeError::BadTransition {
                from: inst.state,
                to,
            });
        }
        inst.state = to;
        if to == LifecycleState::Stopped {
            let manifest = inst.manifest.clone();
            self.memory_used_kib -= manifest.memory_kib();
            if manifest.kind().is_deterministic() {
                let _ = self.admission.release(TaskId(id.raw() as u32));
            }
            // Release the process group only when no other live instance of
            // the app remains.
            let others = self.instances.iter().any(|(other, i)| {
                *other != id
                    && i.manifest.id() == manifest.id()
                    && i.state != LifecycleState::Stopped
            });
            if !others {
                self.processes.release(manifest.id());
            }
            self.monitors.remove(&id);
        }
        Ok(())
    }

    /// Convenience: install → starting → running in one call.
    ///
    /// # Errors
    ///
    /// Forwards [`PlatformNode::install`]/[`PlatformNode::transition`] errors.
    pub fn launch(&mut self, manifest: AppManifest) -> Result<InstanceId, NodeError> {
        let id = self.install(manifest, false)?;
        self.transition(id, LifecycleState::Starting)?;
        self.transition(id, LifecycleState::Running)?;
        Ok(id)
    }

    /// The process manager (isolation queries).
    pub fn processes(&self) -> &ProcessManager {
        &self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppManifest;
    use dynplat_common::time::SimDuration;
    use dynplat_common::{AppKind, Asil, EcuId};
    use dynplat_hw::ecu::EcuClass;
    use dynplat_model::ir::AppModel;
    use dynplat_security::package::Version;

    fn manifest(id: u32, work_mi: f64, mem_kib: u32) -> AppManifest {
        AppManifest::new(
            AppModel {
                id: AppId(id),
                name: format!("app{id}"),
                kind: AppKind::Deterministic,
                asil: Asil::B,
                provides: vec![],
                consumes: vec![],
                period: SimDuration::from_millis(10),
                work_mi,
                memory_kib: mem_kib,
                needs_gpu: false,
            },
            Version::new(1, 0, 0),
            [0; 32],
        )
    }

    fn domain_node() -> PlatformNode {
        PlatformNode::new(EcuSpec::of_class(EcuId(1), "node", EcuClass::Domain))
    }

    #[test]
    fn launch_reaches_running() {
        let mut node = domain_node();
        let id = node.launch(manifest(1, 1.0, 256)).unwrap();
        assert_eq!(node.instance(id).unwrap().state, LifecycleState::Running);
        assert_eq!(node.memory_used_kib(), 256);
        assert!(node.utilization() > 0.0);
        assert!(node.hosts(AppId(1)));
        assert_eq!(node.serving_instances_of(AppId(1)), vec![id]);
        assert!(node.monitor(id).is_some());
    }

    #[test]
    fn memory_gate() {
        let mut node = domain_node();
        let big = manifest(1, 1.0, node.ecu().ram_kib() + 1);
        assert!(matches!(
            node.install(big, false),
            Err(NodeError::OutOfMemory { .. })
        ));
        assert_eq!(node.memory_used_kib(), 0);
    }

    #[test]
    fn cpu_admission_gate() {
        let mut node = domain_node();
        // Domain ECU: 1200 MIPS. 6 MI per 10 ms = 50% each; third fails RTA.
        node.launch(manifest(1, 6.0, 64)).unwrap();
        node.launch(manifest(2, 6.0, 64)).unwrap();
        let err = node.launch(manifest(3, 6.0, 64)).unwrap_err();
        assert!(matches!(err, NodeError::AdmissionRejected { .. }));
        // Failed install must not leak memory or process groups.
        assert_eq!(node.memory_used_kib(), 128);
        assert!(!node.hosts(AppId(3)));
    }

    #[test]
    fn wcet_beyond_period_rejected_on_slow_cpu() {
        let mut node = PlatformNode::new(EcuSpec::of_class(EcuId(0), "weak", EcuClass::LowEnd));
        // 160 MIPS * 10 ms = 1.6 MI budget; ask for 5 MI.
        let err = node.launch(manifest(1, 5.0, 64)).unwrap_err();
        assert!(matches!(err, NodeError::AdmissionRejected { .. }));
    }

    #[test]
    fn duplicate_app_needs_explicit_second_instance() {
        let mut node = domain_node();
        node.launch(manifest(1, 1.0, 64)).unwrap();
        assert!(matches!(
            node.install(manifest(1, 1.0, 64), false),
            Err(NodeError::AlreadyHosted(_))
        ));
        // Staged updates pass allow_second_instance = true.
        let second = node.install(manifest(1, 1.0, 64), true).unwrap();
        assert_eq!(
            node.instance(second).unwrap().state,
            LifecycleState::Installed
        );
    }

    #[test]
    fn stop_releases_resources() {
        let mut node = domain_node();
        let id = node.launch(manifest(1, 6.0, 256)).unwrap();
        let u = node.utilization();
        node.transition(id, LifecycleState::Stopping).unwrap();
        node.transition(id, LifecycleState::Stopped).unwrap();
        assert_eq!(node.memory_used_kib(), 0);
        assert!(node.utilization() < u);
        assert!(!node.hosts(AppId(1)));
        assert!(node.monitor(id).is_none());
        // Capacity is reusable.
        node.launch(manifest(2, 6.0, 256)).unwrap();
    }

    #[test]
    fn illegal_transition_reported() {
        let mut node = domain_node();
        let id = node.install(manifest(1, 1.0, 64), false).unwrap();
        let err = node.transition(id, LifecycleState::Running).unwrap_err();
        assert!(matches!(err, NodeError::BadTransition { .. }));
        assert!(matches!(
            node.transition(InstanceId(99), LifecycleState::Starting),
            Err(NodeError::UnknownInstance(_))
        ));
    }

    #[test]
    fn gpu_gate() {
        let mut node = domain_node(); // Domain class has no GPU
        let mut m = manifest(1, 1.0, 64);
        m.model.needs_gpu = true;
        assert!(matches!(
            node.install(m, false),
            Err(NodeError::MissingGpu(_))
        ));
    }

    #[test]
    fn nda_server_reserves_budget_and_gates_nda_admission() {
        use dynplat_sched::server::PeriodicServer;
        let mut node = domain_node();
        // Reserve 40% of the CPU for NDA work: 4 ms per 10 ms.
        let server = PeriodicServer::new(SimDuration::from_millis(4), SimDuration::from_millis(10));
        node.configure_nda_server(server).unwrap();
        assert!(node.nda_server().is_some());
        assert!(
            (node.utilization() - 0.4).abs() < 1e-9,
            "budget reserved as host task"
        );
        // Duplicate configuration refused.
        assert!(node.configure_nda_server(server).is_err());

        let nda = |id: u32, work: f64| {
            let mut m = manifest(id, work, 64);
            m.model.kind = dynplat_common::AppKind::NonDeterministic;
            m.model.period = SimDuration::from_millis(100);
            m
        };
        // 24 MI per 100 ms on 1200 MIPS = 20 ms = 20% bandwidth each.
        node.launch(nda(10, 24.0)).unwrap();
        let u_after_first = node.utilization();
        node.launch(nda(11, 12.0)).unwrap();
        // Third NDA app exceeds the 40% server bandwidth: refused.
        let err = node.launch(nda(12, 24.0)).unwrap_err();
        assert!(
            matches!(err, NodeError::AdmissionRejected { .. }),
            "{err:?}"
        );
        // NDA admission never touched the deterministic utilization.
        assert_eq!(node.utilization(), u_after_first);
        // Deterministic apps still admit against the remaining 60%.
        node.launch(manifest(1, 6.0, 64)).unwrap();
    }

    #[test]
    fn without_a_server_nda_apps_are_unaccounted_but_memory_gated() {
        let mut node = domain_node();
        let mut m = manifest(1, 1.0, 64);
        m.model.kind = dynplat_common::AppKind::NonDeterministic;
        node.launch(m).unwrap();
        assert_eq!(node.utilization(), 0.0, "no deterministic reservation");
    }

    #[test]
    fn server_budget_is_refused_on_a_full_node() {
        use dynplat_sched::server::PeriodicServer;
        let mut node = domain_node();
        node.launch(manifest(1, 6.0, 64)).unwrap(); // 50%
        node.launch(manifest(2, 6.0, 64)).unwrap(); // 100%
        let server = PeriodicServer::new(SimDuration::from_millis(2), SimDuration::from_millis(10));
        assert!(matches!(
            node.configure_nda_server(server),
            Err(NodeError::AdmissionRejected { .. })
        ));
        assert!(node.nda_server().is_none());
    }

    #[test]
    fn mixed_asil_on_mmu_less_node_rejected() {
        let mut node = PlatformNode::new(EcuSpec::of_class(EcuId(0), "weak", EcuClass::LowEnd));
        let mut a = manifest(1, 0.5, 64);
        a.model.asil = Asil::B;
        let mut b = manifest(2, 0.5, 64);
        b.model.asil = Asil::Qm;
        node.launch(a).unwrap();
        let err = node.launch(b).unwrap_err();
        assert!(matches!(err, NodeError::Process(_)));
    }
}
