//! The multi-node dynamic platform.
//!
//! Integrates the substrates into the runtime of Fig. 2: signed package
//! installation (§4.1) with update-master delegation for crypto-less ECUs,
//! per-node freedom-of-interference gates, service discovery offers and
//! subscriptions, and authorized service binding (§4.2).

use crate::app::{AppManifest, LifecycleState};
use crate::node::{NodeError, PlatformNode};
use dynplat_comm::sd::{OfferState, SdEntry, ServiceDirectory};
use dynplat_common::ids::ServiceInstance;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, EcuId, InstanceId, ServiceId};
use dynplat_hw::EcuSpec;
use dynplat_model::ir::{AppModel, PortKind};
use dynplat_security::authz::{AccessControlMatrix, Permission};
use dynplat_security::master::UpdateMaster;
use dynplat_security::package::{InstallGate, KeyRegistry, PackageError, SignedPackage, Version};
use dynplat_security::sha256::sha256;
use std::collections::BTreeMap;
use std::fmt;

/// Default TTL for offers and subscriptions issued by the platform.
pub const DEFAULT_SD_TTL: SimDuration = SimDuration::from_secs(5);

/// Errors of platform-level operations.
#[derive(Clone, Debug, PartialEq)]
pub enum PlatformError {
    /// The target ECU is not part of the platform.
    UnknownEcu(EcuId),
    /// A node-local gate failed.
    Node(NodeError),
    /// Package verification failed.
    Package(PackageError),
    /// A crypto-less ECU has no update master to delegate verification to.
    NoUpdateMaster(EcuId),
    /// The client is not authorized for the requested binding (§4.2).
    Unauthorized {
        /// Requesting client.
        client: AppId,
        /// Target service.
        service: ServiceId,
    },
    /// No live offer for the requested service.
    NoOffer(ServiceId),
    /// The app is not hosted anywhere on the platform.
    UnknownApp(AppId),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownEcu(e) => write!(f, "unknown ECU {e}"),
            PlatformError::Node(e) => write!(f, "node: {e}"),
            PlatformError::Package(e) => write!(f, "package: {e}"),
            PlatformError::NoUpdateMaster(e) => {
                write!(
                    f,
                    "{e} cannot verify packages and no update master is configured"
                )
            }
            PlatformError::Unauthorized { client, service } => {
                write!(f, "{client} is not authorized on {service}")
            }
            PlatformError::NoOffer(s) => write!(f, "no live offer for {s}"),
            PlatformError::UnknownApp(a) => write!(f, "{a} is not hosted on this platform"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<NodeError> for PlatformError {
    fn from(e: NodeError) -> Self {
        PlatformError::Node(e)
    }
}

impl From<PackageError> for PlatformError {
    fn from(e: PackageError) -> Self {
        PlatformError::Package(e)
    }
}

/// The dynamic platform spanning multiple ECUs.
#[derive(Debug)]
pub struct DynamicPlatform {
    nodes: BTreeMap<EcuId, PlatformNode>,
    directory: ServiceDirectory,
    matrix: AccessControlMatrix,
    registry: KeyRegistry,
    gate: InstallGate,
    master: Option<UpdateMaster>,
}

impl DynamicPlatform {
    /// Creates an empty platform trusting `registry` for package signatures.
    pub fn new(registry: KeyRegistry) -> Self {
        DynamicPlatform {
            nodes: BTreeMap::new(),
            directory: ServiceDirectory::new(),
            matrix: AccessControlMatrix::new(),
            registry,
            gate: InstallGate::new(),
            master: None,
        }
    }

    /// Adds a node for `ecu`.
    pub fn add_node(&mut self, ecu: EcuSpec) {
        self.nodes.insert(ecu.id(), PlatformNode::new(ecu));
    }

    /// Configures the update master that verifies packages for crypto-less
    /// ECUs (§4.1).
    pub fn set_update_master(&mut self, master: UpdateMaster) {
        self.master = Some(master);
    }

    /// Installs the platform-wide access-control matrix (generated from the
    /// model, §4.2).
    pub fn set_access_matrix(&mut self, matrix: AccessControlMatrix) {
        self.matrix = matrix;
    }

    /// Runtime permission adjustment (merges a permission pack).
    pub fn merge_permissions(&mut self, extra: &AccessControlMatrix) {
        self.matrix.merge(extra);
    }

    /// The platform-wide service directory.
    pub fn directory(&self) -> &ServiceDirectory {
        &self.directory
    }

    /// Access to one node.
    pub fn node(&self, ecu: EcuId) -> Option<&PlatformNode> {
        self.nodes.get(&ecu)
    }

    /// Mutable access to one node.
    pub fn node_mut(&mut self, ecu: EcuId) -> Option<&mut PlatformNode> {
        self.nodes.get_mut(&ecu)
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (EcuId, &PlatformNode)> {
        self.nodes.iter().map(|(k, v)| (*k, v))
    }

    /// Verifies `signed` for installation on `ecu`, honoring the ECU's
    /// crypto capability: capable ECUs verify locally through the install
    /// gate (with rollback protection); crypto-less ECUs delegate to the
    /// update master.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Package`] on any verification failure,
    /// [`PlatformError::NoUpdateMaster`] when delegation is impossible.
    pub fn verify_package(
        &mut self,
        ecu: EcuId,
        signed: &SignedPackage,
    ) -> Result<(Version, [u8; 32]), PlatformError> {
        let node = self.nodes.get(&ecu).ok_or(PlatformError::UnknownEcu(ecu))?;
        let digest = sha256(&signed.package_bytes);
        if node.ecu().crypto().can_verify() {
            let package = self.gate.accept(signed, &self.registry)?;
            Ok((package.version, digest))
        } else {
            let master = self
                .master
                .as_ref()
                .ok_or(PlatformError::NoUpdateMaster(ecu))?;
            let (package, voucher) = master.verify_for(signed, ecu)?;
            debug_assert_eq!(voucher.package_digest, digest);
            Ok((package.version, digest))
        }
    }

    /// Installs and starts `model` on `ecu` from a signed package: verify,
    /// gate through the node, publish offers and subscriptions.
    ///
    /// # Errors
    ///
    /// All [`PlatformError`] variants.
    pub fn deploy(
        &mut self,
        now: SimTime,
        ecu: EcuId,
        model: AppModel,
        signed: &SignedPackage,
    ) -> Result<InstanceId, PlatformError> {
        let (version, digest) = self.verify_package(ecu, signed)?;
        let manifest = AppManifest::new(model, version, digest);
        self.deploy_verified(now, ecu, manifest)
    }

    /// Installs and starts an already-verified manifest (used internally by
    /// the update orchestrator, which verified the package up front).
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownEcu`] or node gate failures.
    pub fn deploy_verified(
        &mut self,
        now: SimTime,
        ecu: EcuId,
        manifest: AppManifest,
    ) -> Result<InstanceId, PlatformError> {
        let node = self
            .nodes
            .get_mut(&ecu)
            .ok_or(PlatformError::UnknownEcu(ecu))?;
        let instance = node.launch(manifest.clone())?;
        self.announce(now, ecu, &manifest);
        Ok(instance)
    }

    /// Publishes the SD offers/subscriptions of a manifest hosted on `ecu`.
    pub(crate) fn announce(&mut self, now: SimTime, ecu: EcuId, manifest: &AppManifest) {
        for service in manifest.provides() {
            self.directory.apply(
                now,
                &SdEntry::Offer {
                    instance: ServiceInstance::new(*service, 0),
                    host: ecu,
                    version: 1,
                    ttl: DEFAULT_SD_TTL,
                },
            );
        }
        for port in manifest.consumes() {
            if let PortKind::Event(group) | PortKind::Stream(group) = port.kind {
                self.directory.apply(
                    now,
                    &SdEntry::Subscribe {
                        instance: ServiceInstance::new(port.service, 0),
                        group,
                        subscriber: manifest.id(),
                        host: ecu,
                        ttl: DEFAULT_SD_TTL,
                    },
                );
            }
        }
    }

    /// Renews all offers/subscriptions of running apps and expires stale
    /// directory state — the platform's periodic SD housekeeping.
    pub fn refresh_directory(&mut self, now: SimTime) {
        let mut to_announce: Vec<(EcuId, AppManifest)> = Vec::new();
        for (&ecu, node) in &self.nodes {
            for (_, inst) in node.instances() {
                if inst.state.is_serving() {
                    to_announce.push((ecu, inst.manifest.clone()));
                }
            }
        }
        for (ecu, manifest) in to_announce {
            self.announce(now, ecu, &manifest);
        }
        self.directory.expire(now);
    }

    /// Authorized binding (§4.2): checks the access matrix, then resolves a
    /// live offer. Deny-by-default: absent rules fail closed.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Unauthorized`] or [`PlatformError::NoOffer`].
    pub fn bind(
        &self,
        now: SimTime,
        client: AppId,
        service: ServiceId,
        permission: Permission,
    ) -> Result<&OfferState, PlatformError> {
        if !self.matrix.check(client, service, permission).is_granted() {
            return Err(PlatformError::Unauthorized { client, service });
        }
        self.directory
            .find(now, service)
            .into_iter()
            .next()
            .ok_or(PlatformError::NoOffer(service))
    }

    /// Stops an application wherever it runs; returns how many instances
    /// were stopped.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownApp`] when nothing was stopped.
    pub fn stop_app(&mut self, now: SimTime, app: AppId) -> Result<usize, PlatformError> {
        let mut stopped = 0;
        let mut withdrawals: Vec<ServiceId> = Vec::new();
        for node in self.nodes.values_mut() {
            let ids: Vec<InstanceId> = node.serving_instances_of(app);
            for id in ids {
                node.transition(id, LifecycleState::Stopping)?;
                node.transition(id, LifecycleState::Stopped)?;
                stopped += 1;
            }
        }
        if stopped == 0 {
            return Err(PlatformError::UnknownApp(app));
        }
        // Withdraw offers the app provided.
        for node in self.nodes.values() {
            for (_, inst) in node.instances() {
                if inst.manifest.id() == app {
                    withdrawals.extend(inst.manifest.provides().iter().copied());
                }
            }
        }
        let _ = now;
        for service in withdrawals {
            self.directory.apply(
                SimTime::ZERO.max(now),
                &SdEntry::StopOffer {
                    instance: ServiceInstance::new(service, 0),
                },
            );
        }
        Ok(stopped)
    }

    /// Simulates the failure of an entire ECU: all its instances fail, its
    /// offers vanish. Returns the ids of the applications that lost their
    /// only serving instance — input to the redundancy manager (§3.3).
    pub fn fail_ecu(&mut self, now: SimTime, ecu: EcuId) -> Vec<AppId> {
        let Some(node) = self.nodes.get_mut(&ecu) else {
            return Vec::new();
        };
        let mut affected = Vec::new();
        let ids: Vec<(InstanceId, AppManifest, LifecycleState)> = node
            .instances()
            .map(|(id, i)| (id, i.manifest.clone(), i.state))
            .collect();
        for (id, manifest, state) in ids {
            if state.is_serving() || state == LifecycleState::Starting {
                let _ = node.transition(id, LifecycleState::Failed);
                affected.push(manifest.id());
                for service in manifest.provides() {
                    self.directory.apply(
                        now,
                        &SdEntry::StopOffer {
                            instance: ServiceInstance::new(*service, 0),
                        },
                    );
                }
            }
        }
        // Apps still served elsewhere are not "affected".
        let nodes = &self.nodes;
        affected.retain(|app| {
            !nodes
                .values()
                .any(|n| !n.serving_instances_of(*app).is_empty())
        });
        affected.sort();
        affected.dedup();
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;
    use dynplat_common::{AppKind, Asil, EventGroupId};
    use dynplat_hw::ecu::EcuClass;
    use dynplat_model::ir::ConsumedPort;
    use dynplat_security::package::UpdatePackage;
    use dynplat_security::sign::KeyPair;

    fn model(id: u32, provides: Vec<ServiceId>, consumes: Vec<ConsumedPort>) -> AppModel {
        AppModel {
            id: AppId(id),
            name: format!("app{id}"),
            kind: AppKind::Deterministic,
            asil: Asil::B,
            provides,
            consumes,
            period: SimDuration::from_millis(10),
            work_mi: 1.0,
            memory_kib: 128,
            needs_gpu: false,
        }
    }

    fn signed_package(app: u32, authority: &KeyPair, counter: u64) -> SignedPackage {
        let package = UpdatePackage::new(AppId(app), Version::new(1, 0, 0), counter, vec![1, 2, 3]);
        SignedPackage::create(&package, authority)
    }

    fn platform_with(authority: &KeyPair) -> DynamicPlatform {
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let mut platform = DynamicPlatform::new(registry);
        platform.add_node(EcuSpec::of_class(EcuId(1), "gw", EcuClass::Domain));
        platform.add_node(EcuSpec::of_class(EcuId(2), "hp", EcuClass::HighPerformance));
        platform.add_node(EcuSpec::of_class(EcuId(0), "weak", EcuClass::LowEnd));
        platform
    }

    #[test]
    fn deploy_verifies_and_offers() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let now = SimTime::ZERO;
        let signed = signed_package(1, &authority, 1);
        let m = model(1, vec![ServiceId(10)], vec![]);
        let id = platform.deploy(now, EcuId(1), m, &signed).unwrap();
        assert!(platform.node(EcuId(1)).unwrap().instance(id).is_some());
        assert_eq!(platform.directory().find(now, ServiceId(10)).len(), 1);
    }

    #[test]
    fn rogue_package_is_refused() {
        let authority = KeyPair::from_seed(b"oem");
        let rogue = KeyPair::from_seed(b"rogue");
        let mut platform = platform_with(&authority);
        let signed = signed_package(1, &rogue, 1);
        let err = platform
            .deploy(SimTime::ZERO, EcuId(1), model(1, vec![], vec![]), &signed)
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::Package(PackageError::UntrustedSigner(_))
        ));
    }

    #[test]
    fn weak_ecu_requires_update_master() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let signed = signed_package(1, &authority, 1);
        // No master configured: refused.
        let err = platform
            .deploy(SimTime::ZERO, EcuId(0), model(1, vec![], vec![]), &signed)
            .unwrap_err();
        assert!(matches!(err, PlatformError::NoUpdateMaster(EcuId(0))));
        // With a master enrolled for ecu0 it works.
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let mut master = UpdateMaster::new(registry);
        master.enroll(EcuId(0), [9; 32]);
        platform.set_update_master(master);
        platform
            .deploy(SimTime::ZERO, EcuId(0), model(1, vec![], vec![]), &signed)
            .unwrap();
    }

    #[test]
    fn replayed_package_is_refused_on_strong_ecu() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let signed = signed_package(1, &authority, 1);
        platform
            .deploy(SimTime::ZERO, EcuId(1), model(1, vec![], vec![]), &signed)
            .unwrap();
        let err = platform
            .deploy(SimTime::ZERO, EcuId(2), model(1, vec![], vec![]), &signed)
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::Package(PackageError::ReplayOrRollback { .. })
        ));
    }

    #[test]
    fn binding_is_deny_by_default_and_grantable() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let now = SimTime::ZERO;
        let signed = signed_package(1, &authority, 1);
        platform
            .deploy(
                now,
                EcuId(1),
                model(1, vec![ServiceId(10)], vec![]),
                &signed,
            )
            .unwrap();

        let err = platform
            .bind(now, AppId(2), ServiceId(10), Permission::Subscribe)
            .unwrap_err();
        assert!(matches!(err, PlatformError::Unauthorized { .. }));

        let mut matrix = AccessControlMatrix::new();
        matrix.grant(AppId(2), ServiceId(10), Permission::Subscribe);
        platform.set_access_matrix(matrix);
        let offer = platform
            .bind(now, AppId(2), ServiceId(10), Permission::Subscribe)
            .unwrap();
        assert_eq!(offer.host, EcuId(1));

        // No offer for an unknown service even when authorized.
        let mut extra = AccessControlMatrix::new();
        extra.grant(AppId(2), ServiceId(11), Permission::Subscribe);
        platform.merge_permissions(&extra);
        assert!(matches!(
            platform.bind(now, AppId(2), ServiceId(11), Permission::Subscribe),
            Err(PlatformError::NoOffer(_))
        ));
    }

    #[test]
    fn stop_app_withdraws_offers() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let now = SimTime::ZERO;
        let signed = signed_package(1, &authority, 1);
        platform
            .deploy(
                now,
                EcuId(1),
                model(1, vec![ServiceId(10)], vec![]),
                &signed,
            )
            .unwrap();
        assert_eq!(platform.stop_app(now, AppId(1)).unwrap(), 1);
        assert!(platform.directory().find(now, ServiceId(10)).is_empty());
        assert!(matches!(
            platform.stop_app(now, AppId(1)),
            Err(PlatformError::UnknownApp(_))
        ));
    }

    #[test]
    fn subscriptions_are_registered_for_consumers() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let now = SimTime::ZERO;
        platform
            .deploy(
                now,
                EcuId(1),
                model(1, vec![ServiceId(10)], vec![]),
                &signed_package(1, &authority, 1),
            )
            .unwrap();
        let consumer = model(
            2,
            vec![],
            vec![ConsumedPort {
                service: ServiceId(10),
                kind: PortKind::Event(EventGroupId(1)),
            }],
        );
        platform
            .deploy(now, EcuId(2), consumer, &signed_package(2, &authority, 2))
            .unwrap();
        let subs = platform.directory().subscribers(
            now,
            ServiceInstance::new(ServiceId(10), 0),
            EventGroupId(1),
        );
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].host, EcuId(2));
    }

    #[test]
    fn ecu_failure_reports_unserved_apps() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        let now = SimTime::ZERO;
        platform
            .deploy(
                now,
                EcuId(1),
                model(1, vec![ServiceId(10)], vec![]),
                &signed_package(1, &authority, 1),
            )
            .unwrap();
        let affected = platform.fail_ecu(now, EcuId(1));
        assert_eq!(affected, vec![AppId(1)]);
        assert!(platform.directory().find(now, ServiceId(10)).is_empty());
        // Failing an empty ECU affects nothing.
        assert!(platform.fail_ecu(now, EcuId(2)).is_empty());
    }

    #[test]
    fn refresh_keeps_running_offers_alive() {
        let authority = KeyPair::from_seed(b"oem");
        let mut platform = platform_with(&authority);
        platform
            .deploy(
                SimTime::ZERO,
                EcuId(1),
                model(1, vec![ServiceId(10)], vec![]),
                &signed_package(1, &authority, 1),
            )
            .unwrap();
        // Past the original TTL but refreshed in between.
        let later = SimTime::ZERO + DEFAULT_SD_TTL - SimDuration::from_secs(1);
        platform.refresh_directory(later);
        let after = later + DEFAULT_SD_TTL - SimDuration::from_secs(1);
        assert_eq!(platform.directory().find(after, ServiceId(10)).len(), 1);
    }
}
