//! Application manifests and lifecycle.

use dynplat_common::time::SimDuration;
use dynplat_common::{AppId, AppKind, Asil, ServiceId};
use dynplat_model::ir::{AppModel, ConsumedPort};
use dynplat_security::package::Version;
use std::fmt;

/// Everything the platform needs to know to host an application: the
/// modeled behavior plus packaging metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct AppManifest {
    /// The modeled application (tasks, resources, ports, ASIL).
    pub model: AppModel,
    /// Installed version.
    pub version: Version,
    /// SHA-256 of the installed image (ties the manifest to a verified
    /// package).
    pub image_digest: [u8; 32],
}

impl AppManifest {
    /// Creates a manifest for a model at a version.
    pub fn new(model: AppModel, version: Version, image_digest: [u8; 32]) -> Self {
        AppManifest {
            model,
            version,
            image_digest,
        }
    }

    /// The application id.
    pub fn id(&self) -> AppId {
        self.model.id
    }

    /// Deterministic or non-deterministic.
    pub fn kind(&self) -> AppKind {
        self.model.kind
    }

    /// Safety level.
    pub fn asil(&self) -> Asil {
        self.model.asil
    }

    /// Activation period.
    pub fn period(&self) -> SimDuration {
        self.model.period
    }

    /// Memory footprint in KiB.
    pub fn memory_kib(&self) -> u32 {
        self.model.memory_kib
    }

    /// Services provided.
    pub fn provides(&self) -> &[ServiceId] {
        &self.model.provides
    }

    /// Ports consumed.
    pub fn consumes(&self) -> &[ConsumedPort] {
        &self.model.consumes
    }
}

/// Lifecycle of one application instance on a node.
///
/// ```text
/// Installed -> Starting -> Running -> Stopping -> Stopped
///                             |
///                             +--> Updating (staged update in progress)
///                             +--> Failed
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LifecycleState {
    /// Package verified and unpacked; not scheduled yet.
    Installed,
    /// Resources admitted; initialization running.
    Starting,
    /// Actively scheduled and serving.
    Running,
    /// Participating in a staged update (§3.2) as old or new version.
    Updating,
    /// Shutdown requested; draining.
    Stopping,
    /// Fully stopped; resources released.
    Stopped,
    /// Terminated by the platform after a fault.
    Failed,
}

impl LifecycleState {
    /// `true` if a transition from `self` to `next` is legal.
    pub fn can_transition_to(self, next: LifecycleState) -> bool {
        use LifecycleState::*;
        matches!(
            (self, next),
            (Installed, Starting)
                | (Starting, Running)
                | (Starting, Failed)
                | (Running, Updating)
                | (Running, Stopping)
                | (Running, Failed)
                | (Updating, Running)
                | (Updating, Stopping)
                | (Updating, Failed)
                | (Stopping, Stopped)
                | (Failed, Stopping)
        )
    }

    /// `true` while the instance may serve traffic.
    pub fn is_serving(self) -> bool {
        matches!(self, LifecycleState::Running | LifecycleState::Updating)
    }
}

impl fmt::Display for LifecycleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LifecycleState::Installed => "installed",
            LifecycleState::Starting => "starting",
            LifecycleState::Running => "running",
            LifecycleState::Updating => "updating",
            LifecycleState::Stopping => "stopping",
            LifecycleState::Stopped => "stopped",
            LifecycleState::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;

    pub(crate) fn demo_model(id: u32) -> AppModel {
        AppModel {
            id: AppId(id),
            name: format!("app{id}"),
            kind: AppKind::Deterministic,
            asil: Asil::B,
            provides: vec![],
            consumes: vec![],
            period: SimDuration::from_millis(10),
            work_mi: 1.0,
            memory_kib: 128,
            needs_gpu: false,
        }
    }

    #[test]
    fn manifest_accessors() {
        let m = AppManifest::new(demo_model(3), Version::new(1, 2, 0), [7; 32]);
        assert_eq!(m.id(), AppId(3));
        assert_eq!(m.kind(), AppKind::Deterministic);
        assert_eq!(m.asil(), Asil::B);
        assert_eq!(m.version, Version::new(1, 2, 0));
        assert_eq!(m.memory_kib(), 128);
    }

    #[test]
    fn legal_lifecycle_path() {
        use LifecycleState::*;
        let path = [
            Installed, Starting, Running, Updating, Running, Stopping, Stopped,
        ];
        for pair in path.windows(2) {
            assert!(
                pair[0].can_transition_to(pair[1]),
                "{} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn illegal_transitions_rejected() {
        use LifecycleState::*;
        assert!(!Installed.can_transition_to(Running));
        assert!(!Stopped.can_transition_to(Running));
        assert!(!Running.can_transition_to(Installed));
        assert!(!Failed.can_transition_to(Running));
    }

    #[test]
    fn serving_states() {
        assert!(LifecycleState::Running.is_serving());
        assert!(LifecycleState::Updating.is_serving());
        assert!(!LifecycleState::Starting.is_serving());
        assert!(!LifecycleState::Stopped.is_serving());
    }
}
