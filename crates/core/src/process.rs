//! Memory freedom of interference (§3.1 "Memory").
//!
//! "Separate applications need to be executed in separate processes.
//! However, OSs with support for memory separation often require a Memory
//! Management Unit. … Additionally, a large amount of processes might slow
//! down a system. Thus, it is important to define which applications need
//! to run in separate processes and which can be combined in a single
//! process." The [`ProcessManager`] implements that policy:
//!
//! * on an MMU-equipped ECU, apps of different ASIL levels are isolated in
//!   separate process groups; same-ASIL apps may share one group (fewer
//!   processes, per the model's co-location hints);
//! * on an MMU-less ECU everything shares one unprotected group, and
//!   mixing ASIL levels is refused.

use dynplat_common::{AppId, Asil};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an OS process group on one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessGroupId(pub u32);

impl fmt::Display for ProcessGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Errors from process-group assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcessError {
    /// Mixing ASIL levels on an MMU-less ECU would break freedom of
    /// interference.
    NoIsolationPossible {
        /// The app that could not be placed.
        app: AppId,
        /// Its ASIL.
        asil: Asil,
        /// The ASIL already resident.
        resident: Asil,
    },
    /// The app is already assigned.
    AlreadyAssigned(AppId),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::NoIsolationPossible {
                app,
                asil,
                resident,
            } => write!(
                f,
                "cannot place {app} ({asil}) next to {resident} apps without an MMU"
            ),
            ProcessError::AlreadyAssigned(app) => write!(f, "{app} already has a process group"),
        }
    }
}

impl std::error::Error for ProcessError {}

/// Per-node process-group allocator.
#[derive(Clone, Debug)]
pub struct ProcessManager {
    mmu: bool,
    next_group: u32,
    assignment: BTreeMap<AppId, ProcessGroupId>,
    group_asil: BTreeMap<ProcessGroupId, Asil>,
    isolate_always: bool,
}

impl ProcessManager {
    /// Creates a manager for an ECU with or without an MMU. By default,
    /// same-ASIL apps share a process group (fewer processes); call
    /// [`ProcessManager::isolate_every_app`] for one-process-per-app.
    pub fn new(mmu: bool) -> Self {
        ProcessManager {
            mmu,
            next_group: 0,
            assignment: BTreeMap::new(),
            group_asil: BTreeMap::new(),
            isolate_always: false,
        }
    }

    /// Switches to strict one-process-per-app isolation (MMU required to
    /// have any effect).
    pub fn isolate_every_app(mut self) -> Self {
        self.isolate_always = true;
        self
    }

    /// Whether assignments on this node are memory-isolated.
    pub fn is_isolated(&self) -> bool {
        self.mmu
    }

    /// Number of process groups in use.
    pub fn group_count(&self) -> usize {
        self.group_asil.len()
    }

    /// The group of an app, if assigned.
    pub fn group_of(&self, app: AppId) -> Option<ProcessGroupId> {
        self.assignment.get(&app).copied()
    }

    /// Assigns a process group to `app` at `asil`.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoIsolationPossible`] when an MMU-less node already
    /// hosts apps of a different ASIL; [`ProcessError::AlreadyAssigned`]
    /// for duplicates.
    pub fn assign(&mut self, app: AppId, asil: Asil) -> Result<ProcessGroupId, ProcessError> {
        if self.assignment.contains_key(&app) {
            return Err(ProcessError::AlreadyAssigned(app));
        }
        if !self.mmu {
            // One unprotected group; only homogeneous ASIL allowed.
            if let Some((&gid, &resident)) = self.group_asil.iter().next() {
                if resident != asil {
                    return Err(ProcessError::NoIsolationPossible {
                        app,
                        asil,
                        resident,
                    });
                }
                self.assignment.insert(app, gid);
                return Ok(gid);
            }
            let gid = self.fresh_group(asil);
            self.assignment.insert(app, gid);
            return Ok(gid);
        }
        if !self.isolate_always {
            // Reuse a group of the same ASIL when present.
            if let Some((&gid, _)) = self.group_asil.iter().find(|(_, &a)| a == asil) {
                self.assignment.insert(app, gid);
                return Ok(gid);
            }
        }
        let gid = self.fresh_group(asil);
        self.assignment.insert(app, gid);
        Ok(gid)
    }

    /// Releases an app's assignment; empty groups are garbage-collected.
    pub fn release(&mut self, app: AppId) -> bool {
        let Some(gid) = self.assignment.remove(&app) else {
            return false;
        };
        if !self.assignment.values().any(|&g| g == gid) {
            self.group_asil.remove(&gid);
        }
        true
    }

    /// `true` if apps `a` and `b` are memory-isolated from each other.
    pub fn isolated_between(&self, a: AppId, b: AppId) -> bool {
        if !self.mmu {
            return false;
        }
        match (self.group_of(a), self.group_of(b)) {
            (Some(ga), Some(gb)) => ga != gb,
            _ => true, // not co-resident at all
        }
    }

    fn fresh_group(&mut self, asil: Asil) -> ProcessGroupId {
        let gid = ProcessGroupId(self.next_group);
        self.next_group += 1;
        self.group_asil.insert(gid, asil);
        gid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmu_node_separates_asil_levels() {
        let mut pm = ProcessManager::new(true);
        let g1 = pm.assign(AppId(1), Asil::D).unwrap();
        let g2 = pm.assign(AppId(2), Asil::Qm).unwrap();
        let g3 = pm.assign(AppId(3), Asil::D).unwrap();
        assert_ne!(g1, g2);
        assert_eq!(g1, g3, "same ASIL shares a group by default");
        assert_eq!(pm.group_count(), 2);
        assert!(pm.isolated_between(AppId(1), AppId(2)));
        assert!(!pm.isolated_between(AppId(1), AppId(3)));
    }

    #[test]
    fn strict_isolation_gives_every_app_its_own_group() {
        let mut pm = ProcessManager::new(true).isolate_every_app();
        let g1 = pm.assign(AppId(1), Asil::B).unwrap();
        let g2 = pm.assign(AppId(2), Asil::B).unwrap();
        assert_ne!(g1, g2);
        assert!(pm.isolated_between(AppId(1), AppId(2)));
    }

    #[test]
    fn mmu_less_node_refuses_mixed_criticality() {
        let mut pm = ProcessManager::new(false);
        pm.assign(AppId(1), Asil::B).unwrap();
        let err = pm.assign(AppId(2), Asil::Qm).unwrap_err();
        assert!(matches!(err, ProcessError::NoIsolationPossible { .. }));
        // Same ASIL is tolerated (single shared group, no isolation).
        let g = pm.assign(AppId(3), Asil::B).unwrap();
        assert_eq!(Some(g), pm.group_of(AppId(1)));
        assert!(!pm.isolated_between(AppId(1), AppId(3)));
        assert!(!pm.is_isolated());
    }

    #[test]
    fn duplicate_assignment_rejected() {
        let mut pm = ProcessManager::new(true);
        pm.assign(AppId(1), Asil::A).unwrap();
        assert_eq!(
            pm.assign(AppId(1), Asil::A),
            Err(ProcessError::AlreadyAssigned(AppId(1)))
        );
    }

    #[test]
    fn release_garbage_collects_groups() {
        let mut pm = ProcessManager::new(true);
        pm.assign(AppId(1), Asil::A).unwrap();
        pm.assign(AppId(2), Asil::B).unwrap();
        assert_eq!(pm.group_count(), 2);
        assert!(pm.release(AppId(1)));
        assert_eq!(pm.group_count(), 1);
        assert!(!pm.release(AppId(1)));
        // Freed ASIL slot can be reused.
        pm.assign(AppId(3), Asil::A).unwrap();
        assert_eq!(pm.group_count(), 2);
    }
}
