//! Update safety (§3.2).
//!
//! Three update mechanisms with very different safety properties:
//!
//! * [`staged_update`] — the paper's proposal for deterministic
//!   applications: (1) start the new version in parallel, (2) synchronize
//!   internal state, (3) redirect traffic, (4) stop the old version. Costs
//!   double resources during the overlap, but the service never loses its
//!   only serving instance (zero outage);
//! * [`stop_restart_update`] — the non-deterministic-app procedure: stop,
//!   update, restart; cheap, but the service is down for the whole window;
//! * [`centralized_switch_update`] — the baseline the paper warns about:
//!   every replica of a distributed function switches "simultaneously" at a
//!   commanded local time, so the consistency of the fleet-wide switch
//!   degrades with clock error, and the coordinator is a single point of
//!   failure;
//! * [`update_path`] — dependency-ordered distributed updates: providers
//!   before consumers, with a compatibility check at every intermediate
//!   step.

use crate::app::{AppManifest, LifecycleState};
use crate::platform::{DynamicPlatform, PlatformError};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, EcuId, InstanceId};
use dynplat_sim::jitter::ClockModel;
use std::collections::BTreeMap;

/// Which mechanism produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// 4-phase staged update.
    Staged,
    /// Stop–update–restart.
    StopRestart,
    /// Centrally commanded simultaneous switch.
    CentralizedSwitch,
}

/// Outcome metrics of one update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Mechanism used.
    pub strategy: UpdateStrategy,
    /// Total time the application had no serving instance.
    pub outage: SimDuration,
    /// Time both versions were resident (double resources, §3.2's cost).
    pub overlap: SimDuration,
    /// Time the fleet/replica set ran mixed versions (distributed case).
    pub mixed_version_window: SimDuration,
    /// When the update completed.
    pub completed_at: SimTime,
    /// Timestamped phase log.
    pub phases: Vec<(String, SimTime)>,
}

/// Tunable costs of the staged procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StagedParams {
    /// Time to initialize the new instance.
    pub start_duration: SimDuration,
    /// State transfer rate for phase 2, KiB/s.
    pub sync_rate_kib_per_s: u64,
    /// Drain time between redirect and stopping the old instance.
    pub drain_duration: SimDuration,
}

impl Default for StagedParams {
    fn default() -> Self {
        StagedParams {
            start_duration: SimDuration::from_millis(50),
            sync_rate_kib_per_s: 50 * 1024, // 50 MiB/s
            drain_duration: SimDuration::from_millis(20),
        }
    }
}

/// Runs the 4-phase staged update of `app` on `ecu` to `new_manifest`.
///
/// # Errors
///
/// [`PlatformError::UnknownApp`] when `app` is not serving on `ecu`, plus
/// node gate errors if the ECU cannot host two instances simultaneously
/// (insufficient memory or CPU for the overlap — the "additional amount of
/// resources required" the paper names as the cost of this procedure).
pub fn staged_update(
    platform: &mut DynamicPlatform,
    now: SimTime,
    ecu: EcuId,
    new_manifest: AppManifest,
    state_kib: u64,
    params: &StagedParams,
) -> Result<UpdateReport, PlatformError> {
    let app = new_manifest.id();
    let old_instance = {
        let node = platform.node(ecu).ok_or(PlatformError::UnknownEcu(ecu))?;
        node.serving_instances_of(app)
            .first()
            .copied()
            .ok_or(PlatformError::UnknownApp(app))?
    };
    let mut phases = Vec::new();

    // Phase 1: start the new version in parallel.
    let node = platform.node_mut(ecu).expect("checked above");
    let new_instance = node.install(new_manifest.clone(), true)?;
    node.transition(old_instance, LifecycleState::Updating)?;
    node.transition(new_instance, LifecycleState::Starting)?;
    phases.push(("start-parallel".to_owned(), now));
    let started = now + params.start_duration;

    // Phase 2: synchronize internal state.
    let sync_secs = state_kib as f64 / params.sync_rate_kib_per_s as f64;
    let synced = started + SimDuration::from_secs_f64(sync_secs);
    phases.push(("sync-state".to_owned(), started));

    // Phase 3: redirect traffic — the new instance goes Running and offers
    // are re-announced from it; the old one keeps serving until drained.
    let node = platform.node_mut(ecu).expect("checked above");
    node.transition(new_instance, LifecycleState::Running)?;
    platform.announce(synced, ecu, &new_manifest);
    phases.push(("redirect-traffic".to_owned(), synced));

    // Phase 4: stop the old version after the drain window.
    let stopped = synced + params.drain_duration;
    let node = platform.node_mut(ecu).expect("checked above");
    node.transition(old_instance, LifecycleState::Stopping)?;
    node.transition(old_instance, LifecycleState::Stopped)?;
    phases.push(("stop-old".to_owned(), stopped));

    Ok(UpdateReport {
        strategy: UpdateStrategy::Staged,
        outage: SimDuration::ZERO,
        overlap: stopped.saturating_since(now),
        mixed_version_window: SimDuration::ZERO,
        completed_at: stopped,
        phases,
    })
}

/// Tunable costs of the stop–restart procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StopRestartParams {
    /// Time to stop and tear down the old version.
    pub stop_duration: SimDuration,
    /// Time to install/unpack the new image.
    pub install_duration: SimDuration,
    /// Time to start the new version.
    pub start_duration: SimDuration,
}

impl Default for StopRestartParams {
    fn default() -> Self {
        StopRestartParams {
            stop_duration: SimDuration::from_millis(30),
            install_duration: SimDuration::from_millis(200),
            start_duration: SimDuration::from_millis(50),
        }
    }
}

/// Runs a stop–update–restart of `app` on `ecu` (the procedure the paper
/// reserves for non-deterministic applications: "their impact might be
/// limited to user experience").
///
/// # Errors
///
/// [`PlatformError::UnknownApp`] when not serving on `ecu`, or node errors.
pub fn stop_restart_update(
    platform: &mut DynamicPlatform,
    now: SimTime,
    ecu: EcuId,
    new_manifest: AppManifest,
    params: &StopRestartParams,
) -> Result<UpdateReport, PlatformError> {
    let app = new_manifest.id();
    let old_instance = {
        let node = platform.node(ecu).ok_or(PlatformError::UnknownEcu(ecu))?;
        node.serving_instances_of(app)
            .first()
            .copied()
            .ok_or(PlatformError::UnknownApp(app))?
    };
    let mut phases = Vec::new();
    let node = platform.node_mut(ecu).expect("checked above");
    node.transition(old_instance, LifecycleState::Stopping)?;
    node.transition(old_instance, LifecycleState::Stopped)?;
    phases.push(("stop".to_owned(), now));
    let stopped = now + params.stop_duration;
    let installed = stopped + params.install_duration;
    phases.push(("install".to_owned(), stopped));
    let restarted = installed + params.start_duration;
    let node = platform.node_mut(ecu).expect("checked above");
    let _new_instance: InstanceId = node.launch(new_manifest.clone())?;
    platform.announce(restarted, ecu, &new_manifest);
    phases.push(("restart".to_owned(), installed));

    Ok(UpdateReport {
        strategy: UpdateStrategy::StopRestart,
        outage: restarted.saturating_since(now),
        overlap: SimDuration::ZERO,
        mixed_version_window: SimDuration::ZERO,
        completed_at: restarted,
        phases,
    })
}

/// Models the centrally synchronized switch of a distributed function: all
/// replicas are commanded to cut over at the same *local* time
/// `commanded_local`; per-replica clock imperfection spreads the actual
/// switch instants. Returns the report plus the per-replica global switch
/// times.
///
/// If `coordinator_failed` is set, nothing switches at all (single point of
/// failure, §3.2).
pub fn centralized_switch_update(
    clocks: &BTreeMap<EcuId, ClockModel>,
    commanded_local: SimTime,
    coordinator_failed: bool,
) -> (UpdateReport, BTreeMap<EcuId, SimTime>) {
    if coordinator_failed || clocks.is_empty() {
        return (
            UpdateReport {
                strategy: UpdateStrategy::CentralizedSwitch,
                outage: SimDuration::MAX,
                overlap: SimDuration::ZERO,
                mixed_version_window: SimDuration::MAX,
                completed_at: SimTime::MAX,
                phases: vec![("coordinator-failed".to_owned(), SimTime::ZERO)],
            },
            BTreeMap::new(),
        );
    }
    let switch_times: BTreeMap<EcuId, SimTime> = clocks
        .iter()
        .map(|(&ecu, clock)| (ecu, clock.global_time_showing(commanded_local)))
        .collect();
    let first = *switch_times.values().min().expect("non-empty");
    let last = *switch_times.values().max().expect("non-empty");
    let mixed = last.saturating_since(first);
    (
        UpdateReport {
            strategy: UpdateStrategy::CentralizedSwitch,
            // The hard cut leaves each replica momentarily without the old
            // version; the visible outage equals the mixed window (old
            // replicas gone, new not everywhere yet).
            outage: mixed,
            overlap: SimDuration::ZERO,
            mixed_version_window: mixed,
            completed_at: last,
            phases: vec![
                ("first-switch".to_owned(), first),
                ("last-switch".to_owned(), last),
            ],
        },
        switch_times,
    )
}

/// Errors of update-path planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The dependency graph has a cycle through this app.
    DependencyCycle(AppId),
    /// An intermediate step would break compatibility between the given
    /// consumer and provider.
    IncompatibleStep {
        /// Consumer app.
        consumer: AppId,
        /// Provider app.
        provider: AppId,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::DependencyCycle(a) => write!(f, "dependency cycle through {a}"),
            PathError::IncompatibleStep { consumer, provider } => {
                write!(
                    f,
                    "updating would break {consumer} -> {provider} compatibility"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Computes a safe update order for a set of apps with `dependencies`
/// (consumer, provider) pairs: providers update before their consumers, so
/// every intermediate step keeps consumers running against a provider that
/// is at least as new as they expect.
///
/// `step_compatible(updated, consumer, provider)` is consulted for every
/// intermediate step with the set of already-updated apps; returning
/// `false` aborts planning (the update must then be shipped as one bundle).
///
/// # Errors
///
/// [`PathError::DependencyCycle`] or [`PathError::IncompatibleStep`].
pub fn update_path<F>(
    apps: &[AppId],
    dependencies: &[(AppId, AppId)],
    mut step_compatible: F,
) -> Result<Vec<AppId>, PathError>
where
    F: FnMut(&[AppId], AppId, AppId) -> bool,
{
    // Kahn topological sort, providers first.
    let mut consumers_of: BTreeMap<AppId, Vec<AppId>> = BTreeMap::new();
    let mut pending_providers: BTreeMap<AppId, usize> = apps.iter().map(|&a| (a, 0)).collect();
    for &(consumer, provider) in dependencies {
        consumers_of.entry(provider).or_default().push(consumer);
        *pending_providers.entry(consumer).or_insert(0) += 1;
    }
    let mut ready: Vec<AppId> = pending_providers
        .iter()
        .filter(|(_, &n)| n == 0)
        .map(|(&a, _)| a)
        .collect();
    ready.sort();
    let mut order = Vec::new();
    while let Some(next) = ready.pop() {
        // Check every dependency edge at this intermediate step.
        for &(consumer, provider) in dependencies {
            if provider == next && !step_compatible(&order, consumer, provider) {
                return Err(PathError::IncompatibleStep { consumer, provider });
            }
        }
        order.push(next);
        if let Some(consumers) = consumers_of.get(&next) {
            for &c in consumers {
                let n = pending_providers.get_mut(&c).expect("known app");
                *n -= 1;
                if *n == 0 {
                    ready.push(c);
                    ready.sort();
                }
            }
        }
    }
    if order.len() != pending_providers.len() {
        let stuck = pending_providers
            .iter()
            .find(|(a, _)| !order.contains(a))
            .map(|(&a, _)| a)
            .expect("some app is stuck");
        return Err(PathError::DependencyCycle(stuck));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;
    use dynplat_common::{AppKind, Asil};
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_model::ir::AppModel;
    use dynplat_security::package::{KeyRegistry, Version};

    fn manifest(id: u32, version: Version) -> AppManifest {
        AppManifest::new(
            AppModel {
                id: AppId(id),
                name: format!("app{id}"),
                kind: AppKind::Deterministic,
                asil: Asil::B,
                provides: vec![],
                consumes: vec![],
                period: SimDuration::from_millis(10),
                work_mi: 1.0,
                memory_kib: 256,
                needs_gpu: false,
            },
            version,
            [0; 32],
        )
    }

    fn platform() -> DynamicPlatform {
        let mut p = DynamicPlatform::new(KeyRegistry::new());
        p.add_node(EcuSpec::of_class(EcuId(1), "gw", EcuClass::Domain));
        p
    }

    #[test]
    fn staged_update_has_zero_outage_and_positive_overlap() {
        let mut p = platform();
        let now = SimTime::ZERO;
        p.node_mut(EcuId(1))
            .unwrap()
            .launch(manifest(1, Version::new(1, 0, 0)))
            .unwrap();
        let report = staged_update(
            &mut p,
            now,
            EcuId(1),
            manifest(1, Version::new(1, 1, 0)),
            1024,
            &StagedParams::default(),
        )
        .unwrap();
        assert_eq!(report.outage, SimDuration::ZERO);
        assert!(report.overlap > SimDuration::ZERO);
        assert_eq!(report.phases.len(), 4);
        // Exactly one instance serves afterwards, at the new version.
        let node = p.node(EcuId(1)).unwrap();
        let serving = node.serving_instances_of(AppId(1));
        assert_eq!(serving.len(), 1);
        assert_eq!(
            node.instance(serving[0]).unwrap().manifest.version,
            Version::new(1, 1, 0)
        );
    }

    #[test]
    fn staged_update_keeps_a_serving_instance_at_every_phase() {
        let mut p = platform();
        p.node_mut(EcuId(1))
            .unwrap()
            .launch(manifest(1, Version::new(1, 0, 0)))
            .unwrap();
        // Spot-check by re-running and inspecting after each platform
        // mutation is covered by the zero-outage metric; here we at least
        // verify both instances coexist mid-procedure by memory accounting.
        let before = p.node(EcuId(1)).unwrap().memory_used_kib();
        staged_update(
            &mut p,
            SimTime::ZERO,
            EcuId(1),
            manifest(1, Version::new(1, 1, 0)),
            0,
            &StagedParams::default(),
        )
        .unwrap();
        let after = p.node(EcuId(1)).unwrap().memory_used_kib();
        assert_eq!(before, after, "old resources released after stop-old");
    }

    #[test]
    fn staged_update_needs_double_resources() {
        let mut p = DynamicPlatform::new(KeyRegistry::new());
        // Node with room for exactly one instance.
        p.add_node(
            EcuSpec::builder(EcuId(1), "tiny")
                .class(EcuClass::Domain)
                .ram_kib(300)
                .build(),
        );
        p.node_mut(EcuId(1))
            .unwrap()
            .launch(manifest(1, Version::new(1, 0, 0)))
            .unwrap();
        let err = staged_update(
            &mut p,
            SimTime::ZERO,
            EcuId(1),
            manifest(1, Version::new(1, 1, 0)),
            0,
            &StagedParams::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::Node(crate::node::NodeError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn stop_restart_has_outage() {
        let mut p = platform();
        p.node_mut(EcuId(1))
            .unwrap()
            .launch(manifest(7, Version::new(1, 0, 0)))
            .unwrap();
        let report = stop_restart_update(
            &mut p,
            SimTime::ZERO,
            EcuId(1),
            manifest(7, Version::new(2, 0, 0)),
            &StopRestartParams::default(),
        )
        .unwrap();
        assert!(report.outage >= SimDuration::from_millis(280));
        assert_eq!(report.overlap, SimDuration::ZERO);
        let node = p.node(EcuId(1)).unwrap();
        assert_eq!(node.serving_instances_of(AppId(7)).len(), 1);
    }

    #[test]
    fn updating_absent_app_fails() {
        let mut p = platform();
        assert!(matches!(
            staged_update(
                &mut p,
                SimTime::ZERO,
                EcuId(1),
                manifest(9, Version::new(1, 0, 0)),
                0,
                &StagedParams::default()
            ),
            Err(PlatformError::UnknownApp(AppId(9)))
        ));
    }

    #[test]
    fn centralized_switch_consistency_scales_with_clock_error() {
        let commanded = SimTime::from_secs(100);
        let perfect: BTreeMap<EcuId, ClockModel> =
            (0..4).map(|i| (EcuId(i), ClockModel::PERFECT)).collect();
        let (report, times) = centralized_switch_update(&perfect, commanded, false);
        assert_eq!(report.mixed_version_window, SimDuration::ZERO);
        assert!(times.values().all(|&t| t == commanded));

        let skewed: BTreeMap<EcuId, ClockModel> = [
            (EcuId(0), ClockModel::new(0, 0.0)),
            (EcuId(1), ClockModel::new(2_000_000, 0.0)), // +2 ms
            (EcuId(2), ClockModel::new(-3_000_000, 0.0)), // -3 ms
        ]
        .into_iter()
        .collect();
        let (report, _) = centralized_switch_update(&skewed, commanded, false);
        assert_eq!(report.mixed_version_window, SimDuration::from_millis(5));
        assert_eq!(report.outage, SimDuration::from_millis(5));
    }

    #[test]
    fn centralized_switch_coordinator_is_single_point_of_failure() {
        let clocks: BTreeMap<EcuId, ClockModel> =
            [(EcuId(0), ClockModel::PERFECT)].into_iter().collect();
        let (report, times) = centralized_switch_update(&clocks, SimTime::from_secs(1), true);
        assert!(times.is_empty());
        assert_eq!(report.outage, SimDuration::MAX);
    }

    #[test]
    fn update_path_orders_providers_first() {
        // a consumes b, b consumes c: update order c, b, a.
        let apps = [AppId(1), AppId(2), AppId(3)];
        let deps = [(AppId(1), AppId(2)), (AppId(2), AppId(3))];
        let order = update_path(&apps, &deps, |_, _, _| true).unwrap();
        assert_eq!(order, vec![AppId(3), AppId(2), AppId(1)]);
    }

    #[test]
    fn update_path_detects_cycles() {
        let apps = [AppId(1), AppId(2)];
        let deps = [(AppId(1), AppId(2)), (AppId(2), AppId(1))];
        let err = update_path(&apps, &deps, |_, _, _| true).unwrap_err();
        assert!(matches!(err, PathError::DependencyCycle(_)));
    }

    #[test]
    fn update_path_aborts_on_incompatible_step() {
        let apps = [AppId(1), AppId(2)];
        let deps = [(AppId(1), AppId(2))];
        let err = update_path(&apps, &deps, |_, _, _| false).unwrap_err();
        assert_eq!(
            err,
            PathError::IncompatibleStep {
                consumer: AppId(1),
                provider: AppId(2)
            }
        );
    }

    #[test]
    fn independent_apps_update_in_id_order() {
        let apps = [AppId(3), AppId(1), AppId(2)];
        let order = update_path(&apps, &[], |_, _, _| true).unwrap();
        // Deterministic order (sorted ready queue, popped from the back).
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![AppId(1), AppId(2), AppId(3)]);
    }
}
