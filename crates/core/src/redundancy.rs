//! Fail-operational redundancy (§3.3).
//!
//! "The fail-safe state of an autonomous vehicle is not necessarily a safe
//! shutdown. … the dynamic platform needs to support instantiating
//! applications multiple times. It might be necessary to install multiple
//! ECUs running the dynamic platform and synchronized applications across
//! these ECUs." — and the RACE-style master/slave execution of §5.3.
//!
//! A [`RedundancyGroup`] supervises the replicas of one application via
//! heartbeats: the master serves; when its heartbeats stop for
//! `tolerated_misses` periods, the next healthy replica is promoted. The
//! group tracks the control-output gap (time without a serving master), the
//! metric of experiment E6.

use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, EcuId, InstanceId, UncertaintyEstimate};
use dynplat_obs::{FlightRecorder, TraceCtx};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Role of one replica in the group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Actively producing outputs.
    Master,
    /// Hot standby, state-synchronized.
    Slave,
    /// Declared dead after missed heartbeats.
    Failed,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Master => write!(f, "master"),
            Role::Slave => write!(f, "slave"),
            Role::Failed => write!(f, "failed"),
        }
    }
}

/// Errors of redundancy management.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedundancyError {
    /// The replica is not part of this group.
    UnknownReplica(InstanceId),
    /// All replicas have failed: the function is lost (the vehicle must
    /// degrade to its minimal-risk condition).
    AllReplicasFailed,
    /// A replica with this instance id is already registered.
    DuplicateReplica(InstanceId),
}

impl fmt::Display for RedundancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedundancyError::UnknownReplica(i) => write!(f, "unknown replica {i}"),
            RedundancyError::AllReplicasFailed => write!(f, "all replicas failed"),
            RedundancyError::DuplicateReplica(i) => write!(f, "replica {i} already registered"),
        }
    }
}

impl std::error::Error for RedundancyError {}

#[derive(Clone, Debug)]
struct Replica {
    ecu: EcuId,
    role: Role,
    last_heartbeat: SimTime,
}

/// Heartbeat-supervised master/slave group for one application.
#[derive(Clone, Debug)]
pub struct RedundancyGroup {
    app: AppId,
    heartbeat_period: SimDuration,
    tolerated_misses: u32,
    replicas: BTreeMap<InstanceId, Replica>,
    /// Global time at which the current master was promoted.
    master_since: SimTime,
    /// Accumulated time without any master (the control-output gap).
    output_gap: SimDuration,
    /// Number of failovers performed.
    failovers: u32,
    flight: Option<Arc<FlightRecorder>>,
}

impl RedundancyGroup {
    /// Creates a group for `app`; replicas miss-tolerance defaults to 2
    /// heartbeat periods.
    ///
    /// # Panics
    ///
    /// Panics if `heartbeat_period` is zero.
    pub fn new(app: AppId, heartbeat_period: SimDuration) -> Self {
        assert!(
            !heartbeat_period.is_zero(),
            "heartbeat period must be non-zero"
        );
        RedundancyGroup {
            app,
            heartbeat_period,
            tolerated_misses: 2,
            replicas: BTreeMap::new(),
            master_since: SimTime::ZERO,
            output_gap: SimDuration::ZERO,
            failovers: 0,
            flight: None,
        }
    }

    /// Attaches a flight recorder: every promotion lands in its event ring
    /// (stage `core.redundancy`) and, when armed, freezes an incident dump.
    pub fn attach_flight_recorder(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    fn flight_promotion(&self, now: SimTime, promoted: InstanceId) {
        dynplat_obs::counter!("core.redundancy.failovers").inc();
        if let Some(fr) = &self.flight {
            let t = now.as_nanos();
            fr.record(
                t,
                TraceCtx::NONE,
                "core.redundancy",
                format!("app {} promoted {promoted}", self.app),
            );
            fr.trigger_if_armed(t, &format!("failover: app {} -> {promoted}", self.app));
        }
    }

    /// Overrides the tolerated number of missed heartbeats before failover.
    ///
    /// # Panics
    ///
    /// Panics if `misses` is zero.
    pub fn with_tolerated_misses(mut self, misses: u32) -> Self {
        assert!(misses > 0, "must tolerate at least one miss");
        self.tolerated_misses = misses;
        self
    }

    /// The supervised application.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// Registers a replica; the first becomes master, later ones slaves.
    ///
    /// # Errors
    ///
    /// [`RedundancyError::DuplicateReplica`].
    pub fn register(
        &mut self,
        now: SimTime,
        instance: InstanceId,
        ecu: EcuId,
    ) -> Result<Role, RedundancyError> {
        if self.replicas.contains_key(&instance) {
            return Err(RedundancyError::DuplicateReplica(instance));
        }
        let role = if self.master().is_none() {
            Role::Master
        } else {
            Role::Slave
        };
        if role == Role::Master {
            self.master_since = now;
        }
        self.replicas.insert(
            instance,
            Replica {
                ecu,
                role,
                last_heartbeat: now,
            },
        );
        Ok(role)
    }

    /// The current master, if any.
    pub fn master(&self) -> Option<InstanceId> {
        self.replicas
            .iter()
            .find(|(_, r)| r.role == Role::Master)
            .map(|(&i, _)| i)
    }

    /// Role of a replica.
    pub fn role_of(&self, instance: InstanceId) -> Option<Role> {
        self.replicas.get(&instance).map(|r| r.role)
    }

    /// Healthy replica count (master + slaves).
    pub fn healthy(&self) -> usize {
        self.replicas
            .values()
            .filter(|r| r.role != Role::Failed)
            .count()
    }

    /// Number of failovers so far.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Accumulated time without a serving master.
    pub fn output_gap(&self) -> SimDuration {
        self.output_gap
    }

    /// Records a heartbeat from `instance` at `now`.
    ///
    /// # Errors
    ///
    /// [`RedundancyError::UnknownReplica`].
    pub fn heartbeat(&mut self, now: SimTime, instance: InstanceId) -> Result<(), RedundancyError> {
        let r = self
            .replicas
            .get_mut(&instance)
            .ok_or(RedundancyError::UnknownReplica(instance))?;
        if r.role != Role::Failed {
            r.last_heartbeat = now;
        }
        Ok(())
    }

    /// Supervision tick: declares silent replicas failed and promotes a
    /// slave when the master is gone. Returns the newly promoted master, if
    /// a failover happened at this tick.
    ///
    /// # Errors
    ///
    /// [`RedundancyError::AllReplicasFailed`] when nothing is left to
    /// promote.
    pub fn supervise(&mut self, now: SimTime) -> Result<Option<InstanceId>, RedundancyError> {
        let deadline = self.heartbeat_period * u64::from(self.tolerated_misses);
        let mut master_lost_at: Option<SimTime> = None;
        for r in self.replicas.values_mut() {
            if r.role == Role::Failed {
                continue;
            }
            let silence = now.saturating_since(r.last_heartbeat);
            if silence > deadline {
                if r.role == Role::Master {
                    // The master actually died when its heartbeats stopped;
                    // we only *detect* it now.
                    master_lost_at = Some(r.last_heartbeat);
                }
                r.role = Role::Failed;
            }
        }
        if self.master().is_some() {
            return Ok(None);
        }
        self.promote_next(now, master_lost_at)
    }

    /// Supervision tick driven by a link-loss *distribution* instead of a
    /// fixed miss count. With per-heartbeat loss probability `q` — the
    /// **upper** edge of `link_loss`'s confidence band, so warm-up widening
    /// makes supervision slower to condemn, never faster — `k` consecutive
    /// missed heartbeats are all explained by the link with probability
    /// `q^k`. A replica is declared dead once `1 − q^k ≥ gate`: on a clean
    /// link a single miss is damning and failover beats the fixed-count
    /// rule; on a lossy link the group demands more silence, suppressing
    /// the false failovers the fixed count would perform. Falls back to
    /// [`RedundancyGroup::supervise`] while the estimate is unconverged.
    ///
    /// # Errors
    ///
    /// [`RedundancyError::AllReplicasFailed`] when nothing is left to
    /// promote.
    ///
    /// # Panics
    ///
    /// Panics unless `gate` is in `(0, 1)`.
    pub fn supervise_confident(
        &mut self,
        now: SimTime,
        link_loss: &UncertaintyEstimate,
        gate: f64,
    ) -> Result<Option<InstanceId>, RedundancyError> {
        assert!(gate > 0.0 && gate < 1.0, "confidence gate in (0, 1)");
        if !link_loss.converged {
            return self.supervise(now);
        }
        let q = link_loss.upper().clamp(0.0, 1.0 - 1e-9);
        let mut master_lost_at: Option<SimTime> = None;
        for r in self.replicas.values_mut() {
            if r.role == Role::Failed {
                continue;
            }
            let silence = now.saturating_since(r.last_heartbeat);
            let missed = (silence.as_nanos() / self.heartbeat_period.as_nanos()) as u32;
            if missed == 0 {
                continue;
            }
            let p_dead = 1.0 - q.powi(missed as i32);
            if p_dead >= gate {
                if r.role == Role::Master {
                    master_lost_at = Some(r.last_heartbeat);
                }
                r.role = Role::Failed;
            }
        }
        if self.master().is_some() {
            return Ok(None);
        }
        self.promote_next(now, master_lost_at)
    }

    /// Promotes the lowest-id healthy slave (deterministic choice),
    /// charging the output gap from `master_lost_at` when known.
    fn promote_next(
        &mut self,
        now: SimTime,
        master_lost_at: Option<SimTime>,
    ) -> Result<Option<InstanceId>, RedundancyError> {
        let candidate = self
            .replicas
            .iter()
            .find(|(_, r)| r.role == Role::Slave)
            .map(|(&i, _)| i);
        match candidate {
            Some(next) => {
                if let Some(lost) = master_lost_at {
                    self.output_gap += now.saturating_since(lost);
                }
                self.replicas.get_mut(&next).expect("candidate exists").role = Role::Master;
                self.master_since = now;
                self.failovers += 1;
                self.flight_promotion(now, next);
                Ok(Some(next))
            }
            None => Err(RedundancyError::AllReplicasFailed),
        }
    }

    /// Forcibly fails every replica on `ecu` (ECU loss) and supervises.
    ///
    /// # Errors
    ///
    /// [`RedundancyError::AllReplicasFailed`].
    pub fn fail_ecu(
        &mut self,
        now: SimTime,
        ecu: EcuId,
    ) -> Result<Option<InstanceId>, RedundancyError> {
        let mut lost_master = false;
        for r in self.replicas.values_mut() {
            if r.ecu == ecu && r.role != Role::Failed {
                lost_master |= r.role == Role::Master;
                r.role = Role::Failed;
            }
        }
        if !lost_master {
            return Ok(None);
        }
        self.promote_next(now, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn group_with_replicas(n: u64) -> RedundancyGroup {
        let mut g = RedundancyGroup::new(AppId(1), ms(10));
        for i in 0..n {
            g.register(t(0), InstanceId(i), EcuId(i as u16)).unwrap();
        }
        g
    }

    #[test]
    fn first_replica_is_master_rest_are_slaves() {
        let g = group_with_replicas(3);
        assert_eq!(g.master(), Some(InstanceId(0)));
        assert_eq!(g.role_of(InstanceId(1)), Some(Role::Slave));
        assert_eq!(g.role_of(InstanceId(2)), Some(Role::Slave));
        assert_eq!(g.healthy(), 3);
    }

    #[test]
    fn exactly_one_master_at_all_times() {
        let mut g = group_with_replicas(3);
        for step in 1..=20u64 {
            let now = t(step * 10);
            // All alive: heartbeats from everyone.
            for i in 0..3 {
                g.heartbeat(now, InstanceId(i)).unwrap();
            }
            g.supervise(now).unwrap();
            let masters = (0..3)
                .filter(|&i| g.role_of(InstanceId(i)) == Some(Role::Master))
                .count();
            assert_eq!(masters, 1);
        }
        assert_eq!(g.failovers(), 0);
    }

    #[test]
    fn silent_master_triggers_failover() {
        let mut g = group_with_replicas(2);
        // Slave keeps beating; master goes silent after t=0.
        for step in 1..=5u64 {
            let now = t(step * 10);
            g.heartbeat(now, InstanceId(1)).unwrap();
            let promoted = g.supervise(now).unwrap();
            if now <= t(20) {
                assert_eq!(promoted, None, "within tolerance at {now}");
            } else {
                // Detection at the first tick past 2 missed periods.
                assert_eq!(promoted, Some(InstanceId(1)));
                assert_eq!(g.master(), Some(InstanceId(1)));
                assert_eq!(g.failovers(), 1);
                // Gap counted from last heartbeat to detection.
                assert_eq!(g.output_gap(), now.saturating_since(t(0)));
                return;
            }
        }
        panic!("failover never happened");
    }

    #[test]
    fn ecu_failure_fails_over_immediately() {
        let mut g = group_with_replicas(3);
        let promoted = g.fail_ecu(t(5), EcuId(0)).unwrap();
        assert_eq!(promoted, Some(InstanceId(1)));
        assert_eq!(g.healthy(), 2);
        // Losing a slave ECU does not change the master.
        assert_eq!(g.fail_ecu(t(6), EcuId(2)).unwrap(), None);
        assert_eq!(g.master(), Some(InstanceId(1)));
    }

    #[test]
    fn all_replicas_failing_is_reported() {
        let mut g = group_with_replicas(2);
        g.fail_ecu(t(1), EcuId(1)).unwrap();
        let err = g.fail_ecu(t(2), EcuId(0)).unwrap_err();
        assert_eq!(err, RedundancyError::AllReplicasFailed);
    }

    #[test]
    fn failed_replicas_cannot_heartbeat_back_to_life() {
        let mut g = group_with_replicas(2);
        g.fail_ecu(t(1), EcuId(0)).unwrap();
        g.heartbeat(t(2), InstanceId(0)).unwrap();
        assert_eq!(g.role_of(InstanceId(0)), Some(Role::Failed));
    }

    #[test]
    fn duplicate_and_unknown_replicas_rejected() {
        let mut g = group_with_replicas(1);
        assert_eq!(
            g.register(t(0), InstanceId(0), EcuId(9)),
            Err(RedundancyError::DuplicateReplica(InstanceId(0)))
        );
        assert_eq!(
            g.heartbeat(t(0), InstanceId(9)),
            Err(RedundancyError::UnknownReplica(InstanceId(9)))
        );
    }

    #[test]
    fn promotions_freeze_flight_dumps() {
        let flight = Arc::new(FlightRecorder::new(16));
        flight.arm();
        let mut g = group_with_replicas(3);
        g.attach_flight_recorder(flight.clone());
        g.fail_ecu(t(5), EcuId(0)).unwrap();
        let dumps = flight.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "failover: app app1 -> inst1");
        assert_eq!(dumps[0].events[0].stage, "core.redundancy");
    }

    fn loss_estimate(at: SimTime, loss: f64, band: f64, converged: bool) -> UncertaintyEstimate {
        UncertaintyEstimate {
            at,
            mean: loss,
            sigma: band / 2.0,
            band,
            exceed: 0.0,
            samples: if converged { 50 } else { 2 },
            converged,
        }
    }

    #[test]
    fn clean_link_fails_over_after_a_single_miss() {
        let mut g = group_with_replicas(2);
        // Confidently near-lossless link: one missed beat ≈ certain death.
        // The fixed-count rule (2 tolerated misses) would still be waiting.
        let est = loss_estimate(t(11), 0.01, 0.02, true);
        g.heartbeat(t(11), InstanceId(1)).unwrap();
        let promoted = g.supervise_confident(t(11), &est, 0.95).unwrap();
        assert_eq!(promoted, Some(InstanceId(1)));
        assert_eq!(g.failovers(), 1);
    }

    #[test]
    fn lossy_link_demands_more_silence_than_the_fixed_count() {
        let mut g = group_with_replicas(2);
        // Loss upper edge 0.5: two missed beats leave P(dead) = 0.75 < gate,
        // where the fixed-count rule would already have condemned the
        // master. Five misses push P(dead) past 0.95.
        let est = |at| loss_estimate(at, 0.4, 0.1, true);
        for step in 1..=4u64 {
            let now = t(step * 10 + 1);
            g.heartbeat(now, InstanceId(1)).unwrap();
            assert_eq!(
                g.supervise_confident(now, &est(now), 0.95).unwrap(),
                None,
                "silence not yet conclusive at {now}"
            );
            assert_eq!(g.role_of(InstanceId(0)), Some(Role::Master));
        }
        let now = t(51);
        g.heartbeat(now, InstanceId(1)).unwrap();
        assert_eq!(
            g.supervise_confident(now, &est(now), 0.95).unwrap(),
            Some(InstanceId(1))
        );
    }

    #[test]
    fn unconverged_estimate_falls_back_to_fixed_count() {
        let mut g = group_with_replicas(2);
        let est = loss_estimate(t(31), 0.0, 1.0, false);
        g.heartbeat(t(31), InstanceId(1)).unwrap();
        // 3 periods of silence > 2 tolerated misses: the fixed-count
        // fallback fires exactly as `supervise` would.
        assert_eq!(
            g.supervise_confident(t(31), &est, 0.95).unwrap(),
            Some(InstanceId(1))
        );
    }

    #[test]
    #[should_panic(expected = "confidence gate in (0, 1)")]
    fn confident_supervision_rejects_degenerate_gates() {
        let mut g = group_with_replicas(2);
        let est = loss_estimate(t(0), 0.0, 0.0, true);
        let _ = g.supervise_confident(t(0), &est, 1.0);
    }

    #[test]
    fn failover_latency_shrinks_with_faster_heartbeat() {
        // Detection bound = heartbeat period * tolerated misses; verify the
        // mechanism honors it for two configurations.
        for (period_ms, misses) in [(10u64, 2u32), (2, 2)] {
            let mut g = RedundancyGroup::new(AppId(1), ms(period_ms)).with_tolerated_misses(misses);
            g.register(t(0), InstanceId(0), EcuId(0)).unwrap();
            g.register(t(0), InstanceId(1), EcuId(1)).unwrap();
            // Master dies at t=0; slave beats every period; supervise at
            // every period boundary.
            let mut detected_at = None;
            for step in 1..=50 {
                let now = t(step * period_ms);
                g.heartbeat(now, InstanceId(1)).unwrap();
                if g.supervise(now).unwrap().is_some() {
                    detected_at = Some(now);
                    break;
                }
            }
            let bound = ms(period_ms) * u64::from(misses) + ms(period_ms);
            let detected = detected_at.expect("failover must happen");
            assert!(
                detected.saturating_since(t(0)) <= bound,
                "period {period_ms} ms: detected {detected} > bound {bound}"
            );
        }
    }
}
