//! Replica state synchronization.
//!
//! Two places in the paper need application state to move between
//! instances: phase 2 of the staged update (§3.2: "all internal states need
//! to be synchronized with the existing application version") and redundant
//! instances (§3.3: "synchronized applications across these ECUs").
//!
//! [`ReplicaState`] is a versioned key/value store; a standby replica (or a
//! freshly started update instance) catches up either with a full
//! [`Snapshot`] or with an incremental [`Delta`] since its last known
//! version. Deltas carry tombstones, so deletions propagate; integrity is
//! checked with a SHA-256 digest over the canonical encoding.

use dynplat_common::time::SimDuration;
use dynplat_security::sha256::sha256;
use std::collections::BTreeMap;
use std::fmt;

/// One synchronized entry: version and value (`None` = tombstone).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    version: u64,
    value: Option<Vec<u8>>,
}

/// Versioned application state on one replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaState {
    version: u64,
    entries: BTreeMap<String, Entry>,
}

/// An incremental state transfer: all entries newer than `from_version`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    /// Version the receiver must already have.
    pub from_version: u64,
    /// Version the receiver holds after applying.
    pub to_version: u64,
    entries: Vec<(String, Entry)>,
}

impl Delta {
    /// Number of entries carried (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes on the wire (keys + values + fixed per-entry header).
    pub fn wire_size(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, e)| k.len() + e.value.as_ref().map_or(0, Vec::len) + 16)
            .sum()
    }

    /// Transfer time at `rate_kib_per_s` — phase 2's duration input.
    pub fn transfer_time(&self, rate_kib_per_s: u64) -> SimDuration {
        assert!(rate_kib_per_s > 0, "rate must be non-zero");
        SimDuration::from_secs_f64(self.wire_size() as f64 / (rate_kib_per_s as f64 * 1024.0))
    }
}

/// A full state snapshot (bootstrap of a brand-new replica).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    state: ReplicaState,
}

impl Snapshot {
    /// Payload bytes on the wire.
    pub fn wire_size(&self) -> usize {
        self.state
            .entries
            .iter()
            .map(|(k, e)| k.len() + e.value.as_ref().map_or(0, Vec::len) + 16)
            .sum()
    }
}

/// Errors of state synchronization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The delta's `from_version` does not match the receiver's version —
    /// a gap exists and a snapshot (or an older delta) is required.
    VersionGap {
        /// Receiver's version.
        have: u64,
        /// Version the delta builds on.
        need: u64,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::VersionGap { have, need } => {
                write!(f, "state version gap: have {have}, delta builds on {need}")
            }
        }
    }
}

impl std::error::Error for SyncError {}

impl ReplicaState {
    /// Creates empty state at version 0.
    pub fn new() -> Self {
        ReplicaState::default()
    }

    /// Current state version (bumps on every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of live (non-tombstone) keys.
    pub fn len(&self) -> usize {
        self.entries.values().filter(|e| e.value.is_some()).count()
    }

    /// `true` when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).and_then(|e| e.value.as_deref())
    }

    /// Writes a key.
    pub fn set(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.version += 1;
        self.entries.insert(
            key.into(),
            Entry {
                version: self.version,
                value: Some(value),
            },
        );
    }

    /// Deletes a key (recorded as a tombstone so the deletion syncs).
    pub fn remove(&mut self, key: &str) -> bool {
        if self.get(key).is_none() {
            return false;
        }
        self.version += 1;
        self.entries.insert(
            key.to_owned(),
            Entry {
                version: self.version,
                value: None,
            },
        );
        true
    }

    /// All entries changed after `from_version`, as an incremental delta.
    pub fn delta_since(&self, from_version: u64) -> Delta {
        let entries: Vec<(String, Entry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.version > from_version)
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        Delta {
            from_version,
            to_version: self.version,
            entries,
        }
    }

    /// Applies a delta produced by a peer at the same history.
    ///
    /// # Errors
    ///
    /// [`SyncError::VersionGap`] when the receiver is behind the delta's
    /// base (entries would be missed); apply an older delta or a snapshot
    /// first.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<(), SyncError> {
        if self.version < delta.from_version {
            return Err(SyncError::VersionGap {
                have: self.version,
                need: delta.from_version,
            });
        }
        for (key, entry) in &delta.entries {
            let newer = self
                .entries
                .get(key)
                .is_none_or(|mine| mine.version < entry.version);
            if newer {
                self.entries.insert(key.clone(), entry.clone());
            }
        }
        self.version = self.version.max(delta.to_version);
        Ok(())
    }

    /// Captures a full snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: self.clone(),
        }
    }

    /// Replaces this state with a snapshot (bootstrap).
    pub fn restore(&mut self, snapshot: &Snapshot) {
        *self = snapshot.state.clone();
    }

    /// SHA-256 over the canonical encoding — replicas agree iff digests
    /// agree.
    pub fn digest(&self) -> [u8; 32] {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.version.to_be_bytes());
        for (k, e) in &self.entries {
            buf.extend_from_slice(&(k.len() as u32).to_be_bytes());
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(&e.version.to_be_bytes());
            match &e.value {
                Some(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&(v.len() as u32).to_be_bytes());
                    buf.extend_from_slice(v);
                }
                None => buf.push(0),
            }
        }
        sha256(&buf)
    }

    /// Drops tombstones at or below `up_to_version` (checkpoint trimming);
    /// only safe once every replica has passed that version.
    pub fn compact(&mut self, up_to_version: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, e| e.value.is_some() || e.version > up_to_version);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn primary_with_history() -> ReplicaState {
        let mut s = ReplicaState::new();
        s.set("trajectory", vec![1, 2, 3]);
        s.set("speed", vec![80]);
        s.set("trajectory", vec![4, 5, 6]); // overwrite
        s.remove("speed");
        s.set("lane", vec![2]);
        s
    }

    #[test]
    fn basic_store_semantics() {
        let s = primary_with_history();
        assert_eq!(s.get("trajectory"), Some(&[4u8, 5, 6][..]));
        assert_eq!(s.get("speed"), None);
        assert_eq!(s.get("lane"), Some(&[2u8][..]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.version(), 5);
    }

    #[test]
    fn snapshot_bootstraps_a_fresh_replica() {
        let primary = primary_with_history();
        let mut standby = ReplicaState::new();
        standby.restore(&primary.snapshot());
        assert_eq!(standby.digest(), primary.digest());
        assert_eq!(standby.version(), primary.version());
    }

    #[test]
    fn delta_catches_a_standby_up() {
        let mut primary = primary_with_history();
        let mut standby = ReplicaState::new();
        standby.restore(&primary.snapshot());
        let synced_at = standby.version();

        primary.set("trajectory", vec![9]);
        primary.set("obstacle", vec![1]);
        primary.remove("lane");

        let delta = primary.delta_since(synced_at);
        assert_eq!(delta.len(), 3, "two writes and one tombstone");
        standby.apply_delta(&delta).expect("applies");
        assert_eq!(standby.digest(), primary.digest());
        assert_eq!(standby.get("lane"), None, "deletion propagated");
    }

    #[test]
    fn delta_is_much_smaller_than_snapshot_for_small_changes() {
        let mut primary = ReplicaState::new();
        for k in 0..1000 {
            primary.set(format!("key{k}"), vec![0u8; 64]);
        }
        let synced_at = primary.version();
        primary.set("key1", vec![1u8; 64]);
        let delta = primary.delta_since(synced_at);
        let snapshot = primary.snapshot();
        assert!(delta.wire_size() * 100 < snapshot.wire_size());
        // Transfer time scales with wire size.
        assert!(
            delta.transfer_time(50 * 1024) < SimDuration::from_millis(1),
            "tiny delta transfers in sub-millisecond"
        );
    }

    #[test]
    fn version_gap_is_refused() {
        let mut primary = primary_with_history();
        let mut standby = ReplicaState::new(); // version 0, never synced
        primary.set("x", vec![1]);
        let delta = primary.delta_since(4); // builds on version 4
        let err = standby.apply_delta(&delta).unwrap_err();
        assert_eq!(err, SyncError::VersionGap { have: 0, need: 4 });
        // Snapshot resolves the gap.
        standby.restore(&primary.snapshot());
        assert_eq!(standby.digest(), primary.digest());
    }

    #[test]
    fn repeated_deltas_are_idempotent() {
        let mut primary = primary_with_history();
        let mut standby = ReplicaState::new();
        standby.restore(&primary.snapshot());
        let base = standby.version();
        primary.set("a", vec![1]);
        let delta = primary.delta_since(base);
        standby.apply_delta(&delta).expect("first");
        standby.apply_delta(&delta).expect("second (idempotent)");
        assert_eq!(standby.digest(), primary.digest());
    }

    #[test]
    fn chained_deltas_converge() {
        let mut primary = ReplicaState::new();
        let mut standby = ReplicaState::new();
        for round in 0..20u32 {
            let base = standby.version();
            primary.set(format!("k{}", round % 5), vec![round as u8]);
            if round % 3 == 0 {
                primary.remove(&format!("k{}", (round + 1) % 5));
            }
            let delta = primary.delta_since(base);
            standby.apply_delta(&delta).expect("chain applies");
            assert_eq!(standby.digest(), primary.digest(), "round {round}");
        }
    }

    #[test]
    fn compaction_drops_old_tombstones_only() {
        let mut s = primary_with_history(); // tombstone for "speed" at v4
        let v = s.version();
        let dropped = s.compact(v);
        assert_eq!(dropped, 1);
        assert_eq!(s.len(), 2, "live keys survive compaction");
        // Digest changes (the tombstone is gone) but content does not.
        assert_eq!(s.get("trajectory"), Some(&[4u8, 5, 6][..]));
    }
}
