//! The dynamic platform — the paper's primary contribution (§1.1, Fig. 2).
//!
//! "These applications are hosted on the dynamic platform, which forms the
//! core of the new E/E architecture. This dynamic platform can logically be
//! located across multiple hardware elements and operating systems. … The
//! dynamic platform integrates functionality common to multiple
//! applications": communication services, scheduling of deterministic and
//! non-deterministic tasks, logging, persistence and diagnosis.
//!
//! * [`app`] — application manifests and the lifecycle state machine (the
//!   app is the smallest unit of addition and update);
//! * [`process`] — memory freedom-of-interference: process-group
//!   assignment driven by MMU availability (§3.1 "Memory");
//! * [`node`] — one platform node per ECU: admission control, process
//!   manager, instances, monitors;
//! * [`platform`] — the multi-node platform: secure installation (signed
//!   packages, update master for weak ECUs), service offers/subscriptions,
//!   authorized binding (§4.2), lifecycle commands;
//! * [`update`] — update safety (§3.2): the 4-phase staged update, the
//!   stop-update-restart baseline, the fragile centralized clock-switch
//!   baseline, and dependency-ordered distributed update paths;
//! * [`redundancy`] — fail-operational behavior (§3.3): master/slave
//!   instance groups with heartbeat supervision and failover;
//! * [`degradation`] — the criticality-aware degradation ladder (§3.3):
//!   Full → Degraded → LimpHome under fault pressure, shedding
//!   non-deterministic load before deterministic load, with hysteresis on
//!   recovery;
//! * [`campaign`] — fleet update campaigns: per-vehicle backend validation
//!   and canary-wave rollout with automatic halt (§3.2);
//! * [`sync`] — versioned replica state with snapshot/delta transfer, the
//!   "synchronize internal states" machinery of §3.2 phase 2 and §3.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod campaign;
pub mod degradation;
pub mod node;
pub mod platform;
pub mod process;
pub mod redundancy;
pub mod sync;
pub mod update;

pub use app::{AppManifest, LifecycleState};
pub use campaign::{CampaignPolicy, CampaignReport, UpdateCampaign, VehicleConfig, VehicleOutcome};
pub use degradation::{DegradationConfig, DegradationManager, UncertaintyGates};
pub use node::{NodeError, PlatformNode};
pub use platform::{DynamicPlatform, PlatformError};
pub use process::{ProcessGroupId, ProcessManager};
pub use redundancy::{RedundancyError, RedundancyGroup, Role};
pub use sync::{Delta, ReplicaState, Snapshot, SyncError};
pub use update::{
    centralized_switch_update, staged_update, stop_restart_update, UpdateReport, UpdateStrategy,
};
