//! Criticality-aware degradation ladder (§3.3).
//!
//! When fault pressure rises — lost messages, failed nodes, missed
//! deadlines — the platform walks the ladder Full → Degraded → LimpHome,
//! shedding non-deterministic (infotainment) load first so deterministic
//! control functions keep their resources. Escalation is immediate;
//! recovery is guarded by hysteresis (pressure must stay below a fraction
//! of the entry threshold for a hold period) so a flapping fault source
//! cannot bounce the vehicle between levels.

use crate::platform::DynamicPlatform;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, AppKind, Asil, DegradationLevel, UncertaintyEstimate};
use dynplat_obs::{FlightRecorder, TraceCtx};
use std::sync::Arc;

/// Thresholds and hysteresis of the ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationConfig {
    /// Fault pressure at or above which the platform enters
    /// [`DegradationLevel::Degraded`].
    pub degraded_threshold: f64,
    /// Fault pressure at or above which the platform enters
    /// [`DegradationLevel::LimpHome`].
    pub limp_threshold: f64,
    /// Recovery hysteresis: pressure must fall below
    /// `recovery_margin x` the entry threshold of the current level before
    /// the hold timer starts.
    pub recovery_margin: f64,
    /// How long pressure must stay below the recovery floor before the
    /// platform steps one level back up.
    pub recovery_hold: SimDuration,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            degraded_threshold: 0.10,
            limp_threshold: 0.35,
            recovery_margin: 0.5,
            recovery_hold: SimDuration::from_millis(500),
        }
    }
}

/// Gates of the uncertainty-driven ladder mode
/// ([`DegradationManager::observe_estimate`]): instead of comparing a point
/// pressure against a threshold, the ladder descends when the *probability*
/// of a boundary exceedance clears a confidence gate, and ascends only when
/// that probability has collapsed **and** the confidence band has tightened
/// — hysteresis in probability space rather than value space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintyGates {
    /// Exceedance probability at or above which the ladder descends.
    pub trip_confidence: f64,
    /// Exceedance probability at or below which recovery may begin.
    pub clear_confidence: f64,
    /// Recovery also requires the confidence band half-width to have
    /// tightened to at most this fraction of the degraded threshold — a
    /// low exceedance estimate with a wide band is ignorance, not health.
    pub tighten_fraction: f64,
}

impl Default for UncertaintyGates {
    fn default() -> Self {
        UncertaintyGates {
            trip_confidence: 0.95,
            clear_confidence: 0.10,
            tighten_fraction: 0.5,
        }
    }
}

impl UncertaintyGates {
    /// # Panics
    ///
    /// Panics unless `0 <= clear < trip <= 1` and `tighten_fraction > 0`.
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.trip_confidence)
                && (0.0..=1.0).contains(&self.clear_confidence)
                && self.clear_confidence < self.trip_confidence,
            "gates must satisfy 0 <= clear < trip <= 1"
        );
        assert!(
            self.tighten_fraction > 0.0,
            "tighten fraction must be positive"
        );
    }
}

/// The ladder's state machine. Feed it a fault-pressure signal (any
/// monotone badness measure in `[0, 1]`, e.g. the loss rate over the last
/// observation window) and it yields level transitions.
#[derive(Clone, Debug)]
pub struct DegradationManager {
    config: DegradationConfig,
    level: DegradationLevel,
    below_floor_since: Option<SimTime>,
    transitions: Vec<(SimTime, DegradationLevel)>,
    flight: Option<Arc<FlightRecorder>>,
}

impl DegradationManager {
    /// Creates a manager at [`DegradationLevel::Full`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < degraded_threshold <= limp_threshold` and
    /// `recovery_margin` is in `(0, 1]`.
    pub fn new(config: DegradationConfig) -> Self {
        assert!(
            config.degraded_threshold > 0.0 && config.degraded_threshold <= config.limp_threshold,
            "thresholds must satisfy 0 < degraded <= limp"
        );
        assert!(
            config.recovery_margin > 0.0 && config.recovery_margin <= 1.0,
            "recovery margin must be in (0, 1]"
        );
        DegradationManager {
            config,
            level: DegradationLevel::Full,
            below_floor_since: None,
            transitions: Vec::new(),
            flight: None,
        }
    }

    /// Attaches a flight recorder: every ladder transition lands in its
    /// event ring (stage `core.degradation`) and, when the recorder is
    /// armed, freezes an incident dump — a level change is exactly the
    /// moment the preceding event window matters.
    pub fn attach_flight_recorder(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// The current level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Every transition so far, in time order.
    pub fn transitions(&self) -> &[(SimTime, DegradationLevel)] {
        &self.transitions
    }

    /// `true` if an application of `kind` at `asil` may run right now.
    pub fn admits(&self, kind: AppKind, asil: Asil) -> bool {
        self.level.admits(kind, asil)
    }

    /// The pressure below which recovery from the current level may begin.
    fn recovery_floor(&self) -> f64 {
        let entry = match self.level {
            DegradationLevel::Full => return f64::INFINITY, // nothing to recover from
            DegradationLevel::Degraded => self.config.degraded_threshold,
            DegradationLevel::LimpHome => self.config.limp_threshold,
        };
        entry * self.config.recovery_margin
    }

    /// Feeds one pressure observation at `now`. Returns the new level if
    /// this observation caused a transition.
    ///
    /// Escalation takes effect immediately (and may jump straight to
    /// limp-home); recovery steps down one level at a time after the
    /// pressure has stayed under the recovery floor for the configured
    /// hold.
    pub fn observe(&mut self, now: SimTime, pressure: f64) -> Option<DegradationLevel> {
        let target = if pressure >= self.config.limp_threshold {
            DegradationLevel::LimpHome
        } else if pressure >= self.config.degraded_threshold {
            DegradationLevel::Degraded
        } else {
            DegradationLevel::Full
        };
        if target > self.level {
            self.level = target;
            self.below_floor_since = None;
            self.transitions.push((now, target));
            observe_transition(target);
            self.flight_transition(now, target, pressure);
            return Some(target);
        }
        if self.level == DegradationLevel::Full {
            return None;
        }
        if pressure < self.recovery_floor() {
            let since = *self.below_floor_since.get_or_insert(now);
            if now.saturating_since(since) >= self.config.recovery_hold {
                let next = match self.level {
                    DegradationLevel::LimpHome => DegradationLevel::Degraded,
                    _ => DegradationLevel::Full,
                };
                self.level = next;
                self.below_floor_since = Some(now);
                self.transitions.push((now, next));
                observe_transition(next);
                self.flight_transition(now, next, pressure);
                return Some(next);
            }
        } else {
            // Pressure bounced back above the floor: restart the hold.
            self.below_floor_since = None;
        }
        None
    }

    /// Feeds one distribution-valued observation at `now` — the
    /// uncertainty-driven mode. Returns the new level if this observation
    /// caused a transition.
    ///
    /// Descent fires when the estimate's boundary-exceedance probability
    /// clears `gates.trip_confidence` (targeting limp-home when even the
    /// estimated *level* is past the limp threshold); an unconverged
    /// estimate never descends. Ascent requires the exceedance probability
    /// at or below `gates.clear_confidence` **and** the band tightened to
    /// `gates.tighten_fraction` of the degraded threshold, sustained for
    /// the configured recovery hold — the probability-space analogue of
    /// [`DegradationManager::observe`]'s hysteresis.
    ///
    /// # Panics
    ///
    /// Panics on gates outside their documented ranges.
    pub fn observe_estimate(
        &mut self,
        now: SimTime,
        est: &UncertaintyEstimate,
        gates: &UncertaintyGates,
    ) -> Option<DegradationLevel> {
        gates.validate();
        if est.exceeds_with_confidence(gates.trip_confidence) {
            let target = if est.mean >= self.config.limp_threshold {
                DegradationLevel::LimpHome
            } else {
                DegradationLevel::Degraded
            };
            if target > self.level {
                self.level = target;
                self.below_floor_since = None;
                self.transitions.push((now, target));
                observe_transition(target);
                self.flight_transition(now, target, est.exceed);
                return Some(target);
            }
        }
        if self.level == DegradationLevel::Full {
            return None;
        }
        let band_tight = est.band <= gates.tighten_fraction * self.config.degraded_threshold;
        let cleared = est.converged && est.exceed <= gates.clear_confidence && band_tight;
        if cleared {
            let since = *self.below_floor_since.get_or_insert(now);
            if now.saturating_since(since) >= self.config.recovery_hold {
                let next = match self.level {
                    DegradationLevel::LimpHome => DegradationLevel::Degraded,
                    _ => DegradationLevel::Full,
                };
                self.level = next;
                self.below_floor_since = Some(now);
                self.transitions.push((now, next));
                observe_transition(next);
                self.flight_transition(now, next, est.exceed);
                return Some(next);
            }
        } else {
            // Belief bounced back up (or the band re-widened): restart.
            self.below_floor_since = None;
        }
        None
    }

    fn flight_transition(&self, now: SimTime, level: DegradationLevel, pressure: f64) {
        if let Some(fr) = &self.flight {
            let t = now.as_nanos();
            fr.record(
                t,
                TraceCtx::NONE,
                "core.degradation",
                format!("-> {level:?} (pressure {pressure:.3})"),
            );
            fr.trigger_if_armed(t, &format!("ladder transition -> {level:?}"));
        }
    }

    /// Which of `apps` must be shed at the current level, NDA-first by
    /// construction of [`DegradationLevel::admits`].
    pub fn shed_plan(&self, apps: impl IntoIterator<Item = (AppId, AppKind, Asil)>) -> Vec<AppId> {
        apps.into_iter()
            .filter(|(_, kind, asil)| !self.level.admits(*kind, *asil))
            .map(|(id, _, _)| id)
            .collect()
    }

    /// Applies the current level to a running platform: stops every
    /// serving application the level no longer admits. Returns the stopped
    /// app ids (empty at [`DegradationLevel::Full`]).
    pub fn enforce(&self, now: SimTime, platform: &mut DynamicPlatform) -> Vec<AppId> {
        let running: Vec<(AppId, AppKind, Asil)> = platform
            .nodes()
            .flat_map(|(_, node)| {
                node.instances()
                    .filter(|(_, inst)| inst.state.is_serving())
                    .map(|(_, inst)| {
                        (
                            inst.manifest.id(),
                            inst.manifest.kind(),
                            inst.manifest.asil(),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut shed = self.shed_plan(running);
        shed.sort();
        shed.dedup();
        shed.retain(|app| platform.stop_app(now, *app).is_ok());
        shed
    }
}

impl Default for DegradationManager {
    fn default() -> Self {
        DegradationManager::new(DegradationConfig::default())
    }
}

/// Emits one ladder transition into the observability registry: a
/// transition counter (total plus per direction) and a level gauge
/// (0 = Full, 1 = Degraded, 2 = LimpHome).
fn observe_transition(level: DegradationLevel) {
    dynplat_obs::counter!("core.degradation.transitions").inc();
    match level {
        DegradationLevel::Full => dynplat_obs::counter!("core.degradation.to_full").inc(),
        DegradationLevel::Degraded => dynplat_obs::counter!("core.degradation.to_degraded").inc(),
        DegradationLevel::LimpHome => dynplat_obs::counter!("core.degradation.to_limp_home").inc(),
    }
    let ordinal = match level {
        DegradationLevel::Full => 0,
        DegradationLevel::Degraded => 1,
        DegradationLevel::LimpHome => 2,
    };
    dynplat_obs::gauge!("core.degradation.level").set(ordinal);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn manager() -> DegradationManager {
        DegradationManager::new(DegradationConfig {
            degraded_threshold: 0.1,
            limp_threshold: 0.4,
            recovery_margin: 0.5,
            recovery_hold: SimDuration::from_millis(100),
        })
    }

    #[test]
    fn escalates_immediately_and_in_jumps() {
        let mut m = manager();
        assert_eq!(m.observe(ms(0), 0.05), None);
        assert_eq!(m.observe(ms(1), 0.2), Some(DegradationLevel::Degraded));
        assert_eq!(m.observe(ms(2), 0.9), Some(DegradationLevel::LimpHome));
        // Straight jump from Full works too.
        let mut j = manager();
        assert_eq!(j.observe(ms(0), 0.9), Some(DegradationLevel::LimpHome));
    }

    #[test]
    fn recovery_requires_hold_below_floor() {
        let mut m = manager();
        m.observe(ms(0), 0.2);
        assert_eq!(m.level(), DegradationLevel::Degraded);
        // Floor is 0.05; 0.07 does not start recovery.
        assert_eq!(m.observe(ms(10), 0.07), None);
        assert_eq!(m.observe(ms(200), 0.07), None);
        // Below the floor, but the hold has not elapsed yet.
        assert_eq!(m.observe(ms(210), 0.01), None);
        assert_eq!(m.observe(ms(250), 0.01), None);
        // Hold elapsed: one step back up.
        assert_eq!(m.observe(ms(310), 0.01), Some(DegradationLevel::Full));
    }

    #[test]
    fn flapping_pressure_restarts_the_hold() {
        let mut m = manager();
        m.observe(ms(0), 0.5);
        assert_eq!(m.level(), DegradationLevel::LimpHome);
        assert_eq!(m.observe(ms(10), 0.01), None);
        // A spike above the floor (0.2) resets the timer...
        assert_eq!(m.observe(ms(60), 0.25), None);
        // ...so 100 ms from the *first* quiet sample is not enough.
        assert_eq!(m.observe(ms(110), 0.01), None);
        // 100 ms after the restart it steps down one level only.
        assert_eq!(m.observe(ms(210), 0.01), Some(DegradationLevel::Degraded));
        assert_eq!(m.level(), DegradationLevel::Degraded);
    }

    #[test]
    fn transitions_are_logged_in_order() {
        let mut m = manager();
        m.observe(ms(0), 0.2);
        m.observe(ms(5), 0.9);
        m.observe(ms(10), 0.0);
        m.observe(ms(120), 0.0);
        let levels: Vec<DegradationLevel> = m.transitions().iter().map(|(_, l)| *l).collect();
        assert_eq!(
            levels,
            vec![
                DegradationLevel::Degraded,
                DegradationLevel::LimpHome,
                DegradationLevel::Degraded
            ]
        );
    }

    #[test]
    fn ladder_transitions_freeze_flight_dumps() {
        let flight = Arc::new(FlightRecorder::new(32));
        flight.arm();
        let mut m = manager();
        m.attach_flight_recorder(flight.clone());
        m.observe(ms(0), 0.2); // -> Degraded
        m.observe(ms(5), 0.9); // -> LimpHome
        let dumps = flight.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].reason, "ladder transition -> Degraded");
        assert_eq!(dumps[1].reason, "ladder transition -> LimpHome");
        // The second dump's window contains the first transition's event.
        assert!(dumps[1]
            .events
            .iter()
            .any(|e| e.stage == "core.degradation" && e.detail.contains("Degraded")));
    }

    fn est(at: SimTime, mean: f64, band: f64, exceed: f64, converged: bool) -> UncertaintyEstimate {
        UncertaintyEstimate {
            at,
            mean,
            sigma: band / 2.0,
            band,
            exceed,
            samples: if converged { 40 } else { 2 },
            converged,
        }
    }

    #[test]
    fn estimate_mode_descends_only_with_confidence() {
        let mut m = manager();
        let gates = UncertaintyGates::default();
        // High mean but modest exceedance probability: no descent — the
        // point-threshold mode would already have tripped here.
        assert_eq!(
            m.observe_estimate(ms(0), &est(ms(0), 0.15, 0.1, 0.6, true), &gates),
            None
        );
        // Confident exceedance of the degraded boundary descends...
        assert_eq!(
            m.observe_estimate(ms(1), &est(ms(1), 0.15, 0.05, 0.97, true), &gates),
            Some(DegradationLevel::Degraded)
        );
        // ...and a confidently limp-scale mean jumps to limp-home.
        assert_eq!(
            m.observe_estimate(ms(2), &est(ms(2), 0.8, 0.05, 0.99, true), &gates),
            Some(DegradationLevel::LimpHome)
        );
    }

    #[test]
    fn estimate_mode_never_descends_unconverged() {
        let mut m = manager();
        let gates = UncertaintyGates::default();
        // Even certain-looking exceedance is ignored during warm-up.
        assert_eq!(
            m.observe_estimate(ms(0), &est(ms(0), 0.9, 1.0, 1.0, false), &gates),
            None
        );
        assert_eq!(m.level(), DegradationLevel::Full);
    }

    #[test]
    fn estimate_mode_ascends_only_when_band_has_tightened() {
        let mut m = manager();
        let gates = UncertaintyGates::default();
        m.observe_estimate(ms(0), &est(ms(0), 0.2, 0.05, 0.99, true), &gates);
        assert_eq!(m.level(), DegradationLevel::Degraded);
        // Low exceedance but a wide band (> 0.5 * 0.1): ignorance, no hold.
        assert_eq!(
            m.observe_estimate(ms(10), &est(ms(10), 0.02, 0.2, 0.05, true), &gates),
            None
        );
        assert_eq!(
            m.observe_estimate(ms(200), &est(ms(200), 0.02, 0.2, 0.05, true), &gates),
            None
        );
        // Band tight: hold starts now, not at ms(10).
        assert_eq!(
            m.observe_estimate(ms(210), &est(ms(210), 0.02, 0.03, 0.05, true), &gates),
            None
        );
        assert_eq!(
            m.observe_estimate(ms(310), &est(ms(310), 0.02, 0.03, 0.05, true), &gates),
            Some(DegradationLevel::Full)
        );
    }

    #[test]
    fn estimate_mode_hold_restarts_on_belief_bounce() {
        let mut m = manager();
        let gates = UncertaintyGates::default();
        m.observe_estimate(ms(0), &est(ms(0), 0.5, 0.05, 0.99, true), &gates);
        assert_eq!(m.level(), DegradationLevel::LimpHome);
        assert_eq!(
            m.observe_estimate(ms(10), &est(ms(10), 0.02, 0.03, 0.05, true), &gates),
            None
        );
        // Belief bounces to ambiguous mid-hold: restart.
        assert_eq!(
            m.observe_estimate(ms(60), &est(ms(60), 0.06, 0.03, 0.5, true), &gates),
            None
        );
        assert_eq!(
            m.observe_estimate(ms(110), &est(ms(110), 0.02, 0.03, 0.05, true), &gates),
            None
        );
        // One step at a time, 100 ms after the restart.
        assert_eq!(
            m.observe_estimate(ms(210), &est(ms(210), 0.02, 0.03, 0.05, true), &gates),
            Some(DegradationLevel::Degraded)
        );
    }

    #[test]
    #[should_panic(expected = "gates must satisfy")]
    fn inverted_gates_panic() {
        let mut m = manager();
        let gates = UncertaintyGates {
            trip_confidence: 0.1,
            clear_confidence: 0.9,
            tighten_fraction: 0.5,
        };
        m.observe_estimate(ms(0), &est(ms(0), 0.0, 0.0, 0.0, true), &gates);
    }

    #[test]
    fn shed_plan_drops_nda_before_da() {
        let mut m = manager();
        let apps = [
            (AppId(1), AppKind::Deterministic, Asil::C),
            (AppId(2), AppKind::NonDeterministic, Asil::Qm),
            (AppId(3), AppKind::NonDeterministic, Asil::B),
            (AppId(4), AppKind::Deterministic, Asil::Qm),
        ];
        assert!(m.shed_plan(apps).is_empty());
        m.observe(ms(0), 0.2);
        assert_eq!(m.shed_plan(apps), vec![AppId(2)]);
        m.observe(ms(1), 0.9);
        assert_eq!(m.shed_plan(apps), vec![AppId(2), AppId(3), AppId(4)]);
        // The ASIL-C control loop survives to the end of the ladder.
        assert!(m.admits(AppKind::Deterministic, Asil::C));
    }
}
