//! Fleet update campaigns (§3.2).
//!
//! "We propose to generate a schedule from the model and test this schedule
//! in simulations in the backend, also against the current configuration of
//! the installing vehicle." A fleet is heterogeneous: every vehicle carries
//! its own set of installed applications and versions, free resources and
//! options. A [`UpdateCampaign`] therefore validates the update against
//! *each* vehicle's configuration in the backend, and rolls out in waves
//! (canary → ramp → full) with an automatic halt when a wave's failure rate
//! exceeds the policy bound.

use dynplat_common::rng::seeded_rng;
use dynplat_common::rng::Rng;
use dynplat_common::{AppId, VehicleId};
use dynplat_security::package::Version;
use std::collections::BTreeMap;
use std::fmt;

/// One vehicle's current configuration as known to the backend.
#[derive(Clone, Debug, PartialEq)]
pub struct VehicleConfig {
    /// Vehicle identity.
    pub id: VehicleId,
    /// Installed applications and their versions.
    pub installed: BTreeMap<AppId, Version>,
    /// Free RAM on the target ECU, KiB.
    pub free_memory_kib: u32,
    /// Remaining deterministic CPU headroom on the target ECU (0..1).
    pub cpu_headroom: f64,
}

impl VehicleConfig {
    /// Creates a configuration.
    pub fn new(id: VehicleId, free_memory_kib: u32, cpu_headroom: f64) -> Self {
        VehicleConfig {
            id,
            installed: BTreeMap::new(),
            free_memory_kib,
            cpu_headroom,
        }
    }

    /// Records an installed application (builder style).
    pub fn with_installed(mut self, app: AppId, version: Version) -> Self {
        self.installed.insert(app, version);
        self
    }
}

/// What the update being shipped requires from a vehicle.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateRequirements {
    /// The application being updated.
    pub app: AppId,
    /// The version being shipped.
    pub version: Version,
    /// Memory needed *during* the staged update (both versions resident).
    pub staged_memory_kib: u32,
    /// CPU utilization of the app's task (needed twice during overlap).
    pub utilization: f64,
    /// Provider versions the new app version depends on
    /// (`app -> minimum version`).
    pub depends_on: BTreeMap<AppId, Version>,
}

/// Why the backend refused a vehicle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The app to update is not installed at all.
    NotInstalled,
    /// The installed version is already at or past the shipped one.
    AlreadyCurrent,
    /// Not enough free memory for the staged overlap.
    InsufficientMemory,
    /// Not enough CPU headroom for the overlap.
    InsufficientCpu,
    /// A dependency is missing or too old.
    DependencyUnsatisfied(AppId),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NotInstalled => write!(f, "app not installed"),
            RejectReason::AlreadyCurrent => write!(f, "already at or past this version"),
            RejectReason::InsufficientMemory => write!(f, "insufficient memory for overlap"),
            RejectReason::InsufficientCpu => write!(f, "insufficient CPU headroom for overlap"),
            RejectReason::DependencyUnsatisfied(app) => {
                write!(f, "dependency {app} missing or too old")
            }
        }
    }
}

/// Per-vehicle campaign outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VehicleOutcome {
    /// Updated successfully.
    Updated,
    /// Backend validation refused the vehicle.
    Rejected(RejectReason),
    /// The update was attempted and failed on the vehicle (the staged
    /// procedure rolled back to the old version).
    FailedRolledBack,
    /// The campaign halted before this vehicle's wave.
    NotAttempted,
}

/// Rollout policy: wave sizes as cumulative fleet fractions plus the halt
/// threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignPolicy {
    /// Cumulative fleet fraction per wave, e.g. `[0.02, 0.2, 1.0]`.
    pub waves: Vec<f64>,
    /// Halt the campaign when a completed wave's failure rate (failures /
    /// attempts) exceeds this bound.
    pub max_wave_failure_rate: f64,
}

impl Default for CampaignPolicy {
    fn default() -> Self {
        CampaignPolicy {
            waves: vec![0.02, 0.2, 1.0],
            max_wave_failure_rate: 0.05,
        }
    }
}

/// Validates `requirements` against one vehicle configuration — the
/// backend check the paper calls for.
pub fn validate_vehicle(
    config: &VehicleConfig,
    req: &UpdateRequirements,
) -> Result<(), RejectReason> {
    let Some(current) = config.installed.get(&req.app) else {
        return Err(RejectReason::NotInstalled);
    };
    if *current >= req.version {
        return Err(RejectReason::AlreadyCurrent);
    }
    if config.free_memory_kib < req.staged_memory_kib {
        return Err(RejectReason::InsufficientMemory);
    }
    // Overlap runs old + new side by side: one extra task of the same
    // utilization must fit the headroom.
    if config.cpu_headroom < req.utilization {
        return Err(RejectReason::InsufficientCpu);
    }
    for (dep, min_version) in &req.depends_on {
        match config.installed.get(dep) {
            Some(v) if v.is_compatible_with(*min_version) => {}
            _ => return Err(RejectReason::DependencyUnsatisfied(*dep)),
        }
    }
    Ok(())
}

/// Result of one wave.
#[derive(Clone, Debug, PartialEq)]
pub struct WaveReport {
    /// 0-based wave index.
    pub wave: usize,
    /// Vehicles attempted in this wave.
    pub attempted: usize,
    /// Successful updates.
    pub updated: usize,
    /// Backend rejections (not counted as failures).
    pub rejected: usize,
    /// In-vehicle failures (rolled back).
    pub failed: usize,
}

impl WaveReport {
    /// Failure rate over attempted installs (rejections excluded).
    pub fn failure_rate(&self) -> f64 {
        let installs = self.updated + self.failed;
        if installs == 0 {
            0.0
        } else {
            self.failed as f64 / installs as f64
        }
    }
}

/// Full campaign result.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Per-wave summaries, in rollout order.
    pub waves: Vec<WaveReport>,
    /// Whether the campaign halted early.
    pub halted: bool,
    /// Per-vehicle outcomes.
    pub outcomes: BTreeMap<VehicleId, VehicleOutcome>,
}

impl CampaignReport {
    /// Total vehicles updated.
    pub fn updated(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| **o == VehicleOutcome::Updated)
            .count()
    }

    /// Total in-vehicle failures.
    pub fn failed(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| **o == VehicleOutcome::FailedRolledBack)
            .count()
    }

    /// Total backend rejections.
    pub fn rejected(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| matches!(o, VehicleOutcome::Rejected(_)))
            .count()
    }
}

/// A fleet update campaign.
#[derive(Clone, Debug)]
pub struct UpdateCampaign {
    requirements: UpdateRequirements,
    policy: CampaignPolicy,
    /// Probability that a validated install still fails in the vehicle
    /// (flaky links, power loss, …). The staged procedure rolls back.
    field_failure_probability: f64,
    seed: u64,
}

impl UpdateCampaign {
    /// Creates a campaign with the default canary policy.
    pub fn new(requirements: UpdateRequirements) -> Self {
        UpdateCampaign {
            requirements,
            policy: CampaignPolicy::default(),
            field_failure_probability: 0.0,
            seed: 1,
        }
    }

    /// Overrides the rollout policy.
    ///
    /// # Panics
    ///
    /// Panics if `policy.waves` is empty, not ascending, or does not end at
    /// 1.0.
    pub fn with_policy(mut self, policy: CampaignPolicy) -> Self {
        assert!(!policy.waves.is_empty(), "at least one wave");
        assert!(
            policy.waves.windows(2).all(|w| w[0] < w[1]),
            "waves must be strictly ascending"
        );
        assert!(
            (policy.waves.last().copied().unwrap_or(0.0) - 1.0).abs() < 1e-9,
            "last wave must cover the fleet"
        );
        self.policy = policy;
        self
    }

    /// Injects a field failure probability (deterministic per seed).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_field_failures(mut self, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        self.field_failure_probability = p;
        self.seed = seed;
        self
    }

    /// Runs the campaign over `fleet` (rollout order = slice order).
    pub fn run(&self, fleet: &[VehicleConfig]) -> CampaignReport {
        let mut rng = seeded_rng(self.seed);
        let mut outcomes: BTreeMap<VehicleId, VehicleOutcome> = fleet
            .iter()
            .map(|v| (v.id, VehicleOutcome::NotAttempted))
            .collect();
        let mut waves = Vec::new();
        let mut halted = false;
        let mut cursor = 0usize;
        for (wave_idx, &fraction) in self.policy.waves.iter().enumerate() {
            if halted {
                break;
            }
            let wave_end = ((fleet.len() as f64) * fraction).ceil() as usize;
            let wave_end = wave_end.min(fleet.len());
            let mut report = WaveReport {
                wave: wave_idx,
                attempted: 0,
                updated: 0,
                rejected: 0,
                failed: 0,
            };
            for vehicle in &fleet[cursor..wave_end] {
                report.attempted += 1;
                match validate_vehicle(vehicle, &self.requirements) {
                    Err(reason) => {
                        report.rejected += 1;
                        outcomes.insert(vehicle.id, VehicleOutcome::Rejected(reason));
                    }
                    Ok(()) => {
                        let fails = self.field_failure_probability > 0.0
                            && rng.gen::<f64>() < self.field_failure_probability;
                        if fails {
                            report.failed += 1;
                            outcomes.insert(vehicle.id, VehicleOutcome::FailedRolledBack);
                        } else {
                            report.updated += 1;
                            outcomes.insert(vehicle.id, VehicleOutcome::Updated);
                        }
                    }
                }
            }
            cursor = wave_end;
            let rate = report.failure_rate();
            waves.push(report);
            if rate > self.policy.max_wave_failure_rate {
                halted = true;
            }
        }
        CampaignReport {
            waves,
            halted,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requirements() -> UpdateRequirements {
        UpdateRequirements {
            app: AppId(1),
            version: Version::new(2, 0, 0),
            staged_memory_kib: 1024,
            utilization: 0.1,
            depends_on: BTreeMap::new(),
        }
    }

    fn healthy_vehicle(id: u32) -> VehicleConfig {
        VehicleConfig::new(VehicleId(id), 4096, 0.5).with_installed(AppId(1), Version::new(1, 0, 0))
    }

    fn fleet(n: u32) -> Vec<VehicleConfig> {
        (0..n).map(healthy_vehicle).collect()
    }

    #[test]
    fn backend_validation_catches_every_precondition() {
        let req = requirements();
        assert_eq!(
            validate_vehicle(&VehicleConfig::new(VehicleId(1), 4096, 0.5), &req),
            Err(RejectReason::NotInstalled)
        );
        let current = healthy_vehicle(1).with_installed(AppId(1), Version::new(2, 0, 0));
        assert_eq!(
            validate_vehicle(&current, &req),
            Err(RejectReason::AlreadyCurrent)
        );
        let tight_mem = VehicleConfig::new(VehicleId(1), 512, 0.5)
            .with_installed(AppId(1), Version::new(1, 0, 0));
        assert_eq!(
            validate_vehicle(&tight_mem, &req),
            Err(RejectReason::InsufficientMemory)
        );
        let tight_cpu = VehicleConfig::new(VehicleId(1), 4096, 0.05)
            .with_installed(AppId(1), Version::new(1, 0, 0));
        assert_eq!(
            validate_vehicle(&tight_cpu, &req),
            Err(RejectReason::InsufficientCpu)
        );
        assert_eq!(validate_vehicle(&healthy_vehicle(1), &req), Ok(()));
    }

    #[test]
    fn dependency_versions_are_checked_per_vehicle() {
        let mut req = requirements();
        req.depends_on.insert(AppId(9), Version::new(1, 2, 0));
        let missing = healthy_vehicle(1);
        assert_eq!(
            validate_vehicle(&missing, &req),
            Err(RejectReason::DependencyUnsatisfied(AppId(9)))
        );
        let too_old = healthy_vehicle(1).with_installed(AppId(9), Version::new(1, 1, 0));
        assert_eq!(
            validate_vehicle(&too_old, &req),
            Err(RejectReason::DependencyUnsatisfied(AppId(9)))
        );
        let ok = healthy_vehicle(1).with_installed(AppId(9), Version::new(1, 3, 0));
        assert_eq!(validate_vehicle(&ok, &req), Ok(()));
        // Major-version break also fails (2.x is not compatible with >=1.2).
        let wrong_major = healthy_vehicle(1).with_installed(AppId(9), Version::new(2, 0, 0));
        assert_eq!(
            validate_vehicle(&wrong_major, &req),
            Err(RejectReason::DependencyUnsatisfied(AppId(9)))
        );
    }

    #[test]
    fn healthy_fleet_updates_fully_in_waves() {
        let campaign = UpdateCampaign::new(requirements());
        let report = campaign.run(&fleet(100));
        assert!(!report.halted);
        assert_eq!(report.updated(), 100);
        assert_eq!(report.waves.len(), 3);
        // Default waves: 2 %, 20 %, 100 % cumulative.
        assert_eq!(report.waves[0].attempted, 2);
        assert_eq!(report.waves[1].attempted, 18);
        assert_eq!(report.waves[2].attempted, 80);
    }

    #[test]
    fn heterogeneous_fleet_mixes_outcomes() {
        let mut vehicles = fleet(50);
        // 10 vehicles lack the app entirely; 5 lack memory.
        for v in vehicles.iter_mut().take(10) {
            v.installed.clear();
        }
        for v in vehicles.iter_mut().skip(10).take(5) {
            v.free_memory_kib = 100;
        }
        let report = UpdateCampaign::new(requirements()).run(&vehicles);
        assert_eq!(report.updated(), 35);
        assert_eq!(report.rejected(), 15);
        assert!(!report.halted, "rejections are not failures");
    }

    #[test]
    fn high_failure_rate_halts_the_campaign_after_the_canary_wave() {
        let campaign = UpdateCampaign::new(requirements())
            .with_field_failures(0.8, 3)
            .with_policy(CampaignPolicy {
                waves: vec![0.1, 1.0],
                max_wave_failure_rate: 0.2,
            });
        let report = campaign.run(&fleet(100));
        assert!(report.halted);
        assert_eq!(report.waves.len(), 1, "second wave never ran");
        // The untouched 90 vehicles were protected by the canary halt.
        let untouched = report
            .outcomes
            .values()
            .filter(|o| **o == VehicleOutcome::NotAttempted)
            .count();
        assert_eq!(untouched, 90);
    }

    #[test]
    fn low_failure_rate_completes_with_rollbacks_counted() {
        let campaign = UpdateCampaign::new(requirements())
            .with_field_failures(0.02, 9)
            .with_policy(CampaignPolicy {
                waves: vec![0.02, 0.2, 1.0],
                max_wave_failure_rate: 0.3,
            });
        let report = campaign.run(&fleet(500));
        assert!(!report.halted);
        assert_eq!(report.updated() + report.failed(), 500);
        assert!(report.failed() > 0, "2% of 500 should fail at least once");
        assert!(report.failed() < 30);
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let campaign = UpdateCampaign::new(requirements()).with_field_failures(0.1, 42);
        assert_eq!(campaign.run(&fleet(200)), campaign.run(&fleet(200)));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_wave_policy_panics() {
        UpdateCampaign::new(requirements()).with_policy(CampaignPolicy {
            waves: vec![0.5, 0.2, 1.0],
            max_wave_failure_rate: 0.1,
        });
    }
}
