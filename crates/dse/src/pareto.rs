//! Cost/utilization Pareto archive.

use crate::objective::{Assignment, Objectives};

/// A feasible design point kept in the archive.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoPoint {
    /// The mapping.
    pub assignment: Assignment,
    /// Its objectives.
    pub objectives: Objectives,
}

/// `a` dominates `b` if it is no worse in both objectives and strictly
/// better in at least one (cost ↓, peak utilization ↓).
fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.used_cost <= b.used_cost && a.peak_utilization <= b.peak_utilization + 1e-12;
    let better = a.used_cost < b.used_cost || a.peak_utilization + 1e-12 < b.peak_utilization;
    no_worse && better
}

/// Archive of mutually non-dominated feasible designs.
#[derive(Clone, Debug, Default)]
pub struct ParetoArchive {
    points: Vec<ParetoPoint>,
}

impl ParetoArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        ParetoArchive::default()
    }

    /// Offers a design point; infeasible and dominated points are refused.
    /// Returns whether the point was accepted.
    pub fn offer(&mut self, assignment: Assignment, objectives: Objectives) -> bool {
        if !objectives.is_feasible() {
            return false;
        }
        if self
            .points
            .iter()
            .any(|p| dominates(&p.objectives, &objectives) || p.objectives == objectives)
        {
            return false;
        }
        self.points
            .retain(|p| !dominates(&objectives, &p.objectives));
        self.points.push(ParetoPoint {
            assignment,
            objectives,
        });
        true
    }

    /// Archive contents.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of archived designs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cheapest archived design.
    pub fn cheapest(&self) -> Option<&ParetoPoint> {
        self.points.iter().min_by_key(|p| p.objectives.used_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn obj(cost: u64, peak: f64) -> Objectives {
        Objectives {
            violations: 0,
            used_cost: cost,
            used_ecus: 1,
            peak_utilization: peak,
            mean_utilization: peak,
        }
    }

    #[test]
    fn archive_keeps_only_non_dominated() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(BTreeMap::new(), obj(100, 0.5)));
        // Dominated (worse in both): refused.
        assert!(!a.offer(BTreeMap::new(), obj(120, 0.6)));
        // Trade-off point: accepted.
        assert!(a.offer(BTreeMap::new(), obj(80, 0.8)));
        assert_eq!(a.len(), 2);
        // Dominating point evicts both.
        assert!(a.offer(BTreeMap::new(), obj(70, 0.4)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.cheapest().unwrap().objectives.used_cost, 70);
    }

    #[test]
    fn infeasible_points_are_refused() {
        let mut a = ParetoArchive::new();
        let mut bad = obj(10, 0.1);
        bad.violations = 1;
        assert!(!a.offer(BTreeMap::new(), bad));
        assert!(a.is_empty());
    }

    #[test]
    fn duplicate_objectives_are_refused() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(BTreeMap::new(), obj(100, 0.5)));
        assert!(!a.offer(BTreeMap::new(), obj(100, 0.5)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn mutual_non_domination_invariant() {
        let mut a = ParetoArchive::new();
        for (c, u) in [(100, 0.9), (90, 0.95), (110, 0.5), (50, 0.99), (105, 0.45)] {
            a.offer(BTreeMap::new(), obj(c, u));
        }
        for (i, p) in a.points().iter().enumerate() {
            for (j, q) in a.points().iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(&p.objectives, &q.objectives),
                        "{:?} dominates {:?}",
                        p.objectives,
                        q.objectives
                    );
                }
            }
        }
    }
}
