//! Feasibility and objectives.

use dynplat_common::{AppId, EcuId};
use dynplat_model::ir::SystemModel;
use dynplat_model::verify::{verify, Violation};
use std::collections::BTreeMap;

/// A concrete app → ECU mapping.
pub type Assignment = BTreeMap<AppId, EcuId>;

/// Objective values of one design point.
#[derive(Clone, Debug, PartialEq)]
pub struct Objectives {
    /// Number of hard violations (0 = feasible).
    pub violations: usize,
    /// Acquisition cost of the ECUs that host at least one app.
    pub used_cost: u64,
    /// Number of ECUs actually used.
    pub used_ecus: usize,
    /// Peak deterministic CPU utilization over all ECUs.
    pub peak_utilization: f64,
    /// Mean CPU utilization over *used* ECUs (consolidation quality).
    pub mean_utilization: f64,
}

impl Objectives {
    /// `true` when no hard constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violations == 0
    }

    /// Scalarized fitness for single-objective search (lower is better):
    /// infeasibility dominates, then cost, then peak utilization as a
    /// tie-breaker.
    pub fn fitness(&self) -> f64 {
        self.violations as f64 * 1e9 + self.used_cost as f64 * 1e3 + self.peak_utilization
    }
}

/// Evaluates a design point: runs the verification engine and computes the
/// objective values.
pub fn evaluate(model: &SystemModel, assignment: &Assignment) -> Objectives {
    let violations: Vec<Violation> = verify(model, assignment);
    let mut used: BTreeMap<EcuId, f64> = BTreeMap::new();
    for (app_id, ecu_id) in assignment {
        let util = model
            .application(*app_id)
            .zip(model.hardware.ecu(*ecu_id))
            .map(|(app, ecu)| {
                if app.kind.is_deterministic() {
                    let wcet = app.wcet_on(ecu.cpu());
                    wcet.as_nanos() as f64 / app.period.as_nanos() as f64
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);
        *used.entry(*ecu_id).or_insert(0.0) += util;
    }
    let used_cost = used
        .keys()
        .filter_map(|e| model.hardware.ecu(*e))
        .map(|e| u64::from(e.cost()))
        .sum();
    let peak = used.values().copied().fold(0.0f64, f64::max);
    let mean = if used.is_empty() {
        0.0
    } else {
        used.values().sum::<f64>() / used.len() as f64
    };
    Objectives {
        violations: violations.len(),
        used_cost,
        used_ecus: used.len(),
        peak_utilization: peak,
        mean_utilization: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_model::dsl::parse_model;

    fn model() -> SystemModel {
        parse_model(
            r#"
system {
  hardware {
    ecu "a" { id 0 class domain }
    ecu "b" { id 1 class domain }
    bus "eth0" { id 0 ethernet 100000000 attach [0 1] }
  }
  application "x" { id 1 deterministic asil B period 10ms work 3 memory 64 }
  application "y" { id 2 deterministic asil B period 10ms work 3 memory 64 }
  deployment { app 1 on any [0 1]  app 2 on any [0 1] }
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn consolidated_uses_fewer_ecus_at_higher_utilization() {
        let m = model();
        let together: Assignment = [(AppId(1), EcuId(0)), (AppId(2), EcuId(0))]
            .into_iter()
            .collect();
        let split: Assignment = [(AppId(1), EcuId(0)), (AppId(2), EcuId(1))]
            .into_iter()
            .collect();
        let o_together = evaluate(&m, &together);
        let o_split = evaluate(&m, &split);
        assert!(o_together.is_feasible() && o_split.is_feasible());
        assert_eq!(o_together.used_ecus, 1);
        assert_eq!(o_split.used_ecus, 2);
        assert!(o_together.used_cost < o_split.used_cost);
        assert!(o_together.peak_utilization > o_split.peak_utilization);
        assert!(o_together.fitness() < o_split.fitness());
    }

    #[test]
    fn infeasible_point_dominates_fitness() {
        let mut m = model();
        // Blow up memory so any single-ECU placement violates.
        m.applications[0].memory_kib = 999_999_999;
        let a: Assignment = [(AppId(1), EcuId(0)), (AppId(2), EcuId(1))]
            .into_iter()
            .collect();
        let o = evaluate(&m, &a);
        assert!(!o.is_feasible());
        assert!(o.fitness() > 1e8);
    }

    #[test]
    fn utilization_accounting() {
        let m = model();
        // 3 MI on 1200 MIPS = 2.5 ms per 10 ms = 0.25 utilization.
        let a: Assignment = [(AppId(1), EcuId(0)), (AppId(2), EcuId(0))]
            .into_iter()
            .collect();
        let o = evaluate(&m, &a);
        assert!((o.peak_utilization - 0.5).abs() < 1e-9);
        assert!((o.mean_utilization - 0.5).abs() < 1e-9);
    }
}
