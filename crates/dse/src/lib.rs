//! Design-space exploration (§2.3, §5.1).
//!
//! "The design space exploration can operate on the output of the model and
//! use simulation or verification approaches to guarantee parameters in all
//! possible combinations, as well as define the optimal approach for every
//! combination of functions, parameters and hardware." — after the DSE
//! lines of Lukasiewycz et al. \[9\] and Reimann \[14\] in the related work.
//!
//! * [`objective`] — feasibility (via the `dynplat-model` verification
//!   engine) and the optimization objectives: hardware cost of the ECUs
//!   actually used, peak CPU utilization, and network load;
//! * [`search`] — explorers over the deployment space: greedy
//!   first-fit-decreasing (baseline), uniform random search, simulated
//!   annealing with move-one-app neighborhoods, and deterministic
//!   multi-chain parallel annealing ([`explore`]);
//! * [`pareto`] — a cost/utilization Pareto archive of feasible designs;
//! * [`consolidate`] — the E1 (Fig. 1) experiment substrate: a federated
//!   one-function-per-ECU architecture vs. consolidation onto platform
//!   ECUs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consolidate;
pub mod objective;
pub mod pareto;
pub mod search;

pub use consolidate::{consolidated_architecture, federated_architecture, ArchitectureSummary};
pub use objective::{evaluate, Assignment, Objectives};
pub use pareto::ParetoArchive;
pub use search::{
    explore, greedy_first_fit, random_search, simulated_annealing, DseConfig, DseResult,
};
