//! ECU consolidation (Fig. 1 / E1).
//!
//! The paper's introduction: "ECUs are in many cases the smallest unit of
//! electronics and software in the vehicle" — one function per dedicated
//! controller — and "ECU consolidation … is currently one of the most
//! promising ways to curb the complexity problem". This module builds the
//! two architectures for a given function set so E1 can compare ECU count,
//! cost and utilization.

use crate::objective::{evaluate, Assignment, Objectives};
use crate::search::{explore, DseConfig};
use dynplat_common::{BusId, EcuId};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_model::ir::{AppModel, Deployment, MappingChoice, SystemModel};

/// Comparable summary of one architecture.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchitectureSummary {
    /// Label ("federated" / "consolidated").
    pub label: String,
    /// ECUs used.
    pub ecus: usize,
    /// Total hardware cost of the used ECUs.
    pub cost: u64,
    /// Mean CPU utilization of used ECUs.
    pub mean_utilization: f64,
    /// Peak CPU utilization.
    pub peak_utilization: f64,
    /// Whether all constraints hold.
    pub feasible: bool,
}

impl ArchitectureSummary {
    fn from_objectives(label: &str, o: &Objectives) -> Self {
        ArchitectureSummary {
            label: label.to_owned(),
            ecus: o.used_ecus,
            cost: o.used_cost,
            mean_utilization: o.mean_utilization,
            peak_utilization: o.peak_utilization,
            feasible: o.is_feasible(),
        }
    }
}

/// Builds the federated architecture: one dedicated low-end/domain ECU per
/// function (the weakest class that carries it), all on one CAN backbone.
pub fn federated_architecture(apps: &[AppModel]) -> (SystemModel, ArchitectureSummary) {
    let mut topology = HwTopology::new();
    let mut deployment = Deployment::default();
    let mut attached = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let id = EcuId(i as u16);
        // Pick the cheapest class that can host this one function.
        let ecu = [
            EcuClass::LowEnd,
            EcuClass::Domain,
            EcuClass::HighPerformance,
        ]
        .into_iter()
        .map(|class| EcuSpec::of_class(id, format!("ecu-{}", app.name), class))
        .find(|ecu| {
            let fits_mem = app.memory_kib <= ecu.ram_kib();
            let fits_cpu = !app.kind.is_deterministic() || app.wcet_on(ecu.cpu()) <= app.period;
            let fits_gpu = !app.needs_gpu || ecu.has_gpu();
            fits_mem && fits_cpu && fits_gpu
        })
        .unwrap_or_else(|| {
            EcuSpec::of_class(id, format!("ecu-{}", app.name), EcuClass::HighPerformance)
        });
        topology.add_ecu(ecu).expect("fresh ids");
        attached.push(id);
        deployment.mapping.insert(app.id, MappingChoice::Fixed(id));
    }
    topology
        .add_bus(BusSpec::new(
            BusId(0),
            "backbone",
            BusKind::can_500k(),
            attached,
        ))
        .expect("fresh bus");
    let model = SystemModel {
        hardware: topology,
        interfaces: Vec::new(),
        applications: apps.to_vec(),
        deployment,
    };
    let assignment: Assignment = model
        .deployment
        .mapping
        .iter()
        .map(|(a, c)| (*a, c.candidates()[0]))
        .collect();
    let objectives = evaluate(&model, &assignment);
    let summary = ArchitectureSummary::from_objectives("federated", &objectives);
    (model, summary)
}

/// Builds the consolidated architecture: a small pool of high-performance
/// platform ECUs on an Ethernet backbone, with the mapping found by DSE.
///
/// `pool` is the number of platform ECUs offered to the explorer; the DSE
/// minimizes how many are actually used.
pub fn consolidated_architecture(
    apps: &[AppModel],
    pool: u16,
    cfg: &DseConfig,
) -> (SystemModel, Assignment, ArchitectureSummary) {
    let mut topology = HwTopology::new();
    let mut attached = Vec::new();
    for i in 0..pool {
        let id = EcuId(i);
        topology
            .add_ecu(EcuSpec::of_class(
                id,
                format!("platform-{i}"),
                EcuClass::HighPerformance,
            ))
            .expect("fresh ids");
        attached.push(id);
    }
    topology
        .add_bus(BusSpec::new(
            BusId(0),
            "backbone",
            BusKind::ethernet_1g(),
            attached.clone(),
        ))
        .expect("fresh bus");
    let mut deployment = Deployment::default();
    for app in apps {
        deployment
            .mapping
            .insert(app.id, MappingChoice::AnyOf(attached.clone()));
    }
    let model = SystemModel {
        hardware: topology,
        interfaces: Vec::new(),
        applications: apps.to_vec(),
        deployment,
    };
    // Multi-chain annealing: `cfg.n_chains` parallel chains, still fully
    // deterministic for a given seed (chain 1 falls back to the classic
    // single-chain run).
    let result = explore(&model, cfg);
    let (assignment, objectives) = result
        .best
        .expect("non-empty app set always yields a candidate");
    let summary = ArchitectureSummary::from_objectives("consolidated", &objectives);
    (model, assignment, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;
    use dynplat_common::{AppId, AppKind, Asil};

    fn function(id: u32, det: bool, work_mi: f64, mem_kib: u32) -> AppModel {
        AppModel {
            id: AppId(id),
            name: format!("f{id}"),
            kind: if det {
                AppKind::Deterministic
            } else {
                AppKind::NonDeterministic
            },
            asil: Asil::B,
            provides: vec![],
            consumes: vec![],
            period: SimDuration::from_millis(20),
            work_mi,
            memory_kib: mem_kib,
            needs_gpu: false,
        }
    }

    fn fleet(n: u32) -> Vec<AppModel> {
        (0..n)
            .map(|i| function(i + 1, i % 3 != 0, 1.0 + (i % 4) as f64, 256))
            .collect()
    }

    #[test]
    fn federated_uses_one_ecu_per_function() {
        let apps = fleet(12);
        let (_, summary) = federated_architecture(&apps);
        assert_eq!(summary.ecus, 12);
        assert!(summary.feasible);
        assert!(summary.mean_utilization > 0.0);
    }

    #[test]
    fn consolidation_reduces_ecus_and_cost() {
        // At fleet scale the per-function controllers outgrow the price of
        // a small pool of platform ECUs.
        let apps = fleet(24);
        let (_, federated) = federated_architecture(&apps);
        let cfg = DseConfig {
            iterations: 1500,
            ..Default::default()
        };
        let (_, assignment, consolidated) = consolidated_architecture(&apps, 4, &cfg);
        assert!(consolidated.feasible, "consolidated must verify");
        assert!(consolidated.ecus < federated.ecus);
        assert!(
            consolidated.cost < federated.cost,
            "consolidation should cut hardware cost: {} vs {}",
            consolidated.cost,
            federated.cost
        );
        assert_eq!(assignment.len(), apps.len());
    }

    #[test]
    fn heavy_function_escalates_ecu_class() {
        // 200 MI per 20 ms needs 10 000 MIPS: only the high-performance
        // class carries it.
        let apps = vec![function(1, true, 200.0, 256)];
        let (model, summary) = federated_architecture(&apps);
        assert!(summary.feasible);
        let ecu = model.hardware.ecu(EcuId(0)).unwrap();
        assert!(ecu.cpu().mips >= 10_000);
    }
}
