//! Deployment-space explorers.

use crate::objective::{evaluate, Assignment, Objectives};
use crate::pareto::ParetoArchive;
use dynplat_common::rng::Rng;
use dynplat_common::rng::{seeded_rng, split_seed};
use dynplat_common::{AppId, EcuId};
use dynplat_model::ir::SystemModel;

/// Search configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct DseConfig {
    /// Candidate evaluations to spend.
    pub iterations: u32,
    /// RNG seed.
    pub seed: u64,
    /// Initial simulated-annealing temperature (fitness units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per iteration.
    pub cooling: f64,
    /// Warm-start the annealing chain from the greedy design (ablation
    /// knob; on by default).
    pub greedy_seed: bool,
    /// Restart the chain from a random point after a stagnation window
    /// (ablation knob; on by default).
    pub restarts: bool,
    /// Independent annealing chains run in parallel by [`explore`]
    /// (`simulated_annealing` always runs exactly one). Chain 0 uses
    /// `seed` unchanged; chain `k > 0` uses `split_seed(seed, k)`.
    pub n_chains: u32,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            iterations: 2000,
            seed: 42,
            initial_temperature: 5e4,
            cooling: 0.995,
            greedy_seed: true,
            restarts: true,
            n_chains: 4,
        }
    }
}

/// Result of one exploration run.
#[derive(Clone, Debug)]
pub struct DseResult {
    /// Best design found (may be infeasible if nothing feasible was seen).
    pub best: Option<(Assignment, Objectives)>,
    /// Candidate evaluations performed.
    pub evaluations: u64,
    /// Feasible non-dominated designs encountered along the way.
    pub archive: ParetoArchive,
}

impl DseResult {
    /// `true` if a feasible design was found.
    pub fn found_feasible(&self) -> bool {
        self.best.as_ref().is_some_and(|(_, o)| o.is_feasible())
    }
}

fn candidates_of(model: &SystemModel, app: AppId) -> Vec<EcuId> {
    model
        .deployment
        .mapping
        .get(&app)
        .map(|c| c.candidates().to_vec())
        .unwrap_or_else(|| model.hardware.ecus().map(|e| e.id()).collect())
}

fn app_ids(model: &SystemModel) -> Vec<AppId> {
    model.applications.iter().map(|a| a.id).collect()
}

/// Greedy first-fit-decreasing baseline: apps sorted by descending memory
/// demand, each placed on the first candidate ECU where the partial design
/// stays violation-free. Cheap and deterministic, but easily trapped.
pub fn greedy_first_fit(model: &SystemModel) -> DseResult {
    let mut apps: Vec<&dynplat_model::ir::AppModel> = model.applications.iter().collect();
    apps.sort_by_key(|a| std::cmp::Reverse((a.memory_kib, a.id.raw())));
    let mut assignment = Assignment::new();
    let mut evaluations = 0u64;
    for app in apps {
        let mut placed = false;
        for ecu in candidates_of(model, app.id) {
            assignment.insert(app.id, ecu);
            evaluations += 1;
            if evaluate(model, &assignment).is_feasible() {
                placed = true;
                break;
            }
            assignment.remove(&app.id);
        }
        if !placed {
            // Leave it unmapped: the final evaluation will show violations
            // (missing mapping counts through resource checks upstream).
            assignment.insert(app.id, candidates_of(model, app.id)[0]);
        }
    }
    let objectives = evaluate(model, &assignment);
    let mut archive = ParetoArchive::new();
    archive.offer(assignment.clone(), objectives.clone());
    DseResult {
        best: Some((assignment, objectives)),
        evaluations,
        archive,
    }
}

fn random_assignment<R: Rng>(model: &SystemModel, rng: &mut R) -> Assignment {
    app_ids(model)
        .into_iter()
        .map(|app| {
            let c = candidates_of(model, app);
            (app, c[rng.gen_range(0..c.len())])
        })
        .collect()
}

/// Uniform random search over the variant space.
pub fn random_search(model: &SystemModel, cfg: &DseConfig) -> DseResult {
    let mut rng = seeded_rng(cfg.seed);
    let mut best: Option<(Assignment, Objectives)> = None;
    let mut archive = ParetoArchive::new();
    for _ in 0..cfg.iterations {
        let a = random_assignment(model, &mut rng);
        let o = evaluate(model, &a);
        archive.offer(a.clone(), o.clone());
        if best.as_ref().is_none_or(|(_, b)| o.fitness() < b.fitness()) {
            best = Some((a, o));
        }
    }
    DseResult {
        best,
        evaluations: u64::from(cfg.iterations),
        archive,
    }
}

/// Simulated annealing with a move-one-app neighborhood.
pub fn simulated_annealing(model: &SystemModel, cfg: &DseConfig) -> DseResult {
    let mut rng = seeded_rng(cfg.seed);
    let apps = app_ids(model);
    if apps.is_empty() {
        return DseResult {
            best: None,
            evaluations: 0,
            archive: ParetoArchive::new(),
        };
    }
    // Hybrid start: seed the chain with the greedy design when it is
    // feasible (a common DSE warm start), otherwise from a random point.
    let greedy_seed = if cfg.greedy_seed {
        greedy_first_fit(model)
            .best
            .filter(|(_, o)| o.is_feasible())
            .map(|(a, _)| a)
    } else {
        None
    };
    let mut current = greedy_seed.unwrap_or_else(|| random_assignment(model, &mut rng));
    let mut current_obj = evaluate(model, &current);
    let mut best = (current.clone(), current_obj.clone());
    let mut archive = ParetoArchive::new();
    archive.offer(current.clone(), current_obj.clone());
    let mut temperature = cfg.initial_temperature;
    let mut evaluations = 1u64;
    let restart_after = (cfg.iterations / 10).max(20);
    let mut since_improvement = 0u32;
    for _ in 0..cfg.iterations {
        // Neighbor: move one random app to another candidate ECU.
        let app = apps[rng.gen_range(0..apps.len())];
        let options = candidates_of(model, app);
        let mut neighbor = current.clone();
        neighbor.insert(app, options[rng.gen_range(0..options.len())]);
        let neighbor_obj = evaluate(model, &neighbor);
        evaluations += 1;
        archive.offer(neighbor.clone(), neighbor_obj.clone());
        if neighbor_obj.fitness() < best.1.fitness() {
            best = (neighbor.clone(), neighbor_obj.clone());
            since_improvement = 0;
        } else {
            since_improvement += 1;
        }
        let delta = neighbor_obj.fitness() - current_obj.fitness();
        let accept =
            delta <= 0.0 || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
        if accept {
            current = neighbor;
            current_obj = neighbor_obj;
        }
        if cfg.restarts && since_improvement >= restart_after {
            // Plateau escape: restart the chain from a fresh random point
            // (the archive and `best` persist across restarts).
            current = random_assignment(model, &mut rng);
            current_obj = evaluate(model, &current);
            evaluations += 1;
            archive.offer(current.clone(), current_obj.clone());
            if current_obj.fitness() < best.1.fitness() {
                best = (current.clone(), current_obj.clone());
            }
            since_improvement = 0;
            temperature = cfg.initial_temperature;
        }
        temperature *= cfg.cooling;
    }
    DseResult {
        best: Some(best),
        evaluations,
        archive,
    }
}

/// Multi-chain simulated annealing: `cfg.n_chains` independent chains run
/// in parallel on scoped OS threads and their results merge into one
/// [`DseResult`].
///
/// Each chain is a full [`simulated_annealing`] run with its own seed —
/// chain 0 uses `cfg.seed` unchanged (so `n_chains = 1` reproduces the
/// single-chain result bit-for-bit), chain `k > 0` uses
/// `split_seed(cfg.seed, k)`. The merge is deterministic: chains are
/// joined in index order, archives are folded point-by-point through
/// [`ParetoArchive::offer`], evaluations are summed, and the overall best
/// is taken by strict fitness improvement so earlier chains win ties.
/// Repeated invocations with the same model and config therefore produce
/// identical results regardless of thread scheduling.
pub fn explore(model: &SystemModel, cfg: &DseConfig) -> DseResult {
    let n = cfg.n_chains.max(1);
    if n == 1 {
        return simulated_annealing(model, cfg);
    }
    let chain_results: Vec<DseResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|k| {
                let chain_cfg = DseConfig {
                    seed: if k == 0 {
                        cfg.seed
                    } else {
                        split_seed(cfg.seed, u64::from(k))
                    },
                    ..cfg.clone()
                };
                scope.spawn(move || simulated_annealing(model, &chain_cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("annealing chain panicked"))
            .collect()
    });
    let mut best: Option<(Assignment, Objectives)> = None;
    let mut evaluations = 0u64;
    let mut archive = ParetoArchive::new();
    for result in chain_results {
        evaluations += result.evaluations;
        for p in result.archive.points() {
            archive.offer(p.assignment.clone(), p.objectives.clone());
        }
        if let Some((a, o)) = result.best {
            if best.as_ref().is_none_or(|(_, b)| o.fitness() < b.fitness()) {
                best = Some((a, o));
            }
        }
    }
    DseResult {
        best,
        evaluations,
        archive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_model::dsl::parse_model;

    /// Four apps on three ECUs; app memory forces a spread and the "hp"
    /// ECU is expensive, so good designs avoid it when possible.
    fn model() -> SystemModel {
        parse_model(
            r#"
system {
  hardware {
    ecu "a"  { id 0 class domain }
    ecu "b"  { id 1 class domain }
    ecu "hp" { id 2 class high }
    bus "eth0" { id 0 ethernet 100000000 attach [0 1 2] }
  }
  application "w" { id 1 deterministic asil B period 10ms work 4 memory 9000 }
  application "x" { id 2 deterministic asil B period 10ms work 4 memory 9000 }
  application "y" { id 3 deterministic asil B period 10ms work 4 memory 9000 }
  application "z" { id 4 non-deterministic asil QM period 50ms work 1 memory 9000 }
  deployment {
    app 1 on any [0 1 2]
    app 2 on any [0 1 2]
    app 3 on any [0 1 2]
    app 4 on any [0 1 2]
  }
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn greedy_finds_a_feasible_design() {
        let result = greedy_first_fit(&model());
        assert!(result.found_feasible(), "{:?}", result.best);
    }

    #[test]
    fn random_search_finds_feasible_designs() {
        let cfg = DseConfig {
            iterations: 300,
            ..Default::default()
        };
        let result = random_search(&model(), &cfg);
        assert!(result.found_feasible());
        assert_eq!(result.evaluations, 300);
        assert!(!result.archive.is_empty());
    }

    #[test]
    fn annealing_matches_or_beats_random_on_cost() {
        let m = model();
        let cfg = DseConfig {
            iterations: 600,
            ..Default::default()
        };
        let rnd = random_search(&m, &cfg);
        let sa = simulated_annealing(&m, &cfg);
        let (_, rnd_obj) = rnd.best.unwrap();
        let (_, sa_obj) = sa.best.unwrap();
        assert!(sa_obj.is_feasible());
        assert!(
            sa_obj.fitness() <= rnd_obj.fitness() + 1e-6,
            "SA {} vs random {}",
            sa_obj.fitness(),
            rnd_obj.fitness()
        );
        // Memory forces 2 KiB-class ECUs: 16 MiB domain RAM fits one 9000
        // KiB app... (9000 KiB < 16 MiB so two fit). Optimal avoids the hp
        // ECU: cost 70 (two domain) is achievable.
        assert!(sa_obj.used_cost <= 70 + 220, "cost {}", sa_obj.used_cost);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let m = model();
        let cfg = DseConfig {
            iterations: 200,
            ..Default::default()
        };
        let a = simulated_annealing(&m, &cfg);
        let b = simulated_annealing(&m, &cfg);
        assert_eq!(a.best.map(|(x, _)| x), b.best.map(|(x, _)| x));
    }

    #[test]
    fn pareto_archive_collects_trade_offs() {
        let m = model();
        let cfg = DseConfig {
            iterations: 800,
            ..Default::default()
        };
        let result = random_search(&m, &cfg);
        // Every archived point is feasible.
        for p in result.archive.points() {
            assert!(p.objectives.is_feasible());
        }
    }

    #[test]
    fn empty_model_yields_empty_result() {
        let m = parse_model("system { hardware { } deployment { } }").unwrap();
        let result = simulated_annealing(&m, &DseConfig::default());
        assert!(result.best.is_none());
    }

    #[test]
    fn explore_single_chain_reproduces_annealing_bit_for_bit() {
        let m = model();
        let cfg = DseConfig {
            iterations: 300,
            n_chains: 1,
            ..Default::default()
        };
        let single = simulated_annealing(&m, &cfg);
        let multi = explore(&m, &cfg);
        assert_eq!(multi.best, single.best);
        assert_eq!(multi.evaluations, single.evaluations);
        assert_eq!(multi.archive.points(), single.archive.points());
    }

    #[test]
    fn explore_is_reproducible_across_invocations() {
        let m = model();
        let cfg = DseConfig {
            iterations: 300,
            n_chains: 3,
            ..Default::default()
        };
        let a = explore(&m, &cfg);
        let b = explore(&m, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.archive.points(), b.archive.points());
    }

    #[test]
    fn explore_multi_chain_matches_or_beats_single_chain() {
        let m = model();
        let cfg = DseConfig {
            iterations: 300,
            n_chains: 4,
            ..Default::default()
        };
        let single = simulated_annealing(&m, &cfg);
        let multi = explore(&m, &cfg);
        let (_, s) = single.best.unwrap();
        let (_, p) = multi.best.unwrap();
        assert!(p.fitness() <= s.fitness() + 1e-9);
        // Evaluations sum over chains: each chain spends at least
        // `iterations` evaluations, so the total reflects all four.
        assert!(multi.evaluations >= u64::from(cfg.iterations) * 4);
    }
}
