//! Micro-benchmarks over the hot paths of every substrate: crypto
//! primitives, wire codecs, schedulability analyses, TT synthesis, DSL
//! parsing and fabric simulation.
//!
//! Implemented on a small in-repo timing harness (`harness = false`) so the
//! workspace builds with no external dependencies. Run with
//! `cargo bench --bench micro`; pass `--quick` for a fast smoke pass.

use dynplat_comm::fabric::{Fabric, MessageSend};
use dynplat_comm::wire::SomeIpHeader;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, BusId, EcuId, MessageId, MethodId, ServiceId, TaskId};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_model::dsl::parse_model;
use dynplat_net::can::{CanAnalysis, CanMessageSpec};
use dynplat_net::TrafficClass;
use dynplat_obs::TraceCtx;
use dynplat_sched::rta;
use dynplat_sched::task::{TaskSet, TaskSpec};
use dynplat_sched::tt;
use dynplat_security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat_security::sha256::{hmac_sha256, sha256};
use dynplat_security::sign::KeyPair;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over enough iterations to smooth noise and prints the result
/// as a TSV row (`name<TAB>ns_per_iter<TAB>iters`).
fn bench<T>(name: &str, quick: bool, mut f: impl FnMut() -> T) {
    // Warm up and calibrate the iteration count to a time budget.
    let budget_ns: u128 = if quick { 2_000_000 } else { 200_000_000 };
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_nanos().max(1);
    let iters = (budget_ns / once).clamp(1, 100_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_nanos() / u128::from(iters);
    println!("{name}\t{per_iter}\t{iters}");
}

fn bench_crypto(quick: bool) {
    for size in [64usize, 1024, 16384] {
        let data = vec![0xA5u8; size];
        bench(&format!("crypto/sha256/{size}"), quick, || {
            sha256(black_box(&data))
        });
    }
    let key = [7u8; 32];
    let msg = vec![1u8; 256];
    bench("crypto/hmac_sha256_256B", quick, || {
        hmac_sha256(black_box(&key), black_box(&msg))
    });
    let kp = KeyPair::from_seed(b"bench");
    let payload = vec![9u8; 1024];
    bench("crypto/sign_1KiB", quick, || kp.sign(black_box(&payload)));
    let sig = kp.sign(&payload);
    bench("crypto/verify_1KiB", quick, || {
        kp.public().verify(black_box(&payload), black_box(&sig))
    });
    let package = UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 1, vec![0; 4096]);
    let signed = SignedPackage::create(&package, &kp);
    let mut registry = KeyRegistry::new();
    registry.trust(kp.public());
    bench("crypto/verify_signed_package_4KiB", quick, || {
        signed.verify(black_box(&registry)).expect("verifies")
    });
}

fn bench_wire(quick: bool) {
    let header = SomeIpHeader::request(ServiceId(0x1234), MethodId(0x21), 3, 4);
    let payload = vec![0u8; 256];
    bench("wire/someip_encode_256B", quick, || {
        header.encode(black_box(&payload))
    });
    let wire = header.encode(&payload);
    bench("wire/someip_decode_256B", quick, || {
        SomeIpHeader::decode(black_box(&wire)).expect("decodes")
    });
}

fn task_set(n: u32) -> TaskSet {
    (0..n)
        .map(|i| {
            TaskSpec::periodic(
                TaskId(i),
                format!("t{i}"),
                SimDuration::from_millis(5 * (u64::from(i % 6) + 1)),
                SimDuration::from_micros(200),
            )
            .with_priority(i)
        })
        .collect()
}

fn bench_sched(quick: bool) {
    for n in [10u32, 40] {
        let set = task_set(n);
        bench(&format!("sched/rta/{n}"), quick, || {
            rta::response_times(black_box(&set))
        });
        bench(&format!("sched/tt_synthesis/{n}"), quick, || {
            tt::synthesize(black_box(&set)).expect("synthesizes")
        });
    }
}

fn bench_can_analysis(quick: bool) {
    let specs: Vec<CanMessageSpec> = (0..30)
        .map(|i| {
            CanMessageSpec::periodic(
                MessageId(i),
                8,
                SimDuration::from_millis(10 * (u64::from(i) + 1)),
            )
        })
        .collect();
    let analysis = CanAnalysis::new(500_000, specs);
    bench("can/wcrt_30_messages", quick, || analysis.response_times());
}

fn bench_dsl(quick: bool) {
    let text = r#"
system {
  hardware {
    ecu "a" { id 0 class domain }
    ecu "b" { id 1 class high }
    bus "e" { id 0 ethernet 100000000 attach [0 1] }
  }
  interface "s" {
    id 1 owner 1 version 1
    event "e" { id 1 payload {x: f64, y: [u32; 8]} latency 10ms critical }
    method "m" { id 2 request {a: u32} response bool }
  }
  application "p" { id 1 deterministic asil C provides [1] period 10ms work 2 memory 512 }
  application "c" { id 2 non-deterministic asil QM consumes [1 event 1] period 50ms work 1 memory 256 }
  deployment { app 1 on 0  app 2 on any [0 1] }
}
"#;
    bench("dsl/parse", quick, || {
        parse_model(black_box(text)).expect("parses")
    });
}

fn bench_fabric(quick: bool) {
    let topo = HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
        ],
        [BusSpec::new(
            BusId(0),
            "e",
            BusKind::ethernet_100m(),
            [EcuId(0), EcuId(1)],
        )],
    )
    .expect("valid");
    bench("fabric/500_messages", quick, || {
        let mut fabric = Fabric::new(topo.clone());
        let sends: Vec<MessageSend> = (0..500)
            .map(|i| MessageSend {
                id: i,
                time: SimTime::from_micros(i * 20),
                src: EcuId(0),
                dst: EcuId(1),
                payload: 256,
                class: TrafficClass::BestEffort,
                priority: (i % 4) as u32,
                trace: TraceCtx::NONE,
            })
            .collect();
        fabric.run(sends, |_| vec![])
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("benchmark\tns_per_iter\titers");
    bench_crypto(quick);
    bench_wire(quick);
    bench_sched(quick);
    bench_can_analysis(quick);
    bench_dsl(quick);
    bench_fabric(quick);
}
