//! Criterion micro-benchmarks over the hot paths of every substrate:
//! crypto primitives, wire codecs, schedulability analyses, TT synthesis,
//! DSL parsing and fabric simulation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynplat_comm::fabric::{Fabric, MessageSend};
use dynplat_comm::wire::SomeIpHeader;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, BusId, EcuId, MessageId, MethodId, ServiceId, TaskId};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_model::dsl::parse_model;
use dynplat_net::can::{CanAnalysis, CanMessageSpec};
use dynplat_net::TrafficClass;
use dynplat_sched::rta;
use dynplat_sched::task::{TaskSet, TaskSpec};
use dynplat_sched::tt;
use dynplat_security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat_security::sha256::{hmac_sha256, sha256};
use dynplat_security::sign::KeyPair;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xA5u8; size];
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(black_box(d)))
        });
    }
    let key = [7u8; 32];
    let msg = vec![1u8; 256];
    group.bench_function("hmac_sha256_256B", |b| {
        b.iter(|| hmac_sha256(black_box(&key), black_box(&msg)))
    });
    let kp = KeyPair::from_seed(b"bench");
    let payload = vec![9u8; 1024];
    group.bench_function("sign_1KiB", |b| b.iter(|| kp.sign(black_box(&payload))));
    let sig = kp.sign(&payload);
    group.bench_function("verify_1KiB", |b| {
        b.iter(|| kp.public().verify(black_box(&payload), black_box(&sig)))
    });
    let package = UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 1, vec![0; 4096]);
    let signed = SignedPackage::create(&package, &kp);
    let mut registry = KeyRegistry::new();
    registry.trust(kp.public());
    group.bench_function("verify_signed_package_4KiB", |b| {
        b.iter(|| signed.verify(black_box(&registry)).expect("verifies"))
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let header = SomeIpHeader::request(ServiceId(0x1234), MethodId(0x21), 3, 4);
    let payload = vec![0u8; 256];
    group.bench_function("someip_encode_256B", |b| {
        b.iter(|| header.encode(black_box(&payload)))
    });
    let wire = header.encode(&payload);
    group.bench_function("someip_decode_256B", |b| {
        b.iter(|| SomeIpHeader::decode(black_box(&wire)).expect("decodes"))
    });
    group.finish();
}

fn task_set(n: u32) -> TaskSet {
    (0..n)
        .map(|i| {
            TaskSpec::periodic(
                TaskId(i),
                format!("t{i}"),
                SimDuration::from_millis(5 * (u64::from(i % 6) + 1)),
                SimDuration::from_micros(200),
            )
            .with_priority(i)
        })
        .collect()
}

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched");
    for n in [10u32, 40] {
        let set = task_set(n);
        group.bench_with_input(BenchmarkId::new("rta", n), &set, |b, s| {
            b.iter(|| rta::response_times(black_box(s)))
        });
        group.bench_with_input(BenchmarkId::new("tt_synthesis", n), &set, |b, s| {
            b.iter(|| tt::synthesize(black_box(s)).expect("synthesizes"))
        });
    }
    group.finish();
}

fn bench_can_analysis(c: &mut Criterion) {
    let specs: Vec<CanMessageSpec> = (0..30)
        .map(|i| {
            CanMessageSpec::periodic(
                MessageId(i),
                8,
                SimDuration::from_millis(10 * (u64::from(i) + 1)),
            )
        })
        .collect();
    let analysis = CanAnalysis::new(500_000, specs);
    c.bench_function("can_wcrt_30_messages", |b| {
        b.iter(|| analysis.response_times())
    });
}

fn bench_dsl(c: &mut Criterion) {
    let text = r#"
system {
  hardware {
    ecu "a" { id 0 class domain }
    ecu "b" { id 1 class high }
    bus "e" { id 0 ethernet 100000000 attach [0 1] }
  }
  interface "s" {
    id 1 owner 1 version 1
    event "e" { id 1 payload {x: f64, y: [u32; 8]} latency 10ms critical }
    method "m" { id 2 request {a: u32} response bool }
  }
  application "p" { id 1 deterministic asil C provides [1] period 10ms work 2 memory 512 }
  application "c" { id 2 non-deterministic asil QM consumes [1 event 1] period 50ms work 1 memory 256 }
  deployment { app 1 on 0  app 2 on any [0 1] }
}
"#;
    c.bench_function("dsl_parse", |b| b.iter(|| parse_model(black_box(text)).expect("parses")));
}

fn bench_fabric(c: &mut Criterion) {
    let topo = HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
        ],
        [BusSpec::new(BusId(0), "e", BusKind::ethernet_100m(), [EcuId(0), EcuId(1)])],
    )
    .expect("valid");
    c.bench_function("fabric_500_messages", |b| {
        b.iter(|| {
            let mut fabric = Fabric::new(topo.clone());
            let sends: Vec<MessageSend> = (0..500)
                .map(|i| MessageSend {
                    id: i,
                    time: SimTime::from_micros(i * 20),
                    src: EcuId(0),
                    dst: EcuId(1),
                    payload: 256,
                    class: TrafficClass::BestEffort,
                    priority: (i % 4) as u32,
                })
                .collect();
            fabric.run(sends, |_| vec![])
        })
    });
}

criterion_group!(
    benches,
    bench_crypto,
    bench_wire,
    bench_sched,
    bench_can_analysis,
    bench_dsl,
    bench_fabric
);
criterion_main!(benches);
