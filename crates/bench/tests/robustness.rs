//! E12 robustness acceptance tests: seed-determinism of retry schedules
//! and campaign summaries, and the criticality guarantee that the ASIL-D
//! control loop degrades strictly less than the QM load at equal fault
//! rates.

use dynplat_bench::chaos::{run_campaign, sweep_plan, CampaignConfig};
use dynplat_comm::retry::RetryPolicy;
use dynplat_common::time::SimTime;

const SEED: u64 = 0xE12_5EED;

#[test]
fn same_seed_gives_identical_retry_schedules() {
    for policy in [RetryPolicy::standard(), RetryPolicy::aggressive()] {
        for round in 0..50u64 {
            let t0 = SimTime::from_millis(round * 50);
            let a = policy.schedule(t0, SEED ^ round);
            let b = policy.schedule(t0, SEED ^ round);
            assert_eq!(
                a, b,
                "round {round}: schedules must be pure in (policy, t0, seed)"
            );
        }
    }
}

#[test]
fn same_seed_gives_identical_campaign_summaries() {
    for rate in [0.05, 0.20] {
        let cfg = CampaignConfig::new(
            SEED,
            sweep_plan(SEED, rate),
            RetryPolicy::standard(),
            "standard",
        );
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a, b, "rate {rate}: summary must be deterministic");
        assert_eq!(
            a.row("x"),
            b.row("x"),
            "rate {rate}: formatted rows must be byte-identical"
        );
    }
}

#[test]
fn da_degrades_strictly_less_than_nda_at_equal_fault_rates() {
    for rate in [0.02, 0.05, 0.10, 0.20, 0.30] {
        for (policy, name) in [
            (RetryPolicy::standard(), "standard"),
            (RetryPolicy::aggressive(), "aggressive"),
        ] {
            let cfg = CampaignConfig::new(SEED, sweep_plan(SEED, rate), policy, name);
            let s = run_campaign(&cfg);
            assert!(
                s.da_miss_rate() < s.nda_degraded_rate(),
                "rate {rate} policy {name}: DA miss rate {} must stay strictly below \
                 NDA degradation {}",
                s.da_miss_rate(),
                s.nda_degraded_rate()
            );
        }
    }
}

#[test]
fn injected_and_detected_losses_reconcile() {
    // Every injected message loss the client was waiting for shows up as a
    // missing response; the detected count can exceed the injected one
    // only through response-path losses of the same faults, never the
    // other way by more than the in-flight tail.
    let cfg = CampaignConfig::new(
        SEED,
        sweep_plan(SEED, 0.10),
        RetryPolicy::standard(),
        "standard",
    );
    let s = run_campaign(&cfg);
    assert!(s.injected_losses > 0);
    assert!(
        s.detected_losses <= s.injected_losses,
        "clients cannot detect more losses ({}) than were injected ({})",
        s.detected_losses,
        s.injected_losses
    );
    let diff = s.injected_losses - s.detected_losses;
    assert!(
        diff <= s.injected_losses / 5,
        "most injected losses must be detected: {} of {} unaccounted",
        diff,
        s.injected_losses
    );
}
