//! E12 robustness acceptance tests: seed-determinism of retry schedules
//! and campaign summaries, and the criticality guarantee that the ASIL-D
//! control loop degrades strictly less than the QM load at equal fault
//! rates.

use dynplat_bench::chaos::{run_campaign, run_campaign_traced, sweep_plan, CampaignConfig};
use dynplat_comm::retry::RetryPolicy;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::BusId;
use dynplat_faults::FaultPlan;

const SEED: u64 = 0xE12_5EED;

#[test]
fn same_seed_gives_identical_retry_schedules() {
    for policy in [RetryPolicy::standard(), RetryPolicy::aggressive()] {
        for round in 0..50u64 {
            let t0 = SimTime::from_millis(round * 50);
            let a = policy.schedule(t0, SEED ^ round);
            let b = policy.schedule(t0, SEED ^ round);
            assert_eq!(
                a, b,
                "round {round}: schedules must be pure in (policy, t0, seed)"
            );
        }
    }
}

#[test]
fn same_seed_gives_identical_campaign_summaries() {
    for rate in [0.05, 0.20] {
        let cfg = CampaignConfig::new(
            SEED,
            sweep_plan(SEED, rate),
            RetryPolicy::standard(),
            "standard",
        );
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a, b, "rate {rate}: summary must be deterministic");
        assert_eq!(
            a.row("x"),
            b.row("x"),
            "rate {rate}: formatted rows must be byte-identical"
        );
    }
}

#[test]
fn da_degrades_strictly_less_than_nda_at_equal_fault_rates() {
    for rate in [0.02, 0.05, 0.10, 0.20, 0.30] {
        for (policy, name) in [
            (RetryPolicy::standard(), "standard"),
            (RetryPolicy::aggressive(), "aggressive"),
        ] {
            let cfg = CampaignConfig::new(SEED, sweep_plan(SEED, rate), policy, name);
            let s = run_campaign(&cfg);
            assert!(
                s.da_miss_rate() < s.nda_degraded_rate(),
                "rate {rate} policy {name}: DA miss rate {} must stay strictly below \
                 NDA degradation {}",
                s.da_miss_rate(),
                s.nda_degraded_rate()
            );
        }
    }
}

#[test]
fn breaker_recovers_through_half_open_when_totally_isolated() {
    // Partition BOTH buses mid-run: the primary provider dies, the
    // failover target dies too, and with `hold_breaker_when_isolated` the
    // breaker must ride the full Open → HalfOpen → Closed cycle — held
    // open while isolated, probing on each cool-down expiry, closing on
    // the first probe that crosses the healed fabric.
    let probes_before = dynplat_obs::global()
        .counter("comm.breaker.half_open_probes")
        .get();
    let from = SimTime::from_millis(1_500);
    let until = SimTime::from_millis(3_500);
    let plan = FaultPlan::quiet(SEED)
        .partition(BusId(0), from, until)
        .partition(BusId(1), from, until);
    let mut cfg = CampaignConfig::new(SEED, plan, RetryPolicy::standard(), "standard");
    cfg.hold_breaker_when_isolated = true;
    let outcome = run_campaign_traced(&cfg, None);

    assert!(
        outcome.breaker_probes > 0,
        "the held-open breaker must admit half-open probes"
    );
    let probes_after = dynplat_obs::global()
        .counter("comm.breaker.half_open_probes")
        .get();
    assert!(
        probes_after >= probes_before + outcome.breaker_probes,
        "every probe must land in the comm.breaker.half_open_probes counter"
    );
    // The circuit closed again: after the partition heals, a successful
    // probe restores service and fault pressure returns to zero.
    let healed: Vec<f64> = outcome
        .pressures
        .iter()
        .filter(|(w_end, _)| *w_end >= until + SimDuration::from_millis(500))
        .map(|(_, p)| *p)
        .collect();
    assert!(!healed.is_empty());
    assert!(
        healed.iter().all(|p| *p == 0.0),
        "post-heal windows must be loss-free once the breaker re-closes: {healed:?}"
    );
    assert!(
        outcome.summary.da_misses < outcome.summary.da_rounds,
        "the control loop must get service back"
    );

    // And the whole cycle is a pure function of the seed.
    let again = run_campaign_traced(&cfg, None);
    assert_eq!(again.breaker_probes, outcome.breaker_probes);
    assert_eq!(again.pressures, outcome.pressures);
}

#[test]
fn injected_and_detected_losses_reconcile() {
    // Every injected message loss the client was waiting for shows up as a
    // missing response; the detected count can exceed the injected one
    // only through response-path losses of the same faults, never the
    // other way by more than the in-flight tail.
    let cfg = CampaignConfig::new(
        SEED,
        sweep_plan(SEED, 0.10),
        RetryPolicy::standard(),
        "standard",
    );
    let s = run_campaign(&cfg);
    assert!(s.injected_losses > 0);
    assert!(
        s.detected_losses <= s.injected_losses,
        "clients cannot detect more losses ({}) than were injected ({})",
        s.detected_losses,
        s.injected_losses
    );
    let diff = s.injected_losses - s.detected_losses;
    assert!(
        diff <= s.injected_losses / 5,
        "most injected losses must be detected: {} of {} unaccounted",
        diff,
        s.injected_losses
    );
}
