//! The E13 detection-latency experiment: fault injection to first verdict.
//!
//! Each scenario runs the E12 chaos campaign with causal tracing on — an
//! armed [`FlightRecorder`] wired through the fabric, the injector, the
//! fault recorder and the degradation ladder — and measures, per injected
//! fault kind, two latencies from the first injection of that kind:
//!
//! * **drift latency** — until the campaign's
//!   [`DriftDetector`](dynplat_monitor::anomaly::DriftDetector) (watching
//!   the control loop's round-trip time) first returns a non-`Normal`
//!   verdict;
//! * **capture latency** — until the flight recorder first freezes an
//!   incident dump (triggered by the detection side: deadline misses,
//!   message loss, ladder transitions, failovers).
//!
//! Injection-side events only land in the recorder's ring, never trigger
//! dumps — otherwise capture latency would trivially be zero. Scenario
//! onsets scale with the horizon so a tiny smoke run exercises the same
//! code path as the full experiment.
//!
//! `MessageDuplicate` is deliberately absent: a duplicated response is
//! invisible to every monitor in the stack (no deadline impact, no loss,
//! no integrity failure), so it has no finite detection latency.

use crate::chaos::{run_campaign_traced, CampaignConfig};
use dynplat_comm::retry::RetryPolicy;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId};
use dynplat_faults::{BabblingIdiot, FaultPlan, InjectedFaultKind};
use dynplat_obs::{FlightDump, FlightRecorder};
use std::sync::Arc;

/// One E13 scenario: a fault plan engineered so its headline fault kind is
/// guaranteed to produce a detectable signal.
#[derive(Clone, Copy, Debug)]
pub struct DetectionScenario {
    /// Stable scenario label (the table's first column).
    pub name: &'static str,
    /// The injected kind whose first log entry marks `t_inject`.
    pub kind: InjectedFaultKind,
    /// Retry policy of the deterministic client. Stochastic scenarios run
    /// single-shot so the loss signal reaches the monitors undiluted.
    policy: fn() -> RetryPolicy,
    policy_name: &'static str,
    plan: fn(u64, SimDuration) -> FaultPlan,
    /// Circuit-breaker override. E13 measures *detection*, and for slow
    /// trend faults the breaker's failover heals the symptom within a few
    /// rounds — faster than any trend detector can accumulate evidence.
    /// Scenarios that need the symptom to persist raise the threshold so
    /// mitigation does not mask the measurement.
    breaker_threshold: Option<u32>,
}

/// Scheduled faults switch on at one third of the horizon… (shared with
/// the E14 adaptation experiment, which reuses this harness's fault
/// placement so latencies are comparable across experiments).
pub fn onset(horizon: SimDuration) -> SimTime {
    SimTime::ZERO + horizon / 3
}

/// …and off at two thirds, leaving room for recovery.
pub fn offset(horizon: SimDuration) -> SimTime {
    SimTime::ZERO + (horizon / 3) * 2
}

/// The E13 scenario set: every injectable kind with a detectable signal.
pub fn scenarios() -> Vec<DetectionScenario> {
    fn single_shot() -> RetryPolicy {
        RetryPolicy::none()
    }
    fn standard() -> RetryPolicy {
        RetryPolicy::standard()
    }
    vec![
        DetectionScenario {
            name: "drop-0.85",
            kind: InjectedFaultKind::MessageDrop,
            policy: single_shot,
            policy_name: "none",
            plan: |seed, _| FaultPlan::quiet(seed).with_message_faults(0.85, 0.0, 0.0),
            breaker_threshold: None,
        },
        DetectionScenario {
            name: "corrupt-0.8",
            kind: InjectedFaultKind::MessageCorruption,
            policy: single_shot,
            policy_name: "none",
            plan: |seed, _| FaultPlan::quiet(seed).with_message_faults(0.0, 0.8, 0.0),
            breaker_threshold: None,
        },
        DetectionScenario {
            name: "spike-80ms",
            kind: InjectedFaultKind::DelaySpike,
            policy: single_shot,
            policy_name: "none",
            // Every message spikes past the 40 ms round deadline.
            plan: |seed, _| {
                FaultPlan::quiet(seed).with_delay_spikes(1.0, SimDuration::from_millis(80))
            },
            breaker_threshold: None,
        },
        DetectionScenario {
            name: "partition-eth",
            kind: InjectedFaultKind::PartitionLoss,
            policy: standard,
            policy_name: "standard",
            plan: |seed, h| FaultPlan::quiet(seed).partition(BusId(1), onset(h), offset(h)),
            breaker_threshold: None,
        },
        DetectionScenario {
            name: "crash-server",
            kind: InjectedFaultKind::EcuCrash,
            policy: standard,
            policy_name: "standard",
            plan: |seed, h| FaultPlan::quiet(seed).crash(EcuId(2), onset(h)),
            breaker_threshold: None,
        },
        DetectionScenario {
            name: "hang-server",
            kind: InjectedFaultKind::EcuHang,
            policy: standard,
            policy_name: "standard",
            plan: |seed, h| FaultPlan::quiet(seed).hang(EcuId(2), onset(h), offset(h)),
            breaker_threshold: None,
        },
        DetectionScenario {
            name: "drift-runaway",
            kind: InjectedFaultKind::ClockDrift,
            policy: standard,
            policy_name: "standard",
            // A runaway server clock (crystal failure): responses slip a
            // full deadline behind within the first round.
            plan: |seed, _| FaultPlan::quiet(seed).drift(EcuId(2), 1_000_000),
            // Failover at the default threshold heals within 4 rounds —
            // before the EWMA can trend into its warn line. Hold the
            // breaker back so E13 measures the detector, not the breaker.
            breaker_threshold: Some(64),
        },
        DetectionScenario {
            name: "babble-eth",
            kind: InjectedFaultKind::BabbleStart,
            policy: standard,
            policy_name: "standard",
            // 1500 B every 100 us oversubscribes the 100 Mbit leg.
            plan: |seed, h| {
                FaultPlan::quiet(seed).babble(BabblingIdiot {
                    src: EcuId(2),
                    dst: EcuId(1),
                    from: onset(h),
                    until: offset(h),
                    period: SimDuration::from_micros(100),
                    payload: 1500,
                })
            },
            breaker_threshold: None,
        },
    ]
}

/// What one scenario run measured.
#[derive(Clone, Debug)]
pub struct DetectionOutcome {
    /// Scenario label.
    pub name: &'static str,
    /// The injected kind under measurement.
    pub kind: InjectedFaultKind,
    /// First injection of the kind (`None` if the plan never fired — a
    /// scenario bug).
    pub t_inject: Option<SimTime>,
    /// Injection to first non-`Normal` drift verdict.
    pub drift_latency: Option<SimDuration>,
    /// Injection to first frozen flight dump.
    pub capture_latency: Option<SimDuration>,
    /// Deterministic-round miss rate of the run.
    pub da_miss_rate: f64,
    /// Total injections of the measured kind.
    pub injections: u64,
    /// The frozen dumps, for export.
    pub dumps: Vec<FlightDump>,
}

impl DetectionOutcome {
    /// Table columns matching [`DetectionOutcome::row`].
    pub fn columns() -> [&'static str; 7] {
        [
            "scenario",
            "kind",
            "t_inject_ms",
            "drift_latency_ms",
            "capture_latency_ms",
            "da_miss_rate",
            "injections",
        ]
    }

    /// One stable TSV-friendly row.
    pub fn row(&self) -> Vec<String> {
        fn ms(d: Option<SimDuration>) -> String {
            match d {
                Some(d) => format!("{:.3}", d.as_nanos() as f64 / 1e6),
                None => "-".to_owned(),
            }
        }
        vec![
            self.name.to_owned(),
            self.kind.to_string(),
            match self.t_inject {
                Some(t) => format!("{:.3}", t.as_nanos() as f64 / 1e6),
                None => "-".to_owned(),
            },
            ms(self.drift_latency),
            ms(self.capture_latency),
            format!("{:.4}", self.da_miss_rate),
            self.injections.to_string(),
        ]
    }
}

/// Runs one scenario over `horizon` and measures its detection latencies.
///
/// # Panics
///
/// Panics if the scenario's plan fails validation.
pub fn run_scenario(
    scenario: &DetectionScenario,
    seed: u64,
    horizon: SimDuration,
) -> DetectionOutcome {
    let plan = (scenario.plan)(seed, horizon);
    let mut cfg = CampaignConfig::new(seed, plan, (scenario.policy)(), scenario.policy_name);
    cfg.horizon = horizon;
    if let Some(threshold) = scenario.breaker_threshold {
        cfg.breaker_threshold = threshold;
    }
    // A fresh, armed recorder per scenario: the first incidents of *this*
    // fault are the ones the black box must keep.
    let flight = Arc::new(FlightRecorder::new(4096));
    flight.arm();
    let outcome = run_campaign_traced(&cfg, Some(flight.clone()));

    let mine: Vec<SimTime> = outcome
        .injections
        .iter()
        .filter(|i| i.kind == scenario.kind)
        .map(|i| i.time)
        .collect();
    let t_inject = mine.iter().copied().min();
    let dumps = flight.dumps();
    let (drift_latency, capture_latency) = match t_inject {
        Some(t0) => {
            let drift = outcome
                .drift_verdicts
                .iter()
                .map(|(t, _)| *t)
                .find(|t| *t >= t0)
                .map(|t| t.saturating_since(t0));
            let capture = dumps
                .iter()
                .map(|d| SimTime::from_nanos(d.time_ns))
                .find(|t| *t >= t0)
                .map(|t| t.saturating_since(t0));
            (drift, capture)
        }
        None => (None, None),
    };
    DetectionOutcome {
        name: scenario.name,
        kind: scenario.kind,
        t_inject,
        drift_latency,
        capture_latency,
        da_miss_rate: outcome.summary.da_miss_rate(),
        injections: mine.len() as u64,
        dumps,
    }
}

/// Runs the whole scenario set; seeds are split per scenario index so the
/// stochastic streams stay independent.
pub fn run_all(seed: u64, horizon: SimDuration) -> Vec<DetectionOutcome> {
    scenarios()
        .iter()
        .enumerate()
        .map(|(i, s)| run_scenario(s, dynplat_common::rng::split_seed(seed, i as u64), horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_has_a_distinct_kind_and_name() {
        let all = scenarios();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.kind, b.kind);
                assert_ne!(a.name, b.name);
            }
        }
        assert!(
            !all.iter()
                .any(|s| s.kind == InjectedFaultKind::MessageDuplicate),
            "duplicates have no detectable signal and must stay excluded"
        );
    }

    #[test]
    fn drop_scenario_detects_quickly() {
        let s = scenarios()
            .into_iter()
            .find(|s| s.kind == InjectedFaultKind::MessageDrop)
            .expect("the standard scenario set includes a message-drop fault");
        let out = run_scenario(&s, 0xE13, SimDuration::from_secs(2));
        assert!(out.t_inject.is_some());
        assert!(out.capture_latency.is_some(), "a dump must freeze");
        assert!(out.drift_latency.is_some(), "the RTT drift must register");
        assert!(!out.dumps.is_empty());
    }
}
